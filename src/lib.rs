//! # concurrent-dynamic-connectivity
//!
//! A Rust reproduction of *"A Scalable Concurrent Algorithm for Dynamic
//! Connectivity"* (Alexander Fedorov, Nikita Koval, Dan Alistarh — SPAA '21,
//! arXiv:2105.08098).
//!
//! This facade crate re-exports the workspace members so downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — graph types, synthetic generators and dataset loaders;
//! * [`sync`] — the concurrency substrates (sharded map, flat adjacency
//!   store, combining executor, raw locks, wait-time accounting);
//! * [`ett`] — the pluggable forest backends behind the [`DynamicForest`]
//!   trait: the single-writer, multi-reader concurrent Euler Tour Tree
//!   (paper Section 3) and the concurrent-hardened link-cut tree
//!   (`DESIGN.md` §12);
//! * [`dynconn`] — the HDT-based dynamic connectivity core and all thirteen
//!   algorithm variants of the paper's evaluation (paper Section 4), with
//!   the version-validated root-hint cache that makes repeat queries on
//!   stable components O(1) (`DESIGN.md` §8);
//! * [`batch`] — the batch-parallel operation engine (`dc_batch`): sharded
//!   intake, batch annihilation, combined-pass updates and
//!   snapshot-consistent bulk queries on top of the HDT core (`DESIGN.md`
//!   §5);
//! * [`workloads`] — the scenario subsystem (`dc_workloads`): parameterized
//!   topologies, phased operation-mix workloads with Zipf hot-edge skew,
//!   and a binary trace format for byte-for-byte reproducible replay
//!   (`DESIGN.md` §7);
//! * [`durable`] — crash-safe persistence (`dc_durable`): a group-committed
//!   write-ahead log under the batch engine, atomic checkpoints of the
//!   level structure, torn-tail-tolerant recovery and a fault-injection
//!   harness (`DESIGN.md` §9);
//! * [`faults`] — the cross-layer chaos harness (`dc_faults`): deterministic
//!   seed-driven injection points (leader panics, allocation failures,
//!   intake stalls, delayed epoch advances) plus the observational watchdog
//!   that surfaces stuck leaders and wedged reclamation epochs
//!   (`DESIGN.md` §13).
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Memory model of the level structure
//!
//! The HDT core's per-`(level, vertex)` adjacency multisets live in
//! [`sync::adjacency::AdjacencyStore`]: a flat slab indexed by
//! `level * n + vertex` whose pages materialize lazily on first write, with
//! an inline representation for the common 0–4-edge slots and striped
//! spinlocks for synchronization.  Consequences readers can rely on:
//!
//! * `Hdt::new(n)` performs O(1) heap allocations for adjacency and builds
//!   only the level-0 forest (upper levels materialize when a promotion
//!   first reaches them), so construction cost is O(n), not O(n log n);
//! * adjacency memory scales with the number of touched `(level, vertex)`
//!   pairs, not with the full `n × levels` grid;
//! * the replacement search iterates adjacency slots through a fixed stack
//!   buffer — no snapshot `Vec` is cloned on the hot paths — with the
//!   best-effort iteration guarantees described in
//!   [`sync::adjacency`]'s module documentation.
//!
//! ```
//! use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
//!
//! let dc = Variant::OurAlgorithm.build(16);
//! dc.add_edge(0, 1);
//! dc.add_edge(1, 2);
//! assert!(dc.connected(0, 2));
//! dc.remove_edge(0, 1);
//! assert!(!dc.connected(0, 2));
//! ```

pub use dc_batch as batch;
pub use dc_durable as durable;
pub use dc_ett as ett;
pub use dc_faults as faults;
pub use dc_graph as graph;
pub use dc_sync as sync;
pub use dc_workloads as workloads;
pub use dynconn;

pub use dc_batch::{BatchEngine, EngineError, WaitPolicy};
pub use dc_durable::{DurableConnectivity, DurableOptions, FsyncPolicy};
pub use dc_ett::{set_default_read_hints, DynamicForest, EulerForest, LctForest};
pub use dc_graph::{Edge, Graph};
pub use dc_workloads::{Topology, Trace, WorkloadSpec};
pub use dynconn::{
    BatchConnectivity, BatchOp, DynamicConnectivity, ForestBackend, Hdt, QueryResult,
    RecomputeOracle, Variant,
};
