//! # concurrent-dynamic-connectivity
//!
//! A Rust reproduction of *"A Scalable Concurrent Algorithm for Dynamic
//! Connectivity"* (Alexander Fedorov, Nikita Koval, Dan Alistarh — SPAA '21,
//! arXiv:2105.08098).
//!
//! This facade crate re-exports the workspace members so downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — graph types, synthetic generators and dataset loaders;
//! * [`sync`] — the concurrency substrates (sharded map, combining executor,
//!   raw locks, wait-time accounting);
//! * [`ett`] — the single-writer, multi-reader concurrent Euler Tour Tree
//!   (paper Section 3);
//! * [`dynconn`] — the HDT-based dynamic connectivity core and all thirteen
//!   algorithm variants of the paper's evaluation (paper Section 4).
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
//!
//! let dc = Variant::OurAlgorithm.build(16);
//! dc.add_edge(0, 1);
//! dc.add_edge(1, 2);
//! assert!(dc.connected(0, 2));
//! dc.remove_edge(0, 1);
//! assert!(!dc.connected(0, 2));
//! ```

pub use dc_ett as ett;
pub use dc_graph as graph;
pub use dc_sync as sync;
pub use dynconn;

pub use dc_ett::EulerForest;
pub use dc_graph::{Edge, Graph};
pub use dynconn::{DynamicConnectivity, Hdt, RecomputeOracle, Variant};
