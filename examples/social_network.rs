//! Social-network scenario: a dense power-law graph (the regime of the
//! paper's Twitter / LiveJournal datasets) under a read-dominated workload —
//! "are these two users in the same community component?" — with friendship
//! edges being added and removed concurrently.
//!
//! This is the workload where the paper's full algorithm shines: almost all
//! updates touch non-spanning edges (Table 3 reports ~99% for Twitter), so
//! they complete without taking any component lock, and queries are
//! lock-free.
//!
//! Run with: `cargo run --release --example social_network`

use concurrent_dynamic_connectivity::graph::generators;
use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let graph = Arc::new(generators::preferential_attachment(n, 12, 7));
    println!(
        "social graph: {} users, {} friendships (density {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.density()
    );

    for (variant, label) in [
        (Variant::CoarseGrained, "coarse-grained baseline"),
        (Variant::OurAlgorithm, "full concurrent algorithm"),
    ] {
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n));
        // Load the initial friendship graph.
        for e in graph.edges() {
            dc.add_edge(e.u(), e.v());
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .max(2);
        let ops_per_thread = 40_000;
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let dc = Arc::clone(&dc);
                let graph = Arc::clone(&graph);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    for _ in 0..ops_per_thread {
                        let roll = rng.gen_range(0..100);
                        if roll < 95 {
                            // "Same community?" query between two random users.
                            let a = rng.gen_range(0..n as u32);
                            let b = rng.gen_range(0..n as u32);
                            std::hint::black_box(dc.connected(a, b));
                        } else {
                            // Friendship churn on a random existing edge.
                            let e = graph.edge(rng.gen_range(0..graph.num_edges()));
                            if roll % 2 == 0 {
                                dc.remove_edge(e.u(), e.v());
                            } else {
                                dc.add_edge(e.u(), e.v());
                            }
                        }
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let total_ops = threads * ops_per_thread;
        println!(
            "{label:<28} {threads} threads, {total_ops} ops in {:>7.1} ms  ->  {:>8.0} ops/ms",
            elapsed.as_secs_f64() * 1e3,
            total_ops as f64 / (elapsed.as_secs_f64() * 1e3)
        );
    }
}
