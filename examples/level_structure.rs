//! Inspect the Holm–de Lichtenberg–Thorup level structure.
//!
//! Loads a random graph into the raw `Hdt` core, churns it, and prints the
//! per-level picture the paper's Section 4.1 describes: how many of the
//! graph's edges are spanning at each level, the largest component per level,
//! and the paper's `n / 2^i` component-size bound.
//!
//! Run with: `cargo run --release --example level_structure`

use dc_graph::generators;
use dynconn::Hdt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let graph = generators::erdos_renyi_nm(2_000, 8_000, 42);
    let n = graph.num_vertices();
    println!(
        "graph: {} vertices, {} edges ({} components)",
        n,
        graph.num_edges(),
        graph.connected_components()
    );

    let hdt = Hdt::new(n);
    for e in graph.edges() {
        hdt.with_components_locked(e.u(), e.v(), || {
            hdt.add_edge_locked(e.u(), e.v());
        });
    }

    // Churn: delete and re-insert random edges so replacement searches promote
    // edges to higher levels (a freshly loaded structure keeps everything at
    // level 0).
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20_000 {
        let e = graph.edge(rng.gen_range(0..graph.num_edges()));
        hdt.with_components_locked(e.u(), e.v(), || {
            if rng.gen_bool(0.5) {
                hdt.remove_edge_locked(e.u(), e.v());
            } else {
                hdt.add_edge_locked(e.u(), e.v());
            }
        });
    }
    hdt.validate();

    println!(
        "\nlevel structure after churn ({} levels):",
        hdt.num_levels()
    );
    println!(
        "{:>5} {:>16} {:>18} {:>14}",
        "level", "spanning edges", "largest component", "bound n/2^i"
    );
    for level in 0..hdt.num_levels() {
        let forest = hdt.forest(level);
        let spanning = graph
            .edges()
            .iter()
            .filter(|e| forest.has_tree_edge(e.u(), e.v()))
            .count();
        let largest = (0..n as u32)
            .step_by(17)
            .map(|v| forest.component_size(v))
            .max()
            .unwrap_or(1);
        let bound = (n >> level).max(1);
        println!("{level:>5} {spanning:>16} {largest:>18} {bound:>14}");
        if spanning == 0 && level > 0 {
            println!("      (no spanning edges above level {level}; stopping)");
            break;
        }
    }

    let stats = hdt.stats();
    println!(
        "\noperation statistics: {:.1}% non-spanning additions, {:.1}% non-spanning removals",
        stats.non_spanning_addition_rate(),
        stats.non_spanning_removal_rate()
    );
}
