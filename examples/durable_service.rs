//! A crash-and-recover connectivity service.
//!
//! Runs the durable store through a full lifecycle: a churn burst of edge
//! updates is logged through the write-ahead log with periodic checkpoints,
//! then the "power cord is pulled" mid-burst with the fault-injection
//! harness (a byte budget on the injected filesystem), and the service
//! recovers from whatever survived on disk. A [`RecomputeOracle`] replaying
//! the same operation stream cross-checks every answer — both before the
//! crash and over the recovered prefix.
//!
//! Run with: `cargo run --release --example durable_service`

use concurrent_dynamic_connectivity::durable::{DurableConnectivity, FaultFs, FaultSchedule};
use concurrent_dynamic_connectivity::{
    BatchConnectivity, BatchOp, DurableOptions, DynamicConnectivity, FsyncPolicy, RecomputeOracle,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

const N: usize = 512;
const BURST_OPS: usize = 4_000;
const BATCH: usize = 64;

/// Always-effective churn: adds of absent edges, removes of present ones,
/// drawn from a shadow edge set — so every operation changes state and the
/// op index maps one-to-one onto logged work.
fn churn_burst(seed: u64, count: usize) -> Vec<BatchOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present: Vec<(u32, u32)> = Vec::new();
    let mut index: HashSet<(u32, u32)> = HashSet::new();
    let mut ops = Vec::with_capacity(count);
    while ops.len() < count {
        if present.is_empty() || rng.gen_bool(0.62) {
            let u = rng.gen_range(0..N as u32);
            let v = rng.gen_range(0..N as u32);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if !index.insert(key) {
                continue;
            }
            present.push(key);
            ops.push(BatchOp::Add(u, v));
        } else {
            let i = rng.gen_range(0..present.len());
            let (u, v) = present.swap_remove(i);
            index.remove(&(u, v));
            ops.push(BatchOp::Remove(u, v));
        }
    }
    ops
}

/// Compares all-pairs connectivity (sampled) between the store and the
/// oracle and panics on the first divergence.
fn cross_check(store: &DurableConnectivity, oracle: &RecomputeOracle, label: &str) {
    let mut checked = 0u64;
    for u in (0..N as u32).step_by(7) {
        for v in ((u + 1)..N as u32).step_by(5) {
            assert_eq!(
                store.connected(u, v),
                oracle.connected(u, v),
                "{label}: pair ({u}, {v}) diverged"
            );
            checked += 1;
        }
    }
    println!("  cross-check [{label}]: {checked} pairs agree with the oracle");
}

fn main() {
    let dir = std::env::temp_dir().join(format!("dc-durable-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_interval: 16,
        ..DurableOptions::default()
    };
    let ops = churn_burst(42, BURST_OPS);

    // Phase 1: a healthy service logging a churn burst with checkpoints.
    // The writer goes through a fault-injected filesystem whose byte budget
    // is the "power cord": once the budget is spent, every write fails and
    // the instance poisons itself exactly like a crashed process.
    let budget_ops = BURST_OPS * 2 / 3;
    let schedule = FaultSchedule::none();
    let probe = Arc::clone(&schedule);
    let store = DurableConnectivity::create_with_fs(&dir, N, opts, Arc::new(FaultFs::new(probe)))
        .expect("fresh directory must create");
    let oracle = RecomputeOracle::new(N);
    let mut executed = 0usize;
    let mut bytes_at_cut = 0u64;
    for chunk in ops.chunks(BATCH) {
        store.apply_batch(chunk);
        oracle.apply_batch(chunk);
        executed += chunk.len();
        if executed >= budget_ops {
            bytes_at_cut = schedule.bytes_written();
            break;
        }
    }
    println!(
        "phase 1: {executed} ops logged ({} batches, {} KiB on disk)",
        store.last_seq(),
        bytes_at_cut / 1024
    );
    cross_check(&store, &oracle, "healthy");
    drop(store);

    // Phase 2: replay the same history, but this time the power cord is cut
    // mid-burst — the schedule kills the writer after the byte budget from
    // phase 1, so the crash lands inside the burst, possibly mid-record.
    let _ = std::fs::remove_dir_all(&dir);
    let schedule = FaultSchedule::crash_after(bytes_at_cut * 2 / 3);
    let fs = Arc::new(FaultFs::new(Arc::clone(&schedule)));
    let store = DurableConnectivity::create_with_fs(&dir, N, opts, fs)
        .expect("fresh directory must create");
    let mut executed = 0usize;
    for chunk in ops.chunks(BATCH) {
        store.apply_batch(chunk);
        executed += chunk.len();
        if store.is_poisoned() {
            break;
        }
    }
    assert!(schedule.crashed(), "the byte budget must have been spent");
    println!(
        "phase 2: power lost after {executed} ops — store poisoned at seq {}",
        store.last_seq()
    );
    drop(store); // the crashed process is gone; only the disk remains

    // Phase 3: recover. Torn final records are truncated, the newest valid
    // checkpoint is loaded, and the WAL tail is replayed on top.
    let (recovered, report) = DurableConnectivity::recover(&dir, opts).expect("recovery must work");
    println!(
        "phase 3: recovered to seq {} (checkpoint seq {}, {} batches replayed{})",
        report.last_seq,
        report.checkpoint_seq,
        report.batches_replayed,
        if report.tail_truncated {
            ", torn tail truncated"
        } else {
            ""
        }
    );

    // Every acknowledged batch must have survived: rebuild the oracle over
    // exactly the durable prefix and compare.
    let durable_ops = (report.last_seq as usize) * BATCH;
    assert!(durable_ops <= executed, "recovery invented operations");
    let oracle = RecomputeOracle::new(N);
    oracle.apply_batch(&ops[..durable_ops.min(ops.len())]);
    cross_check(&recovered, &oracle, "recovered");
    recovered.engine().hdt().validate();

    // Phase 4: the recovered service keeps serving — finish the burst.
    let rest: Vec<BatchOp> = ops[durable_ops..].to_vec();
    for chunk in rest.chunks(BATCH) {
        recovered.apply_batch(chunk);
        oracle.apply_batch(chunk);
    }
    recovered.sync().expect("healthy log must sync");
    println!(
        "phase 4: burst finished on the recovered store (seq {})",
        recovered.last_seq()
    );
    cross_check(&recovered, &oracle, "resumed");

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    println!("done: crash, recovery and resumption all agree with the oracle");
}
