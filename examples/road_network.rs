//! Road-network scenario: incremental construction and decremental teardown
//! of a sparse planar road graph (the regime of the paper's USA-roads
//! datasets), asking reachability questions along the way.
//!
//! Sparse graphs are the opposite regime from `social_network.rs`: almost
//! every edge is a spanning edge, so updates go through the locks and the
//! interesting effect is how quickly the graph falls apart into many
//! components once edges start disappearing — which is exactly why the
//! paper's fine-grained locking pays off here.
//!
//! Run with: `cargo run --release --example road_network`

use concurrent_dynamic_connectivity::graph::generators;
use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let side = 120usize;
    let graph = Arc::new(generators::road_network(side, side, 0.35, true, 99));
    let n = graph.num_vertices();
    println!(
        "road network: {} intersections, {} road segments, {} component(s)",
        n,
        graph.num_edges(),
        graph.connected_components()
    );

    let dc: Arc<dyn DynamicConnectivity> = Arc::from(Variant::OurAlgorithm.build(n));
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .max(2);

    // Incremental phase: several "survey crews" add road segments in parallel.
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let dc = Arc::clone(&dc);
            let graph = Arc::clone(&graph);
            s.spawn(move || {
                for (i, e) in graph.edges().iter().enumerate() {
                    if i % threads == t {
                        dc.add_edge(e.u(), e.v());
                    }
                }
            });
        }
    });
    println!(
        "incremental: inserted {} segments in {:.1} ms; corner-to-corner reachable: {}",
        graph.num_edges(),
        start.elapsed().as_secs_f64() * 1e3,
        dc.connected(0, (n - 1) as u32)
    );

    // Decremental phase: storm damage removes every other segment.
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let dc = Arc::clone(&dc);
            let graph = Arc::clone(&graph);
            s.spawn(move || {
                for (i, e) in graph.edges().iter().enumerate() {
                    if i % 2 == 0 && (i / 2) % threads == t {
                        dc.remove_edge(e.u(), e.v());
                    }
                }
            });
        }
    });
    println!(
        "decremental: removed {} segments in {:.1} ms; corner-to-corner reachable: {}",
        graph.num_edges() / 2,
        start.elapsed().as_secs_f64() * 1e3,
        dc.connected(0, (n - 1) as u32)
    );

    // A few point-to-point reachability queries after the damage.
    for (a, b) in [(0u32, (side * side / 2) as u32), (5, 4000), (100, 10_000)] {
        let b = b.min((n - 1) as u32);
        println!("  reachable({a:>6}, {b:>6}) = {}", dc.connected(a, b));
    }
}
