//! Bulk-loading a graph through the batch engine, then querying it in
//! bursts.
//!
//! ```sh
//! cargo run --release --example batch_bulk_load
//! ```
//!
//! The example generates an Erdős–Rényi graph, writes it to disk as a plain
//! edge list, then *streams* it back in fixed-size batches
//! ([`dc_graph::EdgeBatchReader`] never materializes the whole file) and
//! feeds each batch to [`BatchEngine::apply_batch`]. A final burst mixes
//! churn (add+remove pairs that annihilate before touching the tree) with a
//! block of connectivity queries answered in parallel from one consistent
//! snapshot.

use concurrent_dynamic_connectivity::batch::BatchEngine;
use concurrent_dynamic_connectivity::graph::stream::EdgeBatchReader;
use concurrent_dynamic_connectivity::graph::{generators, io};
use concurrent_dynamic_connectivity::{BatchConnectivity, BatchOp, DynamicConnectivity};
use dynconn::UnionFind;

fn main() {
    let vertices = 20_000;
    let edges = 60_000;
    let batch_size = 1_024;

    // 1. Generate and persist the dataset.
    let graph = generators::erdos_renyi_nm(vertices, edges, 42);
    let path = std::env::temp_dir().join("dc_batch_bulk_load.edges");
    let file = std::fs::File::create(&path).expect("create temp edge list");
    io::write_edge_list(&graph, std::io::BufWriter::new(file)).expect("write edge list");
    println!(
        "wrote {} vertices / {} edges to {}",
        graph.num_vertices(),
        graph.num_edges(),
        path.display()
    );

    // 2. Stream it back in batches and bulk-load the engine.
    let engine = BatchEngine::new(vertices);
    let mut uf = UnionFind::new(vertices);
    let file = std::fs::File::open(&path).expect("reopen edge list");
    let start = std::time::Instant::now();
    let mut batches = 0usize;
    // The stream reader interns raw file ids to dense first-seen ids, so
    // everything below (union-find, churn pairs, assertions) must use the
    // *streamed* edges, not the generator's labels.
    let mut loaded = std::collections::HashSet::new();
    let mut ops = Vec::with_capacity(batch_size);
    for batch in EdgeBatchReader::new(file, batch_size) {
        let batch = batch.expect("well-formed edge list");
        ops.clear();
        ops.extend(batch.iter().map(|e| BatchOp::Add(e.u(), e.v())));
        engine.apply_batch(&ops);
        for e in &batch {
            uf.union(e.u(), e.v());
            loaded.insert(*e);
        }
        batches += 1;
    }
    let loaded_count = loaded.len();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "bulk-loaded {loaded_count} edges in {batches} batches of <= {batch_size} \
         ({:.0} edges/s)",
        loaded_count as f64 / secs.max(1e-9)
    );

    // 3. A bursty client: churn that annihilates plus a query block.
    let mut burst = Vec::new();
    for i in 0..2_000u32 {
        // Add+remove of the same absent edge: cancelled by the preprocessor,
        // never touches the tree. (Pairs that happen to be loaded edges
        // would be *removals* under last-intent-wins semantics, so skip
        // those — the union-find cross-check below doesn't model removals.)
        let (u, v) = (i % vertices as u32, (i * 7 + 1) % vertices as u32);
        if u != v && !loaded.contains(&concurrent_dynamic_connectivity::Edge::new(u, v)) {
            burst.push(BatchOp::Add(u, v));
            burst.push(BatchOp::Remove(u, v));
        }
    }
    let query_base = burst.len();
    for i in 0..4_000u32 {
        let u = (i * 31) % vertices as u32;
        let v = (i * 97 + 5) % vertices as u32;
        burst.push(BatchOp::Query(u, v));
    }
    let start = std::time::Instant::now();
    let answers = engine.apply_batch(&burst);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "burst of {} ops answered {} queries in {:.2} ms",
        burst.len(),
        answers.len(),
        secs * 1e3
    );

    // 4. Cross-check a sample of answers against union-find.
    for result in answers.iter().step_by(97) {
        assert_eq!(
            result.connected,
            uf.connected(result.u, result.v),
            "query ({}, {}) disagrees with union-find",
            result.u,
            result.v
        );
        assert!(result.op_index >= query_base);
    }
    let sample = loaded.iter().next().expect("at least one loaded edge");
    assert!(engine.connected(sample.u(), sample.v()));

    let stats = engine.stats();
    println!(
        "engine stats: {} bulk batches, {} updates submitted, {} applied \
         (compaction ratio {:.3}), {} queries ({} coalesced)",
        stats.bulk_batches,
        stats.submitted_updates,
        stats.applied_updates,
        stats.compaction_ratio(),
        stats.submitted_queries,
        stats.coalesced_queries
    );
    assert!(
        stats.applied_updates < stats.submitted_updates,
        "the churn burst must have annihilated"
    );
    let _ = std::fs::remove_file(&path);
    println!("ok");
}
