//! Quickstart: build the paper's full algorithm, mutate the graph from one
//! thread while other threads run lock-free connectivity queries.
//!
//! Run with: `cargo run --release --example quickstart`

use concurrent_dynamic_connectivity::Variant;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let n = 1_000u32;
    // Variant 9 = fine-grained locking + non-blocking reads + lock-free
    // non-spanning edge updates (the paper's "our algorithm").
    let dc = Arc::new(Variant::OurAlgorithm.build(n as usize));

    // A stable backbone path 0-1-2-...-99 that is never modified.
    for v in 0..99 {
        dc.add_edge(v, v + 1);
    }
    println!(
        "backbone built: 0 and 99 connected = {}",
        dc.connected(0, 99)
    );

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Reader threads: lock-free connectivity checks.
        for _ in 0..3 {
            let dc = Arc::clone(&dc);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert!(dc.connected(0, 99), "backbone must stay connected");
                    assert!(!dc.connected(0, n - 1), "vertex n-1 is never linked");
                    queries.fetch_add(2, Ordering::Relaxed);
                }
            });
        }
        // Writer thread: churn edges hanging off the backbone.
        let dc_w = Arc::clone(&dc);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            for round in 0..2_000u32 {
                let base = 100 + (round % 800);
                dc_w.add_edge(50, base);
                dc_w.add_edge(base, base + 1);
                dc_w.remove_edge(base, base + 1);
                dc_w.remove_edge(50, base);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "done: {} concurrent queries answered while the writer churned 8000 updates",
        queries.load(Ordering::Relaxed)
    );
    println!("final check: 0-99 connected = {}", dc.connected(0, 99));
}
