//! Variant shootout: runs the paper's random-subset workload (80% reads) on
//! one dense graph for every one of the thirteen algorithm variants and
//! prints a ranking — a miniature, single-binary version of Figure 5.
//!
//! Run with: `cargo run --release --example variant_shootout`

use concurrent_dynamic_connectivity::graph::generators;
use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 5_000;
    let graph = Arc::new(generators::erdos_renyi_nm(n, n * 8, 21));
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .max(2);
    let ops_per_thread = 20_000usize;
    println!(
        "random scenario, 80% reads on Erdős–Rényi graph |V|={n}, |E|={}, {threads} threads",
        graph.num_edges()
    );

    let mut results: Vec<(f64, &'static str)> = Vec::new();
    for &variant in Variant::all() {
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n));
        // Preload half of the edges.
        for (i, e) in graph.edges().iter().enumerate() {
            if i % 2 == 0 {
                dc.add_edge(e.u(), e.v());
            }
        }
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let dc = Arc::clone(&dc);
                let graph = Arc::clone(&graph);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t as u64 ^ 0xABCD);
                    for _ in 0..ops_per_thread {
                        let roll = rng.gen_range(0..100);
                        if roll < 80 {
                            let a = rng.gen_range(0..n as u32);
                            let b = rng.gen_range(0..n as u32);
                            std::hint::black_box(dc.connected(a, b));
                        } else {
                            let e = graph.edge(rng.gen_range(0..graph.num_edges()));
                            if roll % 2 == 0 {
                                dc.add_edge(e.u(), e.v());
                            } else {
                                dc.remove_edge(e.u(), e.v());
                            }
                        }
                    }
                });
            }
        });
        let ops_per_ms = (threads * ops_per_thread) as f64 / (start.elapsed().as_secs_f64() * 1e3);
        println!("{:<44}{:>10.0} ops/ms", variant.name(), ops_per_ms);
        results.push((ops_per_ms, variant.name()));
    }

    results.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("\nranking:");
    for (rank, (score, name)) in results.iter().enumerate() {
        println!("  {:>2}. {:<44}{score:>10.0} ops/ms", rank + 1, name);
    }
}
