//! A sliding-window link-failure monitor.
//!
//! Models the paper's motivating communication-network scenario: a router
//! network whose links flap (fail and recover) over time, while monitoring
//! probes continuously ask "can data-centre A still reach data-centre B?".
//! Probes vastly outnumber link events, which is exactly the read-dominated
//! regime where the paper's non-blocking `connected` shines.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use dc_graph::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // A road-grid-like backbone: 40x40 grid with most links present.
    let topology = generators::road_network(40, 40, 0.85, true, 7);
    let n = topology.num_vertices();
    println!(
        "topology: {} routers, {} links, density {:.2}",
        n,
        topology.num_edges(),
        topology.density()
    );

    let dc: Arc<dyn DynamicConnectivity> = Arc::from(Variant::OurAlgorithm.build(n));
    for link in topology.edges() {
        dc.add_edge(link.u(), link.v());
    }

    // The monitored pairs: opposite corners and a few random long-range pairs.
    let monitored: Vec<(u32, u32)> = vec![
        (0, (n - 1) as u32),
        (39, (n - 40) as u32),
        (20, (n - 21) as u32),
        (800, 801),
    ];

    let stop = Arc::new(AtomicBool::new(false));
    let probes = Arc::new(AtomicU64::new(0));
    let alarms = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Monitoring probes: lock-free connectivity checks.
        for _ in 0..3 {
            let dc = Arc::clone(&dc);
            let stop = Arc::clone(&stop);
            let probes = Arc::clone(&probes);
            let alarms = Arc::clone(&alarms);
            let monitored = monitored.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for &(a, b) in &monitored {
                        if !dc.connected(a, b) {
                            alarms.fetch_add(1, Ordering::Relaxed);
                        }
                        probes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The event stream: links flap in a sliding window. Each round takes
        // a window of links down and brings the previous window back up.
        let dc_w = Arc::clone(&dc);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xF1A9);
            let links = topology.edges();
            let window = 64;
            let mut down: Vec<usize> = Vec::new();
            for round in 0..200 {
                // Recover the links that failed last round.
                for &i in &down {
                    let l = links[i];
                    dc_w.add_edge(l.u(), l.v());
                }
                down.clear();
                // Fail a fresh window of random links.
                for _ in 0..window {
                    let i = rng.gen_range(0..links.len());
                    let l = links[i];
                    dc_w.remove_edge(l.u(), l.v());
                    down.push(i);
                }
                if round % 50 == 0 {
                    println!("round {round}: {} links currently down", down.len());
                }
            }
            // Final recovery.
            for &i in &down {
                let l = links[i];
                dc_w.add_edge(l.u(), l.v());
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "monitoring finished: {} probes, {} reachability alarms",
        probes.load(Ordering::Relaxed),
        alarms.load(Ordering::Relaxed)
    );
    for &(a, b) in &monitored {
        println!(
            "  pair ({a:>4}, {b:>4}) reachable after recovery: {}",
            dc.connected(a, b)
        );
    }
}
