//! A sliding-window link-failure monitor with live observability.
//!
//! Models the paper's motivating communication-network scenario: a router
//! network whose links flap (fail and recover) over time, while monitoring
//! probes continuously ask "can data-centre A still reach data-centre B?".
//! Probes vastly outnumber link events, which is exactly the read-dominated
//! regime where the paper's non-blocking `connected` shines.
//!
//! On top of the traffic, this example turns on `dc_obs` and runs a
//! *scrape loop* the way a metrics agent would: every interval it gathers
//! an [`dc_obs::ObsSnapshot`] and prints the structural counters (links,
//! cuts, replacement searches) and sampled span percentiles, live while
//! the links flap. At the end it prints the Prometheus exposition text a
//! real scraper would ingest, plus the tail of the flight recorder — the
//! last structural events, merged chronologically across threads.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use dc_graph::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A road-grid-like backbone: 40x40 grid with most links present.
    let topology = generators::road_network(40, 40, 0.85, true, 7);
    let n = topology.num_vertices();
    println!(
        "topology: {} routers, {} links, density {:.2}",
        n,
        topology.num_edges(),
        topology.density()
    );

    // Observability on: counters + spans and the flight recorder. Both
    // default off; a production binary would flip these from a signal
    // handler or admin endpoint.
    dc_obs::set_metrics_enabled(true);
    dc_obs::set_tracing_enabled(true);

    let dc: Arc<dyn DynamicConnectivity> = Arc::from(Variant::OurAlgorithm.build(n));
    for link in topology.edges() {
        dc.add_edge(link.u(), link.v());
    }

    // The monitored pairs: opposite corners and a few random long-range pairs.
    let monitored: Vec<(u32, u32)> = vec![
        (0, (n - 1) as u32),
        (39, (n - 40) as u32),
        (20, (n - 21) as u32),
        (800, 801),
    ];

    let stop = Arc::new(AtomicBool::new(false));
    let probes = Arc::new(AtomicU64::new(0));
    let alarms = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Monitoring probes: lock-free connectivity checks.
        for _ in 0..3 {
            let dc = Arc::clone(&dc);
            let stop = Arc::clone(&stop);
            let probes = Arc::clone(&probes);
            let alarms = Arc::clone(&alarms);
            let monitored = monitored.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for &(a, b) in &monitored {
                        if !dc.connected(a, b) {
                            alarms.fetch_add(1, Ordering::Relaxed);
                        }
                        probes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The scrape loop: what a metrics agent sees while the links flap.
        let stop_s = Arc::clone(&stop);
        s.spawn(move || {
            let mut scrape = 0u32;
            while !stop_s.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                scrape += 1;
                let snap = dc_obs::ObsSnapshot::gather();
                println!(
                    "scrape {scrape}: links={} cuts={} replacements={} hint_hits={} \
                     hint_invalidations={}",
                    snap.counter(dc_obs::Counter::HdtAdditions),
                    snap.counter(dc_obs::Counter::HdtRemovals),
                    snap.counter(dc_obs::Counter::HdtReplacementsFound),
                    snap.counter(dc_obs::Counter::HintHits),
                    snap.counter(dc_obs::Counter::HintInvalidations),
                );
                let search = snap.span(dc_obs::SpanId::ReplacementSearch);
                if search.count() > 0 {
                    println!(
                        "  replacement search (sampled n={}): p50={}ns p99={}ns max={}ns",
                        search.count(),
                        search.p50(),
                        search.p99(),
                        search.max()
                    );
                }
            }
        });

        // The event stream: links flap in a sliding window. Each round takes
        // a window of links down and brings the previous window back up.
        let dc_w = Arc::clone(&dc);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xF1A9);
            let links = topology.edges();
            let window = 64;
            let mut down: Vec<usize> = Vec::new();
            for round in 0..200 {
                // Recover the links that failed last round.
                for &i in &down {
                    let l = links[i];
                    dc_w.add_edge(l.u(), l.v());
                }
                down.clear();
                // Fail a fresh window of random links.
                for _ in 0..window {
                    let i = rng.gen_range(0..links.len());
                    let l = links[i];
                    dc_w.remove_edge(l.u(), l.v());
                    down.push(i);
                }
                if round % 50 == 0 {
                    println!("round {round}: {} links currently down", down.len());
                }
            }
            // Final recovery.
            for &i in &down {
                let l = links[i];
                dc_w.add_edge(l.u(), l.v());
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "\nmonitoring finished: {} probes, {} reachability alarms",
        probes.load(Ordering::Relaxed),
        alarms.load(Ordering::Relaxed)
    );
    for &(a, b) in &monitored {
        println!(
            "  pair ({a:>4}, {b:>4}) reachable after recovery: {}",
            dc.connected(a, b)
        );
    }

    // What a Prometheus scrape of this process would return.
    println!("\n--- prometheus exposition ---");
    print!("{}", dc_obs::ObsSnapshot::gather().to_prometheus());

    // The flight recorder's tail: the last structural events, merged
    // chronologically across every thread that recorded.
    let events = dc_obs::dump_events();
    println!(
        "--- flight recorder: last 10 of {} live events ---",
        events.len()
    );
    for e in events.iter().rev().take(10).rev() {
        println!(
            "  t={:>12}ns thread={} {} a={} b={}",
            e.ts_nanos,
            e.thread,
            e.kind.name(),
            e.a,
            e.b
        );
    }
}
