//! The workload subsystem end to end: pick a topology, describe a phased
//! workload in the DSL, record it to a binary trace, replay the trace, and
//! cross-check the replayed run against the BFS oracle.
//!
//! Run with: `cargo run --release --example workload_scenarios`

use concurrent_dynamic_connectivity::workloads::{presets, Op, Trace};
use concurrent_dynamic_connectivity::{
    DynamicConnectivity, RecomputeOracle, Topology, Variant, WorkloadSpec,
};

fn main() {
    // 1. A ring of cliques: dense blocks joined by critical bridges — the
    //    adversarial regime for replacement searches.
    let topo = Topology::RingOfCliques {
        cliques: 24,
        clique_size: 6,
        extra_bridges: 12,
    };
    let graph = topo.build(42);
    println!(
        "topology {} -> |V|={}, |E|={}",
        topo.name(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. A phased workload, written in the DSL: build the graph up, churn
    //    it on a Zipf-hot edge set, serve a read storm, tear it down.
    let spec = WorkloadSpec::parse(
        "load 3000 r0 a100 d0; churn-burst 6000 r10 a45 d45 z0.8; \
         read-storm 6000 r95 a3 d2 z0.99; teardown 3000 r0 a0 d100",
        4,
        42,
    )
    .expect("valid DSL");
    let workload = spec.generate(&graph);
    for phase in &workload.phases {
        println!(
            "phase {:<12} {} ops across {} threads",
            phase.name,
            phase.total_operations(),
            phase.per_thread.len()
        );
    }

    // 3. Freeze it into a trace. The bytes are the reproducibility unit:
    //    ship them to another machine and the replay is identical.
    let trace = Trace::record(&workload, 42, graph.num_vertices() as u32);
    let bytes = trace.to_bytes();
    let replayed = Trace::from_bytes(&bytes).expect("own trace must decode");
    assert_eq!(trace, replayed, "decode must invert encode");
    println!(
        "trace: {} ops in {} bytes ({:.2} bytes/op), replay identical",
        trace.total_operations(),
        bytes.len(),
        bytes.len() as f64 / trace.total_operations() as f64
    );

    // 4. Replay the trace sequentially against the paper's main variant and
    //    the BFS oracle; every query must agree.
    let dc = Variant::OurAlgorithm.build(graph.num_vertices());
    let oracle = RecomputeOracle::new(graph.num_vertices());
    let mut queries = 0usize;
    for e in &replayed.preload {
        dc.add_edge(e.u(), e.v());
        oracle.add_edge(e.u(), e.v());
    }
    for stream in &replayed.per_thread {
        for op in stream {
            match *op {
                Op::Add(u, v) => {
                    dc.add_edge(u, v);
                    oracle.add_edge(u, v);
                }
                Op::Remove(u, v) => {
                    dc.remove_edge(u, v);
                    oracle.remove_edge(u, v);
                }
                Op::Query(u, v) => {
                    assert_eq!(dc.connected(u, v), oracle.connected(u, v));
                    queries += 1;
                }
            }
        }
    }
    println!("replayed against variant 9 + oracle: {queries} queries agreed");

    // 5. The presets cover the regimes the DSL doesn't need to spell out —
    //    e.g. the temporal sliding window.
    let sw = presets::sliding_window(&graph, 64, 25, 4, 42);
    println!(
        "sliding-window preset: {} ops (window 64, 25% queries)",
        sw.total_operations()
    );
}
