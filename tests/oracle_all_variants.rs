//! Sequential oracle comparison for every algorithm variant of the paper's
//! evaluation (Section 5.2), on every forest backend.
//!
//! The variant registry is crossed with [`ForestBackend::all()`]: the ETT
//! backend runs all fourteen variants (thirteen paper combinations plus the
//! batch engine), the LCT backend runs the globally-serialized-writer subset
//! it supports (`Variant::supports_backend`, `DESIGN.md` §12). Each built
//! instance is driven through the same randomized operation sequences as a
//! breadth-first-search oracle ([`dynconn::RecomputeOracle`]); every
//! `connected` answer must agree, and failures name both the variant and the
//! backend. The sequences are generated over several graph shapes that
//! mirror the paper's Table 1 catalog: sparse (|E| = |V|), dense
//! (|E| = |V|·log|V|), multi-component, and path/star-like adversarial
//! shapes.

use concurrent_dynamic_connectivity::{DynamicConnectivity, ForestBackend, Variant};
use dynconn::RecomputeOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds every `(variant, backend)` combination the registry supports over
/// `n` vertices, labelled `variant@backend` for failure messages. The batch
/// engine is registered first (idempotent) so variant 14 participates on
/// both backends.
fn backend_variants(n: usize) -> Vec<(Box<dyn DynamicConnectivity>, String)> {
    dc_batch::register_variant();
    let mut out = Vec::new();
    for &backend in ForestBackend::all() {
        for variant in Variant::all_for_backend(backend) {
            out.push((
                variant.build_with(n, backend),
                format!("{}@{}", variant.name(), backend.label()),
            ));
        }
    }
    out
}

/// Drives `dc` and `oracle` through `ops` random operations over `n`
/// vertices, with edges drawn from the `pool`, and asserts query agreement
/// after every operation.
#[allow(clippy::too_many_arguments)]
fn drive(
    dc: &dyn DynamicConnectivity,
    label: &str,
    oracle: &RecomputeOracle,
    n: u32,
    pool: &[(u32, u32)],
    ops: usize,
    seed: u64,
    remove_prob: f64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..ops {
        let roll: f64 = rng.gen();
        if roll < remove_prob {
            let &(u, v) = &pool[rng.gen_range(0..pool.len())];
            dc.remove_edge(u, v);
            oracle.remove_edge(u, v);
        } else {
            let &(u, v) = &pool[rng.gen_range(0..pool.len())];
            dc.add_edge(u, v);
            oracle.add_edge(u, v);
        }
        // Probe a handful of random pairs plus the endpoints just touched.
        for _ in 0..3 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            assert_eq!(
                dc.connected(a, b),
                oracle.connected(a, b),
                "{label}: step {step}: connected({a}, {b}) diverged from the oracle"
            );
        }
    }
}

/// Builds an edge pool resembling a sparse Erdős–Rényi graph (|E| ≈ |V|).
fn sparse_pool(n: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as usize)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            (u, v)
        })
        .collect()
}

/// Builds an edge pool resembling a dense graph (|E| ≈ 6·|V|), where most
/// additions are non-spanning and the lock-free fast path is exercised.
fn dense_pool(n: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..6 * n as usize)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            (u, v)
        })
        .collect()
}

/// Edge pool confined to `k` disjoint vertex blocks: components can never
/// merge across blocks, which stresses the per-component fine-grained locks.
fn multi_component_pool(n: u32, k: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let block = n / k;
    (0..3 * n as usize)
        .map(|_| {
            let b = rng.gen_range(0..k);
            let lo = b * block;
            let hi = (lo + block).min(n);
            let u = rng.gen_range(lo..hi);
            let mut v = rng.gen_range(lo..hi);
            if v == u {
                v = lo + (v - lo + 1) % (hi - lo);
            }
            (u, v)
        })
        .collect()
}

/// A long path plus a few chords: spanning-edge removals here almost always
/// need a replacement search across several levels.
fn path_with_chords_pool(n: u32) -> Vec<(u32, u32)> {
    let mut pool: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    for v in (0..n - 4).step_by(5) {
        pool.push((v, v + 4));
    }
    for v in (0..n / 2).step_by(7) {
        pool.push((v, n - 1 - v));
    }
    pool
}

#[test]
fn registry_covers_both_backends() {
    dc_batch::register_variant();
    let ett = Variant::all_for_backend(ForestBackend::Ett);
    let lct = Variant::all_for_backend(ForestBackend::Lct);
    assert_eq!(
        ett.len(),
        14,
        "ETT runs every variant incl. the batch engine"
    );
    assert!(lct.contains(&Variant::CoarseNonBlockingReads));
    assert!(lct.contains(&Variant::BatchEngine));
    for variant in Variant::all() {
        assert!(variant.supports_backend(ForestBackend::Ett));
        assert_eq!(
            lct.contains(variant),
            variant.supports_backend(ForestBackend::Lct),
            "{}",
            variant.name()
        );
    }
}

#[test]
fn all_variants_agree_with_oracle_on_sparse_graph() {
    let n = 64u32;
    let pool = sparse_pool(n, 0xA11CE);
    for (dc, label) in backend_variants(n as usize) {
        let oracle = RecomputeOracle::new(n as usize);
        drive(dc.as_ref(), &label, &oracle, n, &pool, 600, 7, 0.35);
    }
}

#[test]
fn all_variants_agree_with_oracle_on_dense_graph() {
    let n = 48u32;
    let pool = dense_pool(n, 0xD0C5);
    for (dc, label) in backend_variants(n as usize) {
        let oracle = RecomputeOracle::new(n as usize);
        drive(dc.as_ref(), &label, &oracle, n, &pool, 600, 11, 0.40);
    }
}

#[test]
fn all_variants_agree_with_oracle_on_multi_component_graph() {
    let n = 80u32;
    let pool = multi_component_pool(n, 5, 0xC0FFEE);
    for (dc, label) in backend_variants(n as usize) {
        let oracle = RecomputeOracle::new(n as usize);
        drive(dc.as_ref(), &label, &oracle, n, &pool, 600, 13, 0.45);
        // Cross-block pairs can never be connected.
        assert!(!dc.connected(0, n - 1), "{label}");
    }
}

#[test]
fn all_variants_agree_with_oracle_on_path_with_chords() {
    let n = 60u32;
    let pool = path_with_chords_pool(n);
    for (dc, label) in backend_variants(n as usize) {
        let oracle = RecomputeOracle::new(n as usize);
        // Start fully loaded so early removals hit spanning edges.
        for &(u, v) in &pool {
            dc.add_edge(u, v);
            oracle.add_edge(u, v);
        }
        drive(dc.as_ref(), &label, &oracle, n, &pool, 700, 17, 0.65);
    }
}

#[test]
fn all_variants_survive_add_remove_cycles_of_the_same_edge() {
    // Repeatedly toggling one spanning edge stresses the status state
    // machine (INITIAL -> SPANNING -> removed -> INITIAL ...) and the root
    // version protocol; the answer must flip in lock step.
    for (dc, label) in backend_variants(8) {
        dc.add_edge(0, 1);
        dc.add_edge(2, 3);
        for round in 0..50 {
            dc.add_edge(1, 2);
            assert!(dc.connected(0, 3), "{label} round {round}");
            dc.remove_edge(1, 2);
            assert!(!dc.connected(0, 3), "{label} round {round}");
        }
    }
}

#[test]
fn all_variants_handle_star_center_removal() {
    // A star: removing the centre's spanning edges one by one must shrink
    // the component exactly edge by edge (replacement search never finds a
    // substitute in a tree).
    let n = 40u32;
    for (dc, label) in backend_variants(n as usize) {
        for v in 1..n {
            dc.add_edge(0, v);
        }
        for v in 1..n {
            assert!(dc.connected(v, (v % (n - 1)) + 1), "{label}");
        }
        for v in 1..n {
            dc.remove_edge(0, v);
            assert!(!dc.connected(0, v), "{label}");
            if v + 1 < n {
                assert!(dc.connected(0, v + 1), "{label}");
            }
        }
    }
}

#[test]
fn all_variants_handle_two_cliques_with_a_bridge() {
    // Two K5 cliques joined by one bridge: the bridge is the only spanning
    // edge between the halves, every clique edge is non-spanning, and the
    // bridge removal must split exactly once (no replacement exists).
    let k = 5u32;
    for (dc, label) in backend_variants(2 * k as usize) {
        for a in 0..k {
            for b in (a + 1)..k {
                dc.add_edge(a, b);
                dc.add_edge(k + a, k + b);
            }
        }
        dc.add_edge(0, k);
        assert!(dc.connected(1, k + 1), "{label}");
        dc.remove_edge(0, k);
        assert!(!dc.connected(1, k + 1), "{label}");
        assert!(dc.connected(1, 3), "{label}");
        assert!(dc.connected(k + 1, k + 3), "{label}");
        // Clique edges survive: removing one intra-clique edge keeps the
        // clique connected through the remaining edges.
        dc.remove_edge(1, 3);
        assert!(dc.connected(1, 3), "{label}");
    }
}
