//! Differential tests of the bulk read path (`connected_many`) — the
//! interleaved, prefetched engine against the scalar memo oracle, per-pair
//! `connected`, and the BFS recompute oracle.
//!
//! Covers the edge cases the batched protocol must not trip over:
//!
//! * **self-pairs** `(v, v)` — answered `true` without touching the memo;
//! * **duplicate pairs** (same pair repeated, and repeated in the opposite
//!   orientation) — deduplicated endpoints share one memo entry, so every
//!   repetition must agree;
//! * **pairs straddling concurrent cuts** — readers bulk-query across a
//!   bridge the writer keeps cutting and re-linking; deterministic pairs
//!   are asserted exactly at every instant, racing pairs are validated by
//!   a quiescent differential sweep afterwards;
//! * **every interleave width and hint mode**, and, via proptest, **all
//!   fourteen variants** stay oracle-correct with the bulk engine routed
//!   through `Hdt::connected_many`.

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use dynconn::{Hdt, RecomputeOracle};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Every bulk-read configuration under test: the scalar oracle path plus
/// the interleaved engine at the width extremes and the default.
const WIDTHS: [usize; 4] = [1, 5, 8, 16];

/// Runs `pairs` through every bulk configuration of `hdt` and asserts each
/// answer list against per-pair `connected` (itself trusted via the
/// differential suites of `tests/oracle_all_variants.rs`).
fn assert_all_engines_match(hdt: &Hdt, pairs: &[(u32, u32)], context: &str) {
    let expected: Vec<bool> = pairs.iter().map(|&(u, v)| hdt.connected(u, v)).collect();
    let mut got = Vec::new();
    hdt.connected_many_scalar(pairs, &mut got);
    assert_eq!(got, expected, "{context}: scalar path diverged");
    for &hints in &[false, true] {
        hdt.set_read_hints(hints);
        for &width in &WIDTHS {
            hdt.set_interleave_width(width);
            got.clear();
            hdt.connected_many(pairs, &mut got);
            assert_eq!(
                got, expected,
                "{context}: interleaved (w={width}, hints={hints}) diverged"
            );
        }
    }
    hdt.set_read_hints(true);
}

/// Self-pairs, duplicates and both orientations of the same pair answer
/// exactly like per-pair `connected`, through every engine configuration.
#[test]
fn self_and_duplicate_pairs_match_per_pair_connected() {
    let hdt = Hdt::new(24);
    // Two components: a path 0..=9 and a triangle 20-21-22; 10..=19 isolated.
    for v in 0..9 {
        hdt.add_edge_locked(v, v + 1);
    }
    hdt.add_edge_locked(20, 21);
    hdt.add_edge_locked(21, 22);
    hdt.add_edge_locked(20, 22);
    let pairs = vec![
        (0, 9),   // connected, endpoints reused below
        (3, 3),   // self-pair inside a component
        (15, 15), // self-pair on an isolated vertex
        (0, 9),   // exact duplicate
        (9, 0),   // duplicate, opposite orientation
        (0, 20),  // across components
        (20, 0),  // ... and its flip
        (21, 22),
        (22, 22),
        (12, 13), // both isolated
        (0, 9),   // triplicate
        (9, 9),
    ];
    assert_all_engines_match(&hdt, &pairs, "static mixed pairs");
    // A cut between the duplicates' endpoints, then the same list again:
    // stale memo/hint state from the first sweep must revalidate.
    hdt.remove_edge_locked(4, 5);
    assert_all_engines_match(&hdt, &pairs, "after cutting 4-5");
    hdt.add_edge_locked(4, 5);
    assert_all_engines_match(&hdt, &pairs, "after re-linking 4-5");
}

/// A bulk run whose pair list is below the memo cutoff (< 4 pairs) and one
/// exactly at it behave identically through every engine.
#[test]
fn tiny_runs_and_cutoff_boundary_agree() {
    let hdt = Hdt::new(8);
    hdt.add_edge_locked(0, 1);
    hdt.add_edge_locked(2, 3);
    for len in 0..6 {
        let pairs: Vec<(u32, u32)> = (0..len)
            .map(|i| (i as u32 % 4, (i as u32 + 1) % 4))
            .collect();
        assert_all_engines_match(&hdt, &pairs, &format!("{len}-pair run"));
    }
}

/// Vertices that churn (bridge cuts land here).
const CHURN: u32 = 24;
/// Stable control vertices `CHURN..CHURN + STABLE`: a path that is never
/// churned, so bulk answers about it are deterministic at every instant.
const STABLE: u32 = 8;

/// Readers bulk-query pairs that straddle a bridge the writer keeps
/// cutting: deterministic sub-answers are asserted mid-churn, racing ones
/// after quiescence, interleaved vs scalar vs the recompute oracle.
#[test]
fn interleaved_agrees_with_scalar_under_concurrent_cuts() {
    let n = (CHURN + STABLE) as usize;
    let hdt = Hdt::new(n);
    let oracle = RecomputeOracle::new(n);
    // Stable path (never churned again).
    for v in CHURN..CHURN + STABLE - 1 {
        hdt.add_edge_locked(v, v + 1);
        oracle.add_edge(v, v + 1);
    }
    // Churned half: two cliques of 12 joined by bridge edges the writer
    // will cut and re-link, so bulk queries straddle real spanning cuts.
    for base in [0u32, 12u32] {
        for i in 0..12 {
            for j in (i + 1)..12 {
                if j == i + 1 || j == i + 5 {
                    hdt.add_edge_locked(base + i, base + j);
                    oracle.add_edge(base + i, base + j);
                }
            }
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let stop = &stop;
            let hdt = &hdt;
            scope.spawn(move || {
                let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Pairs 0..3 are deterministic under the churn below;
                    // the rest straddle the cut and race the writer.
                    let s = CHURN + (rand() % STABLE as u64) as u32;
                    let c = (rand() % CHURN as u64) as u32;
                    let straddle_a = (rand() % 12) as u32;
                    let straddle_b = 12 + (rand() % 12) as u32;
                    let pairs = [
                        (s, s),                             // self-pair: always true
                        (CHURN, CHURN + STABLE - 1),        // stable path: always true
                        (s, c),                             // stable vs churned: always false
                        (straddle_a, straddle_a),           // self-pair in the churn zone
                        (straddle_a, straddle_b),           // straddles the live cut
                        (straddle_b, straddle_a),           // ... duplicate, flipped
                        ((rand() % 12) as u32, straddle_b), // more racing traffic
                        (straddle_a, 12 + (rand() % 12) as u32),
                    ];
                    // Alternate engines so interleaved and scalar both run
                    // against the same churn.
                    out.clear();
                    if t == 0 {
                        hdt.connected_many(&pairs, &mut out);
                    } else {
                        hdt.connected_many_scalar(&pairs, &mut out);
                    }
                    assert!(out[0], "self-pair answered false");
                    assert!(out[1], "stable path split");
                    assert!(!out[2], "churned half reached the stable path");
                    assert!(out[3], "churn-zone self-pair answered false");
                    // out[4] and out[5] are the same pair twice, but each
                    // answer linearizes independently — the writer may cut
                    // the bridge between them, so they may legally differ
                    // mid-churn. The quiescent sweep below pins them down.
                }
            });
        }
        // The writer: cut and re-link the bridge, sprinkled with clique
        // edge churn so replacement searches actually run.
        for round in 0..200u32 {
            let a = round % 12;
            hdt.add_edge_locked(a, 12 + a);
            oracle.add_edge(a, 12 + a);
            hdt.remove_edge_locked(a, 12 + a);
            oracle.remove_edge(a, 12 + a);
            let (u, v) = (round % 11, (round % 11) + 1);
            hdt.remove_edge_locked(u, v);
            oracle.remove_edge(u, v);
            hdt.add_edge_locked(u, v);
            oracle.add_edge(u, v);
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Quiescent differential over all pairs, every engine configuration.
    let mut pairs = Vec::new();
    for u in 0..n as u32 {
        for v in u..n as u32 {
            pairs.push((u, v));
        }
    }
    let expected: Vec<bool> = pairs.iter().map(|&(u, v)| oracle.connected(u, v)).collect();
    let mut got = Vec::new();
    hdt.connected_many_scalar(&pairs, &mut got);
    assert_eq!(got, expected, "scalar diverged from the oracle after churn");
    for &hints in &[false, true] {
        hdt.set_read_hints(hints);
        for &width in &WIDTHS {
            hdt.set_interleave_width(width);
            got.clear();
            hdt.connected_many(&pairs, &mut got);
            assert_eq!(
                got, expected,
                "interleaved (w={width}, hints={hints}) diverged from the oracle after churn"
            );
        }
    }
}

/// A symbolic structural operation over a small vertex universe.
#[derive(Clone, Copy, Debug)]
enum SymOp {
    Add(u32, u32),
    Remove(u32, u32),
}

fn sym_op(n: u32) -> impl Strategy<Value = SymOp> {
    prop_oneof![
        (0..n, 0..n).prop_map(|(u, v)| SymOp::Add(u, v)),
        (0..n, 0..n).prop_map(|(u, v)| SymOp::Remove(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// After an arbitrary op sequence, a pair list salted with self-pairs
    /// and duplicates answers oracle-correct through every bulk engine
    /// configuration of a plain `Hdt`, and per-pair `connected` of **all
    /// fourteen variants** (whose bulk fan-out goes through the same
    /// `connected_many` door) agrees with the oracle on the same pairs.
    #[test]
    fn bulk_reads_match_oracle_for_all_variants(
        ops in proptest::collection::vec(sym_op(14), 1..80),
        raw_pairs in proptest::collection::vec((0u32..14, 0u32..14), 4..24),
    ) {
        dc_batch::register_variant();
        let n = 14usize;
        // Salt the pair list: every pair also appears flipped, plus one
        // self-pair per distinct first endpoint.
        let mut pairs = raw_pairs.clone();
        for &(u, v) in &raw_pairs {
            pairs.push((v, u));
        }
        let mut firsts: Vec<u32> = raw_pairs.iter().map(|&(u, _)| u).collect();
        firsts.dedup();
        for u in firsts {
            pairs.push((u, u));
        }

        let oracle = RecomputeOracle::new(n);
        let hdt = Hdt::new(n);
        for &op in &ops {
            match op {
                SymOp::Add(u, v) => {
                    hdt.add_edge_locked(u, v);
                    oracle.add_edge(u, v);
                }
                SymOp::Remove(u, v) => {
                    hdt.remove_edge_locked(u, v);
                    oracle.remove_edge(u, v);
                }
            }
        }
        let expected: Vec<bool> = pairs.iter().map(|&(u, v)| oracle.connected(u, v)).collect();
        let mut got = Vec::new();
        hdt.connected_many_scalar(&pairs, &mut got);
        prop_assert_eq!(&got, &expected, "scalar path diverged from the oracle");
        for &hints in &[false, true] {
            hdt.set_read_hints(hints);
            for &width in &WIDTHS {
                hdt.set_interleave_width(width);
                got.clear();
                hdt.connected_many(&pairs, &mut got);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "interleaved (w={}, hints={}) diverged from the oracle",
                    width,
                    hints
                );
            }
        }

        for variant in Variant::all_extended() {
            let dc = variant.build(n);
            for &op in &ops {
                match op {
                    SymOp::Add(u, v) => dc.add_edge(u, v),
                    SymOp::Remove(u, v) => dc.remove_edge(u, v),
                }
            }
            for (i, &(u, v)) in pairs.iter().enumerate() {
                prop_assert_eq!(
                    dc.connected(u, v),
                    expected[i],
                    "{}: connected({}, {}) diverged from the oracle",
                    variant.name(),
                    u,
                    v
                );
            }
        }
    }
}
