//! End-to-end tests that drive the benchmark harness's own workloads
//! (Section 5.1 scenarios) through the algorithm variants and compare the
//! result against reference computations.
//!
//! These tests close the loop between `dc-graph` (graph generation),
//! `dc-bench` (workload generation and the throughput runner) and `dynconn`
//! (the structures being measured): the same code paths the figures use are
//! exercised here with assertions instead of timers.

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use dc_bench::scenario::{Operation, Scenario, Workload};
use dc_bench::stats::collect_stats;
use dc_bench::throughput::run_throughput;
use dc_graph::generators;
use dynconn::{RecomputeOracle, UnionFind};

/// Applying a random-subset workload *sequentially* to a variant and to the
/// BFS oracle must yield identical answers for every query in the stream.
#[test]
fn random_subset_workload_matches_oracle_sequentially() {
    let graph = generators::erdos_renyi_nm(120, 300, 21);
    let workload = Workload::generate(
        &graph,
        Scenario::RandomSubset { read_percent: 50 },
        1,
        1_500,
        5,
    );

    for variant in [
        Variant::CoarseGrained,
        Variant::OurAlgorithm,
        Variant::FineNonBlockingReads,
    ] {
        let dc = variant.build(graph.num_vertices());
        let oracle = RecomputeOracle::new(graph.num_vertices());
        for e in &workload.preload {
            dc.add_edge(e.u(), e.v());
            oracle.add_edge(e.u(), e.v());
        }
        for (i, op) in workload.per_thread[0].iter().enumerate() {
            match *op {
                Operation::Add(u, v) => {
                    dc.add_edge(u, v);
                    oracle.add_edge(u, v);
                }
                Operation::Remove(u, v) => {
                    dc.remove_edge(u, v);
                    oracle.remove_edge(u, v);
                }
                Operation::Query(u, v) => {
                    assert_eq!(
                        dc.connected(u, v),
                        oracle.connected(u, v),
                        "{}: query {i} diverged",
                        variant.name()
                    );
                }
            }
        }
    }
}

/// After a concurrent incremental run the component structure must equal the
/// graph's true component structure (computed with union-find), for every
/// variant family.
#[test]
fn incremental_scenario_reproduces_graph_components() {
    let graph = generators::random_components(150, 360, 5, 33);
    let workload = Workload::generate(&graph, Scenario::Incremental, 3, 0, 7);

    // Reference: union-find over the full edge set.
    let mut uf = UnionFind::new(graph.num_vertices());
    for e in graph.edges() {
        uf.union(e.u(), e.v());
    }

    for variant in [
        Variant::CoarseGrained,
        Variant::FineGrained,
        Variant::OurAlgorithm,
        Variant::FlatCombiningNonBlockingReads,
    ] {
        let dc = variant.build(graph.num_vertices());
        let result = run_throughput(dc.as_ref(), &workload);
        assert_eq!(result.operations, graph.num_edges());
        // Spot-check component equality on a deterministic sample of pairs.
        for i in 0..graph.num_vertices() as u32 {
            let j = (i * 37 + 11) % graph.num_vertices() as u32;
            assert_eq!(
                dc.connected(i, j),
                uf.connected(i, j),
                "{}: pair ({i}, {j}) disagrees with union-find after incremental run",
                variant.name()
            );
        }
    }
}

/// After a concurrent decremental run every edge has been removed, so every
/// distinct pair must be disconnected.
#[test]
fn decremental_scenario_ends_fully_disconnected() {
    let graph = generators::erdos_renyi_nm(100, 260, 44);
    let workload = Workload::generate(&graph, Scenario::Decremental, 3, 0, 9);

    for variant in [
        Variant::CoarseGrained,
        Variant::OurAlgorithm,
        Variant::FineNonBlockingReads,
    ] {
        let dc = variant.build(graph.num_vertices());
        let result = run_throughput(dc.as_ref(), &workload);
        assert_eq!(result.operations, graph.num_edges());
        for i in (0..graph.num_vertices() as u32).step_by(7) {
            let j = (i + 13) % graph.num_vertices() as u32;
            if i != j {
                assert!(
                    !dc.connected(i, j),
                    "{}: pair ({i}, {j}) still connected after removing every edge",
                    variant.name()
                );
            }
        }
    }
}

/// A concurrent random-subset run must preserve the global invariant that the
/// structure only ever contains edges of the underlying graph: vertices in
/// different components *of the full graph* can never be reported connected.
#[test]
fn random_subset_respects_full_graph_component_boundaries() {
    let graph = generators::random_components(120, 300, 4, 55);
    let mut uf = UnionFind::new(graph.num_vertices());
    for e in graph.edges() {
        uf.union(e.u(), e.v());
    }
    let workload = Workload::generate(
        &graph,
        Scenario::RandomSubset { read_percent: 60 },
        3,
        800,
        13,
    );

    for variant in [
        Variant::OurAlgorithm,
        Variant::FineGrained,
        Variant::ParallelCombining,
    ] {
        let dc = variant.build(graph.num_vertices());
        let _ = run_throughput(dc.as_ref(), &workload);
        for i in 0..graph.num_vertices() as u32 {
            let j = (i * 31 + 7) % graph.num_vertices() as u32;
            if !uf.connected(i, j) {
                assert!(
                    !dc.connected(i, j),
                    "{}: ({i}, {j}) are in different full-graph components yet reported connected",
                    variant.name()
                );
            }
        }
    }
}

/// The Table 3 statistics collector must reproduce the qualitative split the
/// paper reports: dense graphs have high non-spanning rates and one giant
/// component, sparse graphs have low non-spanning rates and fragmented
/// components, and the multi-component graph caps its largest component at
/// roughly 1/k of the vertices.
#[test]
fn table3_statistics_reproduce_the_papers_qualitative_split() {
    let ops = 3_000;

    // Dense: |E| = |V| log |V| shape.
    let dense = generators::erdos_renyi_nm(300, 2_500, 3);
    let dense_stats = collect_stats(&dense, Scenario::RandomSubset { read_percent: 0 }, ops, 1);

    // Sparse: |E| = |V| shape.
    let sparse = generators::erdos_renyi_nm(1_500, 1_500, 3);
    let sparse_stats = collect_stats(&sparse, Scenario::RandomSubset { read_percent: 0 }, ops, 1);

    // 10 balanced components.
    let comps = generators::random_components(1_000, 4_000, 10, 3);
    let comps_stats = collect_stats(&comps, Scenario::RandomSubset { read_percent: 0 }, ops, 1);

    assert!(
        dense_stats.non_spanning_addition_percent
            > sparse_stats.non_spanning_addition_percent + 20.0,
        "dense {dense_stats:?} vs sparse {sparse_stats:?}"
    );
    assert!(
        dense_stats.largest_component_percent > 90.0,
        "dense graph should be one giant component: {dense_stats:?}"
    );
    assert!(
        sparse_stats.largest_component_percent < 50.0,
        "half-loaded sparse graph must stay fragmented: {sparse_stats:?}"
    );
    assert!(
        comps_stats.largest_component_percent < 30.0,
        "10-component graph cannot grow a giant component: {comps_stats:?}"
    );
}

/// Incremental statistics (Table 4): denser graphs have a higher share of
/// non-spanning additions, and the decremental scenario mirrors the same
/// rates by symmetry of the workload construction.
#[test]
fn table4_incremental_rates_grow_with_density() {
    let sparse = generators::erdos_renyi_nm(800, 800, 9);
    let dense = generators::erdos_renyi_nm(200, 2_400, 9);
    let s = collect_stats(&sparse, Scenario::Incremental, 0, 2);
    let d = collect_stats(&dense, Scenario::Incremental, 0, 2);
    assert!(
        d.non_spanning_addition_percent > s.non_spanning_addition_percent + 20.0,
        "dense {d:?} vs sparse {s:?}"
    );
}

/// The throughput runner reports sane numbers: all operations accounted for,
/// non-zero throughput, and an active-time rate within [0, 100].
#[test]
fn throughput_runner_accounting_is_consistent() {
    let graph = generators::road_network(12, 12, 0.6, true, 17);
    let workload = Workload::generate(
        &graph,
        Scenario::RandomSubset { read_percent: 80 },
        2,
        600,
        23,
    );
    for variant in [Variant::CoarseGrained, Variant::OurAlgorithm] {
        let dc = variant.build(graph.num_vertices());
        let r = run_throughput(dc.as_ref(), &workload);
        assert_eq!(r.threads, 2);
        assert_eq!(r.operations, 1_200);
        assert!(r.ops_per_ms > 0.0);
        assert!(r.millis > 0.0);
        assert!((0.0..=100.0).contains(&r.active_time_percent));
    }
}
