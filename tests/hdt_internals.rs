//! White-box tests of the HDT level structure through `dynconn::Hdt`'s
//! public API: the invariants of Section 4.1 (nested spanning forests,
//! component-size bounds per level) and the internal `validate()` checks are
//! asserted after realistic operation batches.

use dc_graph::generators;
use dynconn::Hdt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Loads `edges` into a fresh `Hdt` (single-writer, under the coarse lock
/// path used by every blocking variant).
fn load(n: usize, edges: &[(u32, u32)]) -> Hdt {
    let hdt = Hdt::new(n);
    for &(u, v) in edges {
        hdt.with_components_locked(u, v, || {
            hdt.add_edge_locked(u, v);
        });
    }
    hdt
}

fn random_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if v == u {
                v = (v + 1) % n;
            }
            (u, v)
        })
        .collect()
}

/// Invariant: the spanning forests are nested, `F0 ⊇ F1 ⊇ … ⊇ F_lmax`
/// (checked edge-wise through `has_tree_edge`).
fn assert_nested_forests(hdt: &Hdt, edges: &[(u32, u32)]) {
    for level in 1..hdt.num_levels() {
        for &(u, v) in edges {
            if hdt.forest(level).has_tree_edge(u, v) {
                assert!(
                    hdt.forest(level - 1).has_tree_edge(u, v),
                    "edge ({u}, {v}) is spanning at level {level} but missing at level {}",
                    level - 1
                );
            }
        }
    }
}

/// Invariant: every component of `G_i` has at most `n / 2^i` vertices.
fn assert_component_size_bounds(hdt: &Hdt) {
    let n = hdt.num_vertices() as u32;
    for level in 0..hdt.num_levels() {
        let bound = (n >> level).max(1);
        for v in 0..n {
            let size = hdt.forest(level).component_size(v);
            assert!(
                size <= bound.max(2),
                "level {level}: component of vertex {v} has {size} vertices, bound {bound}"
            );
        }
    }
}

#[test]
fn level_structure_invariants_hold_after_random_churn() {
    let n = 96u32;
    let pool = random_edges(n, 250, 0x11);
    let hdt = load(n as usize, &pool);
    let mut rng = StdRng::seed_from_u64(0x22);
    // Churn: remove and re-add random pool edges to force replacement
    // searches and level promotions.
    for _ in 0..600 {
        let (u, v) = pool[rng.gen_range(0..pool.len())];
        hdt.with_components_locked(u, v, || {
            if rng.gen_bool(0.5) {
                hdt.remove_edge_locked(u, v);
            } else {
                hdt.add_edge_locked(u, v);
            }
        });
    }
    hdt.validate();
    assert_nested_forests(&hdt, &pool);
    assert_component_size_bounds(&hdt);
}

#[test]
fn locked_and_lock_free_reads_agree_when_quiescent() {
    let n = 80u32;
    let pool = random_edges(n, 160, 0x33);
    let hdt = load(n as usize, &pool);
    for u in 0..n {
        for step in 1..4 {
            let v = (u + step * 17) % n;
            assert_eq!(
                hdt.connected(u, v),
                hdt.with_components_locked(u, v, || hdt.connected_locked(u, v)),
                "lock-free and locked reads disagree on ({u}, {v})"
            );
        }
    }
}

#[test]
fn duplicate_adds_and_absent_removes_report_false() {
    let hdt = Hdt::new(8);
    hdt.with_components_locked(0, 1, || {
        assert!(hdt.add_edge_locked(0, 1), "first addition must succeed");
        assert!(
            !hdt.add_edge_locked(0, 1),
            "duplicate addition must be a no-op"
        );
    });
    hdt.with_components_locked(2, 3, || {
        assert!(
            !hdt.remove_edge_locked(2, 3),
            "removing an absent edge must be a no-op"
        );
    });
    hdt.with_components_locked(0, 1, || {
        assert!(hdt.remove_edge_locked(0, 1));
        assert!(
            !hdt.remove_edge_locked(0, 1),
            "double removal must be a no-op"
        );
    });
    assert!(!hdt.connected(0, 1));
    hdt.validate();
}

#[test]
fn has_edge_tracks_the_true_edge_set() {
    let n = 32u32;
    let pool = random_edges(n, 80, 0x44);
    let hdt = Hdt::new(n as usize);
    let mut present = std::collections::HashSet::new();
    let mut rng = StdRng::seed_from_u64(0x55);
    for _ in 0..400 {
        let (u, v) = pool[rng.gen_range(0..pool.len())];
        let key = (u.min(v), u.max(v));
        hdt.with_components_locked(u, v, || {
            if rng.gen_bool(0.5) {
                hdt.add_edge_locked(u, v);
                present.insert(key);
            } else {
                hdt.remove_edge_locked(u, v);
                present.remove(&key);
            }
        });
    }
    for &(u, v) in &pool {
        let key = (u.min(v), u.max(v));
        assert_eq!(
            hdt.has_edge(u, v),
            present.contains(&key),
            "has_edge({u}, {v}) does not match the reference edge set"
        );
    }
}

#[test]
fn component_size_matches_reachable_set() {
    let graph = generators::random_components(90, 200, 3, 0x66);
    let hdt = Hdt::new(graph.num_vertices());
    for e in graph.edges() {
        hdt.with_components_locked(e.u(), e.v(), || {
            hdt.add_edge_locked(e.u(), e.v());
        });
    }
    // Reference reachability by BFS over the graph's adjacency.
    let adjacency = graph.adjacency();
    for start in (0..graph.num_vertices() as u32).step_by(9) {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(x) = stack.pop() {
            for &y in &adjacency[x as usize] {
                if seen.insert(y) {
                    stack.push(y);
                }
            }
        }
        assert_eq!(
            hdt.component_size(start),
            seen.len(),
            "component size of vertex {start} diverges from BFS"
        );
    }
}

#[test]
fn sampling_heuristic_does_not_change_answers() {
    // The sampling fast path (Section 5.2, "Sampling") is a performance
    // heuristic only: with and without it, connectivity answers must match.
    let n = 64u32;
    let pool = random_edges(n, 180, 0x77);
    let with_sampling = Hdt::new(n as usize);
    let without_sampling = Hdt::with_sampling(n as usize, 0);
    let mut rng = StdRng::seed_from_u64(0x88);
    for _ in 0..700 {
        let (u, v) = pool[rng.gen_range(0..pool.len())];
        let add = rng.gen_bool(0.55);
        for hdt in [&with_sampling, &without_sampling] {
            hdt.with_components_locked(u, v, || {
                if add {
                    hdt.add_edge_locked(u, v);
                } else {
                    hdt.remove_edge_locked(u, v);
                }
            });
        }
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        assert_eq!(
            with_sampling.connected(a, b),
            without_sampling.connected(a, b),
            "sampling changed the connectivity answer for ({a}, {b})"
        );
    }
    with_sampling.validate();
    without_sampling.validate();
}

#[test]
fn stats_snapshot_rates_are_well_formed() {
    let n = 50u32;
    let pool = random_edges(n, 300, 0x99);
    let hdt = load(n as usize, &pool);
    let mut rng = StdRng::seed_from_u64(0xAA);
    for _ in 0..300 {
        let (u, v) = pool[rng.gen_range(0..pool.len())];
        hdt.with_components_locked(u, v, || {
            if rng.gen_bool(0.5) {
                hdt.remove_edge_locked(u, v);
            } else {
                hdt.add_edge_locked(u, v);
            }
        });
    }
    let stats = hdt.stats();
    assert!((0.0..=100.0).contains(&stats.non_spanning_addition_rate()));
    assert!((0.0..=100.0).contains(&stats.non_spanning_removal_rate()));
}

#[test]
fn number_of_levels_is_logarithmic_in_n() {
    for n in [2usize, 3, 4, 10, 100, 1_000, 10_000] {
        let hdt = Hdt::new(n);
        let levels = hdt.num_levels();
        let lmax = (n as f64).log2().floor() as usize;
        assert!(
            levels >= lmax.max(1) && levels <= lmax + 2,
            "n = {n}: got {levels} levels, expected about ⌊log2 n⌋ + 1 = {}",
            lmax + 1
        );
    }
}

#[test]
fn worst_case_path_breaks_down_to_singletons() {
    // A path has no replacement edges at all: every removal is a real split,
    // exercising the full (unsuccessful) replacement search at every level.
    let n = 128u32;
    let hdt = Hdt::new(n as usize);
    for v in 0..n - 1 {
        hdt.with_components_locked(v, v + 1, || {
            hdt.add_edge_locked(v, v + 1);
        });
    }
    assert_eq!(hdt.component_size(0), n as usize);
    // Remove from the middle outwards.
    for v in 0..n - 1 {
        hdt.with_components_locked(v, v + 1, || {
            hdt.remove_edge_locked(v, v + 1);
        });
        assert!(!hdt.connected(v, v + 1));
    }
    for v in 0..n {
        assert_eq!(hdt.component_size(v), 1, "vertex {v} should be isolated");
    }
    hdt.validate();
}
