//! Linearizability checking of small concurrent histories.
//!
//! The paper's central correctness claim (Theorem 3.2 and the linearization
//! points listed in Appendix C) is that every variant is linearizable.  This
//! test records real concurrent histories — invocation and response
//! timestamps for every `add_edge` / `remove_edge` / `connected` call — and
//! then searches for a witness linearization: a total order of the operations
//! that (a) respects real-time order (an operation that finished before
//! another started must come first), (b) respects per-thread program order,
//! and (c) replays against a sequential dynamic connectivity model producing
//! exactly the observed `connected` return values.
//!
//! The histories are kept small (a few threads, a handful of operations each)
//! so the backtracking search is exact, and many randomized rounds are run to
//! cover different interleavings.

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One operation kind in a recorded history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Add(u32, u32),
    Remove(u32, u32),
    Connected(u32, u32),
}

/// A completed operation with its real-time window and observed result.
#[derive(Clone, Debug)]
struct Event {
    thread: usize,
    op: Op,
    /// `Some(answer)` for `Connected`, `None` for updates.
    result: Option<bool>,
    invoked: u64,
    responded: u64,
}

/// Sequential dynamic connectivity model used to replay candidate
/// linearizations: an edge set plus BFS.
#[derive(Clone, Default)]
struct SeqModel {
    edges: HashSet<(u32, u32)>,
}

impl SeqModel {
    fn key(u: u32, v: u32) -> (u32, u32) {
        (u.min(v), u.max(v))
    }

    fn apply(&mut self, op: Op) -> Option<bool> {
        match op {
            Op::Add(u, v) => {
                self.edges.insert(Self::key(u, v));
                None
            }
            Op::Remove(u, v) => {
                self.edges.remove(&Self::key(u, v));
                None
            }
            Op::Connected(u, v) => Some(self.connected(u, v)),
        }
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let mut stack = vec![u];
        let mut seen = HashSet::new();
        seen.insert(u);
        while let Some(x) = stack.pop() {
            for &(a, b) in &self.edges {
                let y = if a == x {
                    b
                } else if b == x {
                    a
                } else {
                    continue;
                };
                if y == v {
                    return true;
                }
                if seen.insert(y) {
                    stack.push(y);
                }
            }
        }
        false
    }
}

/// Exhaustive backtracking search for a valid linearization of `history`.
/// Returns `true` if one exists.
fn is_linearizable(history: &[Event]) -> bool {
    fn search(remaining: &mut Vec<usize>, history: &[Event], model: &SeqModel) -> bool {
        if remaining.is_empty() {
            return true;
        }
        // Candidates: operations not preceded (in real time or program order)
        // by any other remaining operation.
        let candidates: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                remaining.iter().all(|&j| {
                    j == i
                        || !(history[j].responded < history[i].invoked
                            || (history[j].thread == history[i].thread
                                && history[j].invoked < history[i].invoked))
                })
            })
            .collect();
        for i in candidates {
            let mut next_model = model.clone();
            let produced = next_model.apply(history[i].op);
            if produced != history[i].result {
                continue;
            }
            let pos = remaining.iter().position(|&x| x == i).unwrap();
            remaining.swap_remove(pos);
            if search(remaining, history, &next_model) {
                return true;
            }
            remaining.push(i);
        }
        false
    }
    let mut remaining: Vec<usize> = (0..history.len()).collect();
    search(&mut remaining, history, &SeqModel::default())
}

/// Runs one concurrent round on `variant`: `threads` threads each execute
/// `ops_per_thread` random operations over `n` vertices and record the
/// history; the recorded history must be linearizable.
fn run_round(variant: Variant, n: u32, threads: usize, ops_per_thread: usize, seed: u64) {
    let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n as usize));
    let clock = Arc::new(AtomicU64::new(0));
    let mut per_thread_events: Vec<Vec<Event>> = Vec::new();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let dc = Arc::clone(&dc);
                let clock = Arc::clone(&clock);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E3779B9));
                    let mut events = Vec::with_capacity(ops_per_thread);
                    for _ in 0..ops_per_thread {
                        let u = rng.gen_range(0..n);
                        let mut v = rng.gen_range(0..n);
                        if v == u {
                            v = (v + 1) % n;
                        }
                        let op = match rng.gen_range(0..3) {
                            0 => Op::Add(u, v),
                            1 => Op::Remove(u, v),
                            _ => Op::Connected(u, v),
                        };
                        let invoked = clock.fetch_add(1, Ordering::SeqCst);
                        let result = match op {
                            Op::Add(a, b) => {
                                dc.add_edge(a, b);
                                None
                            }
                            Op::Remove(a, b) => {
                                dc.remove_edge(a, b);
                                None
                            }
                            Op::Connected(a, b) => Some(dc.connected(a, b)),
                        };
                        let responded = clock.fetch_add(1, Ordering::SeqCst);
                        events.push(Event {
                            thread: t,
                            op,
                            result,
                            invoked,
                            responded,
                        });
                    }
                    events
                })
            })
            .collect();
        for h in handles {
            per_thread_events.push(h.join().expect("history worker panicked"));
        }
    });

    let history: Vec<Event> = per_thread_events.into_iter().flatten().collect();
    assert!(
        is_linearizable(&history),
        "{}: non-linearizable history found (seed {seed}): {history:#?}",
        variant.name()
    );
}

#[test]
fn checker_accepts_a_trivially_sequential_history() {
    let history = vec![
        Event {
            thread: 0,
            op: Op::Add(0, 1),
            result: None,
            invoked: 0,
            responded: 1,
        },
        Event {
            thread: 0,
            op: Op::Connected(0, 1),
            result: Some(true),
            invoked: 2,
            responded: 3,
        },
        Event {
            thread: 0,
            op: Op::Remove(0, 1),
            result: None,
            invoked: 4,
            responded: 5,
        },
        Event {
            thread: 0,
            op: Op::Connected(0, 1),
            result: Some(false),
            invoked: 6,
            responded: 7,
        },
    ];
    assert!(is_linearizable(&history));
}

#[test]
fn checker_rejects_an_impossible_history() {
    // The query observes the edge strictly before it was ever added, with no
    // overlap — no linearization can explain that.
    let history = vec![
        Event {
            thread: 0,
            op: Op::Connected(0, 1),
            result: Some(true),
            invoked: 0,
            responded: 1,
        },
        Event {
            thread: 1,
            op: Op::Add(0, 1),
            result: None,
            invoked: 2,
            responded: 3,
        },
    ];
    assert!(!is_linearizable(&history));
}

#[test]
fn checker_accepts_overlapping_operations_in_either_order() {
    // The query overlaps the addition, so both answers are legal.
    for answer in [true, false] {
        let history = vec![
            Event {
                thread: 0,
                op: Op::Add(0, 1),
                result: None,
                invoked: 0,
                responded: 3,
            },
            Event {
                thread: 1,
                op: Op::Connected(0, 1),
                result: Some(answer),
                invoked: 1,
                responded: 2,
            },
        ];
        assert!(is_linearizable(&history), "answer {answer} should be legal");
    }
}

#[test]
fn our_algorithm_histories_are_linearizable() {
    for round in 0..25 {
        run_round(Variant::OurAlgorithm, 6, 3, 5, 1000 + round);
    }
}

#[test]
fn fine_grained_nonblocking_read_histories_are_linearizable() {
    for round in 0..25 {
        run_round(Variant::FineNonBlockingReads, 6, 3, 5, 2000 + round);
    }
}

#[test]
fn coarse_nonblocking_read_histories_are_linearizable() {
    for round in 0..25 {
        run_round(Variant::CoarseNonBlockingReads, 6, 3, 5, 3000 + round);
    }
}

#[test]
fn combining_histories_are_linearizable() {
    for round in 0..15 {
        run_round(
            Variant::FlatCombiningNonBlockingReads,
            6,
            3,
            4,
            4000 + round,
        );
        run_round(Variant::ParallelCombining, 6, 3, 4, 5000 + round);
    }
}

#[test]
fn nonblocking_coarse_histories_are_linearizable() {
    for round in 0..25 {
        run_round(Variant::OurAlgorithmCoarse, 6, 3, 5, 6000 + round);
    }
}
