//! Multi-threaded stress tests for the concurrent dynamic connectivity
//! variants.
//!
//! The strongest checks use *region ownership*: each worker thread operates
//! only on edges inside its own disjoint vertex block and keeps a private
//! sequential oracle for that block, so every one of its own queries has a
//! deterministic expected answer even though other threads are concurrently
//! mutating their blocks through the same shared structure.  A separate
//! reader thread asserts the global invariant that blocks never become
//! connected to each other.

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use dynconn::RecomputeOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Variants worth stressing concurrently (one per synchronization family);
/// running all thirteen would multiply the runtime without adding coverage.
fn stressed_variants() -> Vec<Variant> {
    vec![
        Variant::CoarseGrained,
        Variant::CoarseNonBlockingReads,
        Variant::FineGrained,
        Variant::FineNonBlockingReads,
        Variant::OurAlgorithm,
        Variant::OurAlgorithmCoarse,
        Variant::ParallelCombining,
        Variant::FlatCombiningNonBlockingReads,
    ]
}

/// Each thread owns a disjoint block of vertices and mirrors its operations
/// in a private oracle; all of its own connectivity queries must match the
/// oracle exactly, because no other thread ever touches its block.
#[test]
fn region_owners_always_agree_with_their_private_oracle() {
    let threads = 3usize;
    let block = 24u32;
    let n = threads as u32 * block;
    let ops_per_thread = 400usize;

    for variant in stressed_variants() {
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n as usize));
        std::thread::scope(|s| {
            for t in 0..threads {
                let dc = Arc::clone(&dc);
                s.spawn(move || {
                    let lo = t as u32 * block;
                    let hi = lo + block;
                    let oracle = RecomputeOracle::new(n as usize);
                    let mut rng = StdRng::seed_from_u64(0x5EED ^ t as u64);
                    for step in 0..ops_per_thread {
                        let u = rng.gen_range(lo..hi);
                        let mut v = rng.gen_range(lo..hi);
                        if v == u {
                            v = lo + (v - lo + 1) % block;
                        }
                        match rng.gen_range(0..10) {
                            0..=3 => {
                                dc.add_edge(u, v);
                                oracle.add_edge(u, v);
                            }
                            4..=6 => {
                                dc.remove_edge(u, v);
                                oracle.remove_edge(u, v);
                            }
                            _ => {}
                        }
                        let a = rng.gen_range(lo..hi);
                        let b = rng.gen_range(lo..hi);
                        assert_eq!(
                            dc.connected(a, b),
                            oracle.connected(a, b),
                            "{}: thread {t} step {step} diverged inside its own block",
                            variant.name()
                        );
                    }
                });
            }
        });
        // Blocks stay mutually disconnected.
        for t in 1..threads as u32 {
            assert!(
                !dc.connected(0, t * block),
                "{}: blocks merged across region boundaries",
                variant.name()
            );
        }
    }
}

/// A fixed backbone path is built before the threads start; writers churn
/// edges strictly among the remaining vertices.  Readers assert that the
/// backbone stays connected and that a deliberately isolated vertex never
/// joins it — precisely the "no out-of-thin-air components / no phantom
/// splits" guarantee of the single-writer ETT carried up through the full
/// algorithm.
#[test]
fn readers_never_observe_phantom_splits_or_merges() {
    let n = 96u32;
    let backbone_len = 24u32;
    let isolated = n - 1;

    for variant in stressed_variants() {
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n as usize));
        for v in 0..backbone_len - 1 {
            dc.add_edge(v, v + 1);
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            // Two readers.
            for r in 0..2u64 {
                let dc = Arc::clone(&dc);
                let stop = Arc::clone(&stop);
                let name = variant.name();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(r);
                    let mut checks = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let a = rng.gen_range(0..backbone_len);
                        let b = rng.gen_range(0..backbone_len);
                        assert!(dc.connected(a, b), "{name}: backbone pair ({a},{b}) split");
                        assert!(
                            !dc.connected(0, isolated),
                            "{name}: isolated vertex joined the backbone"
                        );
                        checks += 1;
                    }
                    assert!(checks > 0, "{name}: reader made no progress");
                });
            }
            // Two writers churning the churn zone [backbone_len, n-1).
            for w in 0..2u64 {
                let dc = Arc::clone(&dc);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let lo = backbone_len + w as u32 * 30;
                    let hi = lo + 30;
                    let mut rng = StdRng::seed_from_u64(0xBEEF ^ w);
                    for _ in 0..2_000 {
                        let u = rng.gen_range(lo..hi);
                        let mut v = rng.gen_range(lo..hi);
                        if v == u {
                            v = lo + (v - lo + 1) % (hi - lo);
                        }
                        if rng.gen_bool(0.55) {
                            dc.add_edge(u, v);
                        } else {
                            dc.remove_edge(u, v);
                        }
                    }
                    if w == 0 {
                        stop.store(true, Ordering::Relaxed);
                    }
                });
            }
        });
    }
}

/// Concurrent incremental insertion of a connected graph must end fully
/// connected, and concurrent decremental deletion of every edge must end
/// fully disconnected — deterministic end states regardless of interleaving.
#[test]
fn concurrent_incremental_and_decremental_end_states_are_exact() {
    let n = 81usize; // 9x9 grid
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for r in 0..9u32 {
        for c in 0..9u32 {
            let v = r * 9 + c;
            if c + 1 < 9 {
                edges.push((v, v + 1));
            }
            if r + 1 < 9 {
                edges.push((v, v + 9));
            }
        }
    }

    for variant in stressed_variants() {
        // Incremental: 3 threads insert disjoint slices of the edge list.
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n));
        std::thread::scope(|s| {
            for t in 0..3usize {
                let dc = Arc::clone(&dc);
                let slice: Vec<(u32, u32)> = edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == t)
                    .map(|(_, &e)| e)
                    .collect();
                s.spawn(move || {
                    for (u, v) in slice {
                        dc.add_edge(u, v);
                    }
                });
            }
        });
        for v in 1..n as u32 {
            assert!(
                dc.connected(0, v),
                "{}: grid not connected after concurrent insertion",
                variant.name()
            );
        }

        // Decremental: remove everything concurrently.
        std::thread::scope(|s| {
            for t in 0..3usize {
                let dc = Arc::clone(&dc);
                let slice: Vec<(u32, u32)> = edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == t)
                    .map(|(_, &e)| e)
                    .collect();
                s.spawn(move || {
                    for (u, v) in slice {
                        dc.remove_edge(u, v);
                    }
                });
            }
        });
        for v in 1..20u32 {
            assert!(
                !dc.connected(0, v),
                "{}: edges survived concurrent decremental run",
                variant.name()
            );
        }
    }
}

/// All threads hammer the *same* small edge set (maximum contention): the
/// structure must neither deadlock nor corrupt itself, and once the dust
/// settles a full add of a spanning path must behave normally.
#[test]
fn high_contention_on_a_shared_edge_set_stays_safe() {
    let n = 16u32;
    let hot_edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (2, 5)];

    for variant in stressed_variants() {
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n as usize));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dc = Arc::clone(&dc);
                let hot = hot_edges.clone();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..1_500 {
                        let (u, v) = hot[rng.gen_range(0..hot.len())];
                        match rng.gen_range(0..3) {
                            0 => dc.add_edge(u, v),
                            1 => dc.remove_edge(u, v),
                            _ => {
                                let _ = dc.connected(u, v);
                            }
                        }
                    }
                });
            }
        });
        // Quiesced: force a known state and verify exact behaviour.
        for &(u, v) in &hot_edges {
            dc.remove_edge(u, v);
        }
        assert!(!dc.connected(0, 4), "{}", variant.name());
        for &(u, v) in &hot_edges {
            dc.add_edge(u, v);
        }
        assert!(dc.connected(0, 5), "{}", variant.name());
        assert!(!dc.connected(0, 15), "{}", variant.name());
    }
}

/// Read-only concurrency sanity: once the graph is frozen, any number of
/// readers must agree on every answer (and the non-blocking read path must
/// not mutate anything observable).
#[test]
fn frozen_graph_readers_are_deterministic() {
    let n = 128u32;
    let mut rng = StdRng::seed_from_u64(99);
    let edges: Vec<(u32, u32)> = (0..200)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if u == v {
                v = (v + 1) % n;
            }
            (u, v)
        })
        .collect();

    for variant in [
        Variant::CoarseNonBlockingReads,
        Variant::FineNonBlockingReads,
        Variant::OurAlgorithm,
        Variant::FlatCombiningNonBlockingReads,
    ] {
        let dc: Arc<dyn DynamicConnectivity> = Arc::from(variant.build(n as usize));
        let oracle = RecomputeOracle::new(n as usize);
        for &(u, v) in &edges {
            dc.add_edge(u, v);
            oracle.add_edge(u, v);
        }
        let expected: Vec<bool> = (0..n).map(|v| oracle.connected(0, v)).collect();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let dc = Arc::clone(&dc);
                let expected = expected.clone();
                let name = variant.name();
                s.spawn(move || {
                    for round in 0..20 {
                        for v in 0..n {
                            assert_eq!(
                                dc.connected(0, v),
                                expected[v as usize],
                                "{name}: round {round}, vertex {v}"
                            );
                        }
                    }
                });
            }
        });
    }
}
