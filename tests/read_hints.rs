//! Differential tests of the root-hint read fast path against the BFS
//! oracle, across every algorithm variant (the paper's thirteen plus the
//! `dc_batch` engine), under churn.
//!
//! The hint cache is exercised in the two regimes that matter:
//!
//! * **concurrently** — reader threads hammer `connected` while a writer
//!   churns the structure, so validations race with version bumps
//!   mid-flight (answers on deterministically stable pairs are asserted
//!   exactly);
//! * **across churn rounds** — the same structure is queried, churned, and
//!   queried again, so the quiescent differential passes run against a
//!   cache full of *stale* hints from the previous round, not a cold one.
//!   Every stale hint must fail validation and re-climb to the truth.

use concurrent_dynamic_connectivity::{DynamicConnectivity, Variant};
use dynconn::RecomputeOracle;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Vertices that churn (edges are drawn from this range only).
const CHURN: u32 = 32;
/// Stable control vertices `CHURN..CHURN + STABLE`, preloaded as a path and
/// never churned: their connectivity (and their disconnection from the
/// churned half) is deterministic at every instant.
const STABLE: u32 = 8;

/// One churn step: an add or remove of pool edge `index % pool.len()`.
#[derive(Clone, Debug)]
struct ChurnOp {
    add: bool,
    index: usize,
}

fn churn_strategy() -> impl Strategy<Value = Vec<ChurnOp>> {
    proptest::collection::vec(
        (any::<bool>(), any::<usize>()).prop_map(|(add, index)| ChurnOp { add, index }),
        40..120,
    )
}

/// A deterministic edge pool over the churned vertices: a cycle, its
/// chords, and a few parallel-ish extras — dense enough that removals hit
/// both spanning and non-spanning edges (so hints see replacement searches
/// *and* cheap non-structural churn).
fn edge_pool() -> Vec<(u32, u32)> {
    let mut pool = Vec::new();
    for v in 0..CHURN {
        pool.push((v, (v + 1) % CHURN));
        pool.push((v, (v + 5) % CHURN));
        pool.push((v, (v + 13) % CHURN));
    }
    pool
}

/// Runs `ops` against `dc` and the oracle from one writer thread while
/// reader threads exercise the hint cache concurrently, then runs a
/// quiescent multi-threaded differential sweep. Returns with `dc` and
/// `oracle` in agreement.
fn churn_round(
    dc: &dyn DynamicConnectivity,
    oracle: &RecomputeOracle,
    pool: &[(u32, u32)],
    ops: &[ChurnOp],
    round: u64,
) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Readers: exact asserts on deterministic pairs, plus unchecked
        // traffic over the churned half (those answers race with the writer
        // and are validated by the quiescent sweep below).
        for t in 0..2u64 {
            let stop = &stop;
            scope.spawn(move || {
                let mut x = (round + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (t + 1);
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    let s1 = CHURN + (rand() % STABLE as u64) as u32;
                    let s2 = CHURN + (rand() % STABLE as u64) as u32;
                    assert!(dc.connected(s1, s2), "stable path split");
                    let c = (rand() % CHURN as u64) as u32;
                    assert!(!dc.connected(s1, c), "churned half reached the stable path");
                    let c2 = (rand() % CHURN as u64) as u32;
                    let _ = std::hint::black_box(dc.connected(c, c2));
                }
            });
        }
        for op in ops {
            let (u, v) = pool[op.index % pool.len()];
            if op.add {
                dc.add_edge(u, v);
                oracle.add_edge(u, v);
            } else {
                dc.remove_edge(u, v);
                oracle.remove_edge(u, v);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiescent differential: several reader threads sweep random pairs
    // (plus an exhaustive pass over a vertex band) against the oracle. The
    // hint slots still hold whatever the concurrent phase left in them —
    // including hints installed before this round's churn — so stale-hint
    // validation is on the hook for every answer.
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            scope.spawn(move || {
                let mut x = (round + 7).wrapping_mul(0xD134_2543_DE82_EF95) ^ (t + 1);
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let n = (CHURN + STABLE) as u64;
                for _ in 0..120 {
                    let a = (rand() % n) as u32;
                    let b = (rand() % n) as u32;
                    assert_eq!(
                        dc.connected(a, b),
                        oracle.connected(a, b),
                        "round {round}: connected({a}, {b}) diverged from the oracle"
                    );
                }
                // Repeat a band twice so the second pass reads hints the
                // first pass just installed.
                for _ in 0..2 {
                    for a in 0..8u32 {
                        for b in 0..n as u32 {
                            assert_eq!(
                                dc.connected(a, b),
                                oracle.connected(a, b),
                                "round {round}: repeat connected({a}, {b}) diverged"
                            );
                        }
                    }
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Every variant agrees with the oracle through three churn rounds with
    /// concurrent hinted readers (see the module docs for what each round
    /// exercises).
    #[test]
    fn hinted_reads_match_oracle_under_churn_for_all_variants(
        rounds in proptest::collection::vec(churn_strategy(), 3..4),
        case_seed in any::<u64>(),
    ) {
        dc_batch::register_variant();
        let pool = edge_pool();
        let n = (CHURN + STABLE) as usize;
        for variant in Variant::all_extended() {
            let dc = variant.build(n);
            let oracle = RecomputeOracle::new(n);
            // The stable control path (never touched again).
            for v in CHURN..CHURN + STABLE - 1 {
                dc.add_edge(v, v + 1);
                oracle.add_edge(v, v + 1);
            }
            for (i, ops) in rounds.iter().enumerate() {
                churn_round(
                    dc.as_ref(),
                    &oracle,
                    &pool,
                    ops,
                    case_seed ^ (i as u64) << 8,
                );
            }
            // The lock-free-read variants must actually have gone through
            // the cache (hits or misses — under churn both occur).
            if let Some((hits, misses)) = dc.read_hint_counters() {
                let lock_free_reads = matches!(
                    variant.paper_number(),
                    3 | 5 | 8 | 9 | 10 | 11 | 13 | 14
                );
                if lock_free_reads {
                    prop_assert!(
                        hits + misses > 0,
                        "{}: hint cache never consulted",
                        variant.name()
                    );
                }
            }
        }
    }
}
