//! The cross-layer chaos soak (`DESIGN.md` §13): seed-driven faults from
//! `dc_faults` — leader panics before apply and after commit, arena
//! allocation failures, intake stalls, delayed epoch advances — thrown at
//! the batch engine on **both** forest backends, differentially checked
//! against a [`RecomputeOracle`] over every acknowledged operation.
//!
//! What "surviving chaos" means, concretely:
//!
//! * **zero hangs** — every round runs under a hard deadline on a separate
//!   thread; a waiter left spinning on a dead leadership fails the test;
//! * **100% differential agreement** — every acked query answer matches the
//!   oracle, every acked update is reflected (capacity-rejected adds are
//!   drained and excluded on both sides);
//! * **typed failure, never corruption** — after a poisoning panic every
//!   door fails fast with `EngineError::Poisoned` and the poison note names
//!   the injected panic.
//!
//! The schedules are deterministic (xorshift over the seed, fixed check
//! ordinals), so this soak never flakes: the same faults fire at the same
//! operations on every run.

use concurrent_dynamic_connectivity::faults::{
    self as dc_faults, ChaosConfig, ChaosSchedule, InjectionPoint,
};
use concurrent_dynamic_connectivity::{
    BatchEngine, DynamicForest, EngineError, EulerForest, LctForest, RecomputeOracle, WaitPolicy,
};
use dynconn::DynamicConnectivity;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 32;
const OPS_PER_ROUND: usize = 500;
const SEEDS_PER_BACKEND: u64 = 16;
const ROUND_DEADLINE: Duration = Duration::from_secs(60);

/// Per-round fault budget: one of each panic (only one can fire — the first
/// poisons the engine), two of everything recoverable.
fn round_schedule(seed: u64) -> Arc<ChaosSchedule> {
    let mut faults = [0u32; InjectionPoint::COUNT];
    faults[InjectionPoint::LeaderPanicBeforeApply as usize] = 1;
    faults[InjectionPoint::LeaderPanicAfterCommit as usize] = 1;
    faults[InjectionPoint::ArenaAlloc as usize] = 2;
    faults[InjectionPoint::IntakeStall as usize] = 2;
    faults[InjectionPoint::EpochAdvanceDelay as usize] = 2;
    Arc::new(ChaosSchedule::from_config(ChaosConfig {
        seed,
        horizon: 120,
        faults_per_point: faults,
        stall: Duration::from_millis(1),
    }))
}

/// Panics raised by chaos injections are expected noise; keep the default
/// hook's backtraces for everything else.
fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .unwrap_or("")
                });
            if !msg.contains("chaos injection") {
                default(info);
            }
        }));
    });
}

#[derive(Default)]
struct SoakTally {
    rounds: u64,
    poisons: u64,
    rejections: u64,
    fired: [u64; InjectionPoint::COUNT],
}

/// One seeded round: effective ops through the adapter door, oracle in
/// lockstep, chaos installed for the duration. Single-driver on purpose —
/// it makes "the acked prefix" exact, so agreement can be asserted op by
/// op. (Concurrent waiter release is covered by the engine's own tests.)
fn soak_round<F: DynamicForest>(seed: u64, tally: &mut SoakTally) {
    let schedule = round_schedule(seed);
    let mut engine = BatchEngine::<F>::with_options_on(N, 64, 2);
    // A bounded wait would only ever fire against a wedged leadership;
    // reaching it is a hang, and the deadline types it out as such.
    engine.set_wait_policy(WaitPolicy::with_deadline(Duration::from_secs(5)));
    let oracle = RecomputeOracle::new(N);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x00dd_ba11).wrapping_add(7));
    let mut poisoned = false;

    dc_faults::install(Arc::clone(&schedule));
    for _ in 0..OPS_PER_ROUND {
        let kind = rng.gen_range(0u32..10);
        let outcome: Result<(), EngineError> = if kind < 4 || present.is_empty() {
            // Effective add: an absent, non-loop edge.
            let (u, v) = loop {
                let u = rng.gen_range(0..N as u32);
                let v = rng.gen_range(0..N as u32);
                if u != v && !present.contains(&(u.min(v), u.max(v))) {
                    break (u, v);
                }
            };
            match engine.try_add_edge(u, v) {
                Ok(()) => {
                    let rejected = engine.drain_rejected();
                    tally.rejections += rejected.len() as u64;
                    if rejected.is_empty() {
                        oracle.add_edge(u, v);
                        present.insert((u.min(v), u.max(v)));
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else if kind < 7 {
            // Effective remove: a present edge.
            let &(u, v) = present.iter().next().expect("non-empty checked above");
            match engine.try_remove_edge(u, v) {
                Ok(()) => {
                    oracle.remove_edge(u, v);
                    present.remove(&(u, v));
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else {
            let u = rng.gen_range(0..N as u32);
            let v = rng.gen_range(0..N as u32);
            match engine.try_connected(u, v) {
                Ok(answer) => {
                    assert_eq!(
                        answer,
                        oracle.connected(u, v),
                        "seed {seed}: acked query disagrees with the oracle on ({u}, {v})"
                    );
                    Ok(())
                }
                Err(e) => Err(e),
            }
        };
        match outcome {
            Ok(()) => {}
            Err(EngineError::Poisoned) => {
                poisoned = true;
                break;
            }
            Err(EngineError::Timeout) => {
                panic!("seed {seed}: single-driver round hit the wait deadline — a hang")
            }
        }
    }
    dc_faults::uninstall();

    if poisoned {
        // Typed, terminal, explained — and fail-fast on every door.
        assert!(engine.is_poisoned());
        let note = engine.poison_note().expect("poison note recorded");
        assert!(note.contains("chaos injection"), "seed {seed}: {note}");
        assert_eq!(engine.try_add_edge(0, 1), Err(EngineError::Poisoned));
        assert_eq!(engine.try_connected(0, 1), Err(EngineError::Poisoned));
        assert_eq!(
            engine.try_apply_batch(&[dynconn::BatchOp::Query(0, 1)]),
            Err(EngineError::Poisoned)
        );
        tally.poisons += 1;
    } else {
        // A round the panics missed: full-universe differential sweep.
        for u in 0..N as u32 {
            for v in (u + 1)..N as u32 {
                assert_eq!(
                    engine.try_connected(u, v),
                    Ok(oracle.connected(u, v)),
                    "seed {seed}: final sweep disagrees on ({u}, {v})"
                );
            }
        }
    }
    for point in InjectionPoint::ALL {
        tally.fired[point as usize] += schedule.fired(point);
    }
    tally.rounds += 1;
}

/// Runs `rounds` on a worker thread under a hard deadline: a hung waiter
/// (the exact failure mode the poison sweep and retract exist to prevent)
/// turns into a loud test failure instead of a wedged CI job.
fn with_deadline(
    label: &'static str,
    rounds: impl FnOnce() -> SoakTally + Send + 'static,
) -> SoakTally {
    let (tx, rx) = mpsc::channel();
    std::thread::Builder::new()
        .name(format!("chaos-soak-{label}"))
        .spawn(move || {
            let _ = tx.send(rounds());
        })
        .expect("spawn soak thread");
    match rx.recv_timeout(ROUND_DEADLINE) {
        Ok(tally) => tally,
        Err(_) => panic!("{label}: chaos soak exceeded its deadline — hang detected"),
    }
}

#[test]
fn chaos_soak_differential_both_backends() {
    silence_chaos_panics();
    let _guard = dc_faults::test_guard();

    let ett = with_deadline("ett", || {
        let mut tally = SoakTally::default();
        for seed in 1..=SEEDS_PER_BACKEND {
            soak_round::<EulerForest>(seed, &mut tally);
        }
        tally
    });
    let lct = with_deadline("lct", || {
        let mut tally = SoakTally::default();
        for seed in 1..=SEEDS_PER_BACKEND {
            soak_round::<LctForest>(1000 + seed, &mut tally);
        }
        tally
    });

    let total_fired: u64 = ett.fired.iter().sum::<u64>() + lct.fired.iter().sum::<u64>();
    let per_point: Vec<String> = InjectionPoint::ALL
        .iter()
        .map(|&p| {
            format!(
                "{}={}",
                p.name(),
                ett.fired[p as usize] + lct.fired[p as usize]
            )
        })
        .collect();
    eprintln!(
        "chaos soak: {} rounds, {} faults fired ({}), {} poisons (ett {}, lct {}), {} capacity rejections",
        ett.rounds + lct.rounds,
        total_fired,
        per_point.join(", "),
        ett.poisons + lct.poisons,
        ett.poisons,
        lct.poisons,
        ett.rejections + lct.rejections,
    );

    // The acceptance bar: a real soak, not a smoke — at least 50 injected
    // faults across the two backends, every backend poisoned at least once,
    // and both panic points plus both recoverable points exercised.
    assert!(total_fired >= 50, "only {total_fired} faults fired");
    assert!(ett.poisons >= 1, "no ETT round was ever poisoned");
    assert!(lct.poisons >= 1, "no LCT round was ever poisoned");
    for &point in &[
        InjectionPoint::LeaderPanicBeforeApply,
        InjectionPoint::LeaderPanicAfterCommit,
        InjectionPoint::ArenaAlloc,
        InjectionPoint::IntakeStall,
    ] {
        assert!(
            ett.fired[point as usize] + lct.fired[point as usize] >= 1,
            "injection point {} never fired",
            point.name()
        );
    }
}
