//! Property-based tests: arbitrary operation sequences applied to the
//! dynamic connectivity variants must always agree with the BFS oracle, and
//! structural invariants must hold at every intermediate point.

use concurrent_dynamic_connectivity::{DynamicConnectivity, ForestBackend, Variant};
use dc_ett::{EulerForest, LctForest};
use dynconn::{Hdt, RecomputeOracle, UnionFind};
use proptest::prelude::*;

/// A symbolic operation over a small vertex universe.
#[derive(Clone, Copy, Debug)]
enum SymOp {
    Add(u32, u32),
    Remove(u32, u32),
    Query(u32, u32),
}

fn sym_op(n: u32) -> impl Strategy<Value = SymOp> {
    let vertex = 0..n;
    prop_oneof![
        (vertex.clone(), 0..n).prop_map(|(u, v)| SymOp::Add(u, v)),
        (vertex.clone(), 0..n).prop_map(|(u, v)| SymOp::Remove(u, v)),
        (vertex, 0..n).prop_map(|(u, v)| SymOp::Query(u, v)),
    ]
}

fn apply_and_compare(variant: Variant, backend: ForestBackend, n: u32, ops: &[SymOp]) {
    if variant == Variant::BatchEngine {
        dc_batch::register_variant();
    }
    let dc = variant.build_with(n as usize, backend);
    let label = format!("{}@{}", variant.name(), backend.label());
    let oracle = RecomputeOracle::new(n as usize);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            SymOp::Add(u, v) => {
                dc.add_edge(u, v);
                oracle.add_edge(u, v);
            }
            SymOp::Remove(u, v) => {
                dc.remove_edge(u, v);
                oracle.remove_edge(u, v);
            }
            SymOp::Query(u, v) => {
                prop_assert_eq_msg(dc.connected(u, v), oracle.connected(u, v), &label, i);
            }
        }
    }
    // Final full cross-check over all pairs.
    for u in 0..n {
        for v in (u + 1)..n {
            assert_eq!(
                dc.connected(u, v),
                oracle.connected(u, v),
                "{label}: final state diverged at pair ({u}, {v})"
            );
        }
    }
}

fn prop_assert_eq_msg(got: bool, want: bool, label: &str, step: usize) {
    assert_eq!(
        got, want,
        "{label}: query at step {step} diverged from the oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// The full algorithm (variant 9) matches the oracle on any op sequence.
    #[test]
    fn our_algorithm_matches_oracle(ops in proptest::collection::vec(sym_op(12), 1..120)) {
        apply_and_compare(Variant::OurAlgorithm, ForestBackend::Ett, 12, &ops);
    }

    /// The plain coarse-grained variant matches the oracle on any op
    /// sequence, on both forest backends.
    #[test]
    fn coarse_grained_matches_oracle(ops in proptest::collection::vec(sym_op(12), 1..120)) {
        apply_and_compare(Variant::CoarseGrained, ForestBackend::Ett, 12, &ops);
        apply_and_compare(Variant::CoarseGrained, ForestBackend::Lct, 12, &ops);
    }

    /// The fine-grained + non-blocking-reads variant matches the oracle.
    #[test]
    fn fine_nonblocking_matches_oracle(ops in proptest::collection::vec(sym_op(12), 1..120)) {
        apply_and_compare(Variant::FineNonBlockingReads, ForestBackend::Ett, 12, &ops);
    }

    /// The combining variants match the oracle, on both forest backends
    /// (this is the LCT's required lock-free-read variant).
    #[test]
    fn combining_matches_oracle(ops in proptest::collection::vec(sym_op(10), 1..80)) {
        apply_and_compare(Variant::FlatCombiningNonBlockingReads, ForestBackend::Ett, 10, &ops);
        apply_and_compare(Variant::FlatCombiningNonBlockingReads, ForestBackend::Lct, 10, &ops);
    }

    /// The batch engine matches the oracle on the LCT backend (the LCT's
    /// required batch-engine variant; the ETT engine is covered by its own
    /// crate suite).
    #[test]
    fn lct_batch_engine_matches_oracle(ops in proptest::collection::vec(sym_op(10), 1..80)) {
        apply_and_compare(Variant::BatchEngine, ForestBackend::Lct, 10, &ops);
    }

    /// Incremental-only sequences agree with union-find (a strictly stronger
    /// oracle match than BFS, covering the "incremental scenario" code path).
    #[test]
    fn incremental_sequences_match_union_find(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..150)
    ) {
        let dc = Variant::OurAlgorithm.build(20);
        let mut uf = UnionFind::new(20);
        for &(u, v) in &edges {
            dc.add_edge(u, v);
            if u != v {
                uf.union(u, v);
            }
        }
        for u in 0..20u32 {
            for v in (u + 1)..20 {
                prop_assert_eq!(dc.connected(u, v), uf.connected(u, v));
            }
        }
    }

    /// The single-writer Euler Tour Tree keeps `connected` consistent with a
    /// reference forest under arbitrary link/cut sequences (cutting an absent
    /// edge is skipped, linking two already-connected vertices is skipped —
    /// both would violate the forest precondition).
    #[test]
    fn euler_forest_matches_reference_forest(
        ops in proptest::collection::vec((0u32..16, 0u32..16, proptest::bool::ANY), 1..120)
    ) {
        let forest = EulerForest::new(16);
        let oracle = RecomputeOracle::new(16);
        let mut tree_edges: Vec<(u32, u32)> = Vec::new();
        for &(u, v, add) in &ops {
            if u == v {
                continue;
            }
            if add {
                if !forest.connected(u, v) {
                    forest.link(u, v);
                    oracle.add_edge(u, v);
                    tree_edges.push((u, v));
                }
            } else if let Some(pos) = tree_edges
                .iter()
                .position(|&(a, b)| (a == u && b == v) || (a == v && b == u))
            {
                forest.cut(u, v);
                oracle.remove_edge(u, v);
                tree_edges.swap_remove(pos);
            }
            // Spot-check a pair derived from the operands.
            let a = (u * 7 + 3) % 16;
            let b = (v * 5 + 1) % 16;
            prop_assert_eq!(forest.connected(a, b), oracle.connected(a, b));
        }
        forest.validate();
    }

    /// The link-cut-tree backend keeps `connected` consistent with the same
    /// reference forest under arbitrary link/cut sequences (mirror of the
    /// Euler-forest property above, same preconditions).
    #[test]
    fn lct_forest_matches_reference_forest(
        ops in proptest::collection::vec((0u32..16, 0u32..16, proptest::bool::ANY), 1..120)
    ) {
        let forest = LctForest::new(16);
        let oracle = RecomputeOracle::new(16);
        let mut tree_edges: Vec<(u32, u32)> = Vec::new();
        for &(u, v, add) in &ops {
            if u == v {
                continue;
            }
            if add {
                if !forest.connected(u, v) {
                    forest.link(u, v);
                    oracle.add_edge(u, v);
                    tree_edges.push((u, v));
                }
            } else if let Some(pos) = tree_edges
                .iter()
                .position(|&(a, b)| (a == u && b == v) || (a == v && b == u))
            {
                forest.cut(u, v);
                oracle.remove_edge(u, v);
                tree_edges.swap_remove(pos);
            }
            // Spot-check a pair derived from the operands.
            let a = (u * 7 + 3) % 16;
            let b = (v * 5 + 1) % 16;
            prop_assert_eq!(forest.connected(a, b), oracle.connected(a, b));
        }
        forest.validate();
    }

    /// The HDT core's `validate()` holds after any locked operation sequence,
    /// and `component_size` sums to the vertex count.
    #[test]
    fn hdt_validate_holds_on_any_sequence(
        ops in proptest::collection::vec((0u32..14, 0u32..14, proptest::bool::ANY), 1..100)
    ) {
        let hdt = Hdt::new(14);
        for &(u, v, add) in &ops {
            if u == v {
                continue;
            }
            hdt.with_components_locked(u, v, || {
                if add {
                    hdt.add_edge_locked(u, v);
                } else {
                    hdt.remove_edge_locked(u, v);
                }
            });
        }
        hdt.validate();
        // Component sizes must be consistent: summing 1/size(v) over all
        // vertices counts each component exactly once, so the total is the
        // number of components and must lie in [1, n].
        let inv_sum: f64 = (0..14u32).map(|v| 1.0 / hdt.component_size(v) as f64).sum();
        prop_assert!((0.99..=14.01).contains(&inv_sum));
    }
}
