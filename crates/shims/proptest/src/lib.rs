//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's tests use —
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! integer-range / tuple / `vec` /
//! `bool::ANY` strategies, `prop_oneof!`, and the `proptest!` test macro
//! with `#![proptest_config(...)]` — on top of a deterministic PRNG.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its case index and seed so it
//!   can be replayed, but is not minimized;
//! * **deterministic seeds** — each test's case `i` derives its seed from
//!   the test's location and `i`, so failures reproduce across runs without
//!   a persistence file.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Generates values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod arbitrary {
    //! `any::<T>()` support for a few primitive types.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for the full domain of `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Creates a strategy over the full domain of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    /// Uniformly random booleans.
    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case-running machinery behind the `proptest!` macro.

    use super::strategy::TestRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Runner configuration; only the fields this workspace sets are
    /// represented.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per test.
        pub cases: u32,
        /// Accepted for interface parity; this runner never shrinks.
        pub max_shrink_iters: u32,
        /// Print each case index before running it (upstream parity field;
        /// also keeps `..Config::default()` meaningful at use sites that set
        /// every other field).
        pub verbose: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
                verbose: 0,
            }
        }
    }

    /// Runs `body` for `config.cases` deterministic cases. The per-case RNG
    /// seed is derived from the test location and the case index, so a
    /// failure message identifies an exactly reproducible case.
    pub fn run_cases<F>(config: Config, file: &str, line: u32, mut body: F)
    where
        F: FnMut(&mut TestRng),
    {
        for case in 0..config.cases {
            let mut hasher = DefaultHasher::new();
            (file, line, case).hash(&mut hasher);
            let seed = hasher.finish();
            let mut rng = TestRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest case {case}/{} failed at {file}:{line} (replay seed {seed:#018x}); \
                     no shrinking in the offline proptest stand-in",
                    config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports the forms used in this workspace:
/// an optional `#![proptest_config(expr)]` header followed by one or more
/// `#[test] fn name(pat in strategy, ...) { body }` items (doc comments and
/// other attributes above `#[test]` are preserved).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    // `#[test]` is captured as one of the `$meta` attributes and re-emitted
    // with them (matching it literally is ambiguous against the `meta`
    // fragment), so the expansion must not add its own `#[test]`.
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_cases(config, file!(), line!(), |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);
                )+
                $body
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when its generated inputs are unsuitable.
/// (Upstream rejects and regenerates; this runner simply ends the case,
/// which preserves soundness — a skipped case never fails.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        use crate::strategy::{Strategy, TestRng};
        use rand::SeedableRng;
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0u32..10, 0usize..5).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 14);
        }
        let v = crate::collection::vec(0u32..3, 1..6);
        for _ in 0..50 {
            let out = v.generate(&mut rng);
            assert!((1..6).contains(&out.len()));
            assert!(out.iter().all(|&x| x < 3));
        }
        let u = prop_oneof![Just(7u32), 0u32..3,];
        for _ in 0..50 {
            let x = u.generate(&mut rng);
            assert!(x == 7 || x < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: bindings, assume and assertions all work.
        #[test]
        fn macro_roundtrip(x in 0u32..100, flip in crate::bool::ANY) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert_eq!(flip as u32 <= 1, true);
            prop_assert_ne!(x, 200);
        }
    }

    proptest! {
        /// The configless form defaults to 64 cases.
        #[test]
        fn configless_form(v in crate::collection::vec(any::<usize>(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
