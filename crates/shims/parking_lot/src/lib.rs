//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *interface subset it actually uses* as a thin layer
//! over `std::sync`.  Only `Mutex` / `MutexGuard` are provided (nothing in
//! the workspace uses `RwLock` or `Condvar` from parking_lot).  Semantics
//! match parking_lot where they differ from std:
//!
//! * `lock()` returns the guard directly (no poisoning — a panic while the
//!   lock is held does not make it unusable);
//! * `try_lock()` returns `Option` instead of `Result`.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (statically
    /// exclusive, so no locking is needed).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
