//! Offline stand-in for the `rand` crate (0.8 interface subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the rand 0.8 API its code actually calls:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] (xoshiro256++
//!   seeded through SplitMix64 — deterministic, high quality, tiny);
//! * the [`Rng`] extension trait with `gen`, `gen_range`, `gen_bool`;
//! * [`distributions::Uniform`] / [`distributions::Distribution`];
//! * [`seq::SliceRandom::shuffle`] / `choose`.
//!
//! Streams are deterministic per seed (everything the tests and workload
//! generators rely on) but do **not** bit-match upstream rand; no seed in
//! this repository encodes an upstream-stream expectation.

use std::ops::Range;

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open; panics if empty).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that values of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's multiply-shift mapping; the modulo bias at 64-bit width is
    // far below anything the tests or benchmarks can observe.
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        use distributions::Distribution;
        let unit: f64 = distributions::Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

pub mod distributions {
    //! The distribution subset: `Standard` and integer `Uniform`.

    use super::{uniform_u64_below, RngCore, SampleRange};
    use std::ops::Range;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the full domain of integer
    /// types, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A uniform distribution over a half-open integer range, constructed
    /// once and sampled many times.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        span: u64,
    }

    /// Integer types [`Uniform`] can range over.
    pub trait UniformInt: Copy + PartialOrd {
        /// `self - low` widened to `u64`.
        fn span_from(self, low: Self) -> u64;
        /// `self + delta` (delta < the constructed span, so no overflow).
        fn offset(self, delta: u64) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                #[inline]
                fn span_from(self, low: Self) -> u64 {
                    (self - low) as u64
                }
                #[inline]
                fn offset(self, delta: u64) -> Self {
                    self + delta as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize);

    impl<T: UniformInt> Uniform<T> {
        /// Creates a distribution over `[low, high)`.
        #[inline]
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform {
                low,
                span: high.span_from(low),
            }
        }
    }

    impl<T: UniformInt> Distribution<T> for Uniform<T> {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            self.low.offset(uniform_u64_below(rng, self.span))
        }
    }

    // Keep the free-range entry point usable through `Distribution` too.
    impl<T> Distribution<T> for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            self.clone().sample_single(rng)
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++, seeded via SplitMix64.
    ///
    /// Deterministic per seed; not cryptographic (neither is upstream
    /// `StdRng`'s use here — it only drives tests and synthetic workloads).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for call sites that prefer the small generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice helpers: shuffle and random element choice.

    use super::{Rng, RngCore};

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 appear");
        for _ in 0..100 {
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn uniform_distribution_sampling() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = Uniform::new(5u32, 15);
        for _ in 0..100 {
            let x = dist.sample(&mut rng);
            assert!((5..15).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_returns_elements() {
        let mut rng = StdRng::seed_from_u64(19);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
