//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`) with a
//! simple but honest measurement loop: each sample runs a calibrated number
//! of iterations, and the reported figure is the median over samples with
//! the min/max spread.  No statistical regression machinery, no HTML
//! reports — results go to stdout, one line per benchmark:
//!
//! ```text
//! bench: hdt_add_remove/1000            1234.5 ns/iter (min 1200.1, max 1310.7, 20 samples)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Wall-clock budget spent warming up before calibration.
const WARMUP: Duration = Duration::from_millis(25);

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id that is just the parameter (criterion's
    /// `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.id, self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for interface parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    mode: BencherMode,
    /// Iterations per sample (calibration result), populated in measure mode.
    iters_per_sample: u64,
    /// Duration of the last measured sample.
    last_sample: Duration,
}

enum BencherMode {
    /// Run the routine until the warm-up budget is consumed, recording how
    /// many iterations fit so measurement can be calibrated.
    Calibrate {
        achieved_iters: u64,
        elapsed: Duration,
    },
    /// Run exactly `iters_per_sample` iterations and record the time.
    Measure,
}

impl Bencher {
    /// Measures the closure. The closure's return value is black-boxed so
    /// the computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BencherMode::Calibrate { .. } => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < WARMUP {
                    black_box(routine());
                    iters += 1;
                }
                self.mode = BencherMode::Calibrate {
                    achieved_iters: iters,
                    elapsed: start.elapsed(),
                };
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.last_sample = start.elapsed();
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Warm-up + calibration pass.
    let mut bencher = Bencher {
        mode: BencherMode::Calibrate {
            achieved_iters: 0,
            elapsed: Duration::ZERO,
        },
        iters_per_sample: 0,
        last_sample: Duration::ZERO,
    };
    f(&mut bencher);
    let (achieved, elapsed) = match bencher.mode {
        BencherMode::Calibrate {
            achieved_iters,
            elapsed,
        } => (achieved_iters.max(1), elapsed.max(Duration::from_nanos(1))),
        BencherMode::Measure => unreachable!(),
    };
    let per_iter = elapsed.as_secs_f64() / achieved as f64;
    let iters_per_sample = ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1);

    // Measurement samples.
    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            mode: BencherMode::Measure,
            iters_per_sample,
            last_sample: Duration::ZERO,
        };
        f(&mut bencher);
        samples_ns.push(bencher.last_sample.as_secs_f64() * 1e9 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns.first().copied().unwrap_or(0.0);
    let max = samples_ns.last().copied().unwrap_or(0.0);
    println!(
        "bench: {name:<52} {median:>12.1} ns/iter (min {min:.1}, max {max:.1}, {} samples, {iters_per_sample} iters/sample)",
        samples_ns.len()
    );
}

/// Declares a benchmark group. Both criterion forms are accepted:
/// the positional `criterion_group!(name, target, ...)` and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0, "routine never executed");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("inputs");
        group.bench_with_input(BenchmarkId::from_parameter(41), &41u32, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
