//! The CI soak gate: a fixed-op-count churn run that fails if the arena's
//! memory footprint is not bounded by the live tour size.
//!
//! This is the regression guard for the epoch-recycling arena — the
//! append-only arena it replaced grows by two slots per cut+link pair and
//! fails this test within the first few hundred operations. The 2× bound
//! leaves room for the limbo backlog (garbage waits out two grace periods)
//! and for readers briefly parking the epoch, while still catching any
//! reuse regression categorically.
//!
//! CI runs this under `cargo test --release` (see `.github/workflows/ci.yml`,
//! "Churn soak" step); the op count is fixed, not time-based, so the gate is
//! deterministic across machine speeds.

use dc_ett::EulerForest;
use std::sync::atomic::{AtomicBool, Ordering};

/// Fixed operation count for the soak (cut+link pairs).
const SOAK_OPS: usize = 25_000;

fn churn(forest: &EulerForest, n: u32, ops: usize, peak: &mut usize) {
    let mut x: u32 = 0xC0FFEE;
    for _ in 0..ops {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        let v = x % (n - 1);
        forest.cut(v, v + 1);
        forest.link(v, v + 1);
        *peak = (*peak).max(forest.arena_occupancy());
    }
}

/// Single-threaded soak: sustained churn at a steady live-edge count must
/// keep *peak* arena occupancy within 2× the live node count.
#[test]
fn soak_single_thread_occupancy_stays_bounded() {
    let n = 1024u32;
    let forest = EulerForest::with_seed(n as usize, 0x50AC);
    for v in 0..n - 1 {
        forest.link(v, v + 1);
    }
    let live = forest.live_node_count();
    let mut peak = forest.arena_occupancy();
    churn(&forest, n, SOAK_OPS, &mut peak);
    assert_eq!(
        forest.live_node_count(),
        live,
        "soak must be structure-neutral"
    );
    assert!(
        peak <= 2 * live,
        "peak arena occupancy {peak} exceeded 2x live node count {live} \
         over {SOAK_OPS} churn pairs — slot recycling has regressed"
    );
    forest.validate();
}

/// The same gate with concurrent lock-free readers pinning the reclamation
/// domain: readers may delay recycling by a grace period, never defeat it.
#[test]
fn soak_with_readers_occupancy_stays_bounded() {
    let n = 1024u32;
    let forest = EulerForest::with_seed(n as usize, 0x50AD);
    for v in 0..n - 1 {
        forest.link(v, v + 1);
    }
    let live = forest.live_node_count();
    let stop = AtomicBool::new(false);
    let mut peak = forest.arena_occupancy();
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let (forest, stop) = (&forest, &stop);
            s.spawn(move || {
                let mut x: u32 = 0xABCD ^ t;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    let _ = forest.connected(x % n, (x >> 8) % n);
                }
            });
        }
        churn(&forest, n, SOAK_OPS, &mut peak);
        stop.store(true, Ordering::Relaxed);
    });
    // Readers legitimately delay reclamation: a reader preempted while
    // pinned (routine on a saturated CI box) stalls epoch advances for a
    // whole scheduler slice, during which the release-build writer churns
    // thousands of rounds and must bump-allocate through all of them. The
    // single-threaded soak above keeps the strict deterministic 2x gate;
    // this variant bounds the damage at half the churned slots — a few
    // stalls' worth — while an append-only regression (every churned slot
    // leaked, peak = live + 2 * SOAK_OPS) still overshoots by 3x.
    let bound = 2 * live + SOAK_OPS / 2;
    assert!(
        peak <= bound,
        "peak arena occupancy {peak} exceeded {bound} (live {live}) \
         under concurrent readers"
    );
    forest.validate();
}
