//! Stress tests for the epoch reclamation wired through the forest: a
//! reader parked inside a traversal must keep every node it can still reach
//! alive across concurrent cuts, and reclamation must resume the moment the
//! reader leaves.
//!
//! There is no loom in the offline build, so these tests drive the epoch
//! machinery through its observable surface instead: the forest's `pin()`
//! guard *is* the state a parked `connected` call holds (the read protocol
//! pins exactly this domain), so parking a pin and watching the
//! retired/free/occupancy counters exercises the same reclamation edges a
//! descheduled reader would.

use dc_ett::EulerForest;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;

/// A parked reader pin must prevent retired tour nodes from being recycled:
/// concurrent cut+link churn has to grow the arena instead of reusing slots
/// the reader may still walk through.
#[test]
fn parked_reader_keeps_retired_nodes_unrecycled() {
    let n = 64usize;
    let forest = EulerForest::with_seed(n, 0xDEAD);
    for v in 0..n as u32 - 1 {
        forest.link(v, v + 1);
    }
    let baseline_occupancy = forest.arena_occupancy();

    // Park a reader mid-traversal.
    let guard = forest.pin();

    // A writer churns: every cut retires two nodes, every link allocates
    // two. With the reader parked, none of the retired slots may come back.
    for round in 0..50u32 {
        let v = round % (n as u32 - 1);
        forest.cut(v, v + 1);
        forest.link(v, v + 1);
    }
    assert_eq!(
        forest.arena_retired(),
        100,
        "every retired node must still be in limbo under the parked pin"
    );
    assert_eq!(
        forest.arena_free(),
        0,
        "no slot may graduate to the free list"
    );
    assert_eq!(
        forest.arena_occupancy(),
        baseline_occupancy + 100,
        "allocations under a parked reader must come from fresh slots"
    );

    // Release the reader: the very next allocations graduate limbo slots
    // instead of growing the arena.
    drop(guard);
    for round in 0..50u32 {
        let v = round % (n as u32 - 1);
        forest.cut(v, v + 1);
        forest.link(v, v + 1);
    }
    assert_eq!(
        forest.arena_occupancy(),
        baseline_occupancy + 100,
        "occupancy must stop growing once the reader unpinned"
    );
    assert!(
        forest.arena_retired() + forest.arena_free() >= 100,
        "the limbo backlog must be circulating through the free list again"
    );
    forest.validate();
}

/// The cross-thread version: a reader thread pins, signals, and parks; the
/// writer churns on the main thread; the retired count must hold until the
/// reader thread finishes.
#[test]
fn remote_parked_reader_blocks_reclamation_across_threads() {
    let n = 32usize;
    let forest = EulerForest::with_seed(n, 0xBEEF);
    for v in 0..n as u32 - 1 {
        forest.link(v, v + 1);
    }
    let parked = Barrier::new(2);
    let release = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            // The reader performs a real traversal, then parks while still
            // pinned — the shape of a `connected` call descheduled mid-walk.
            let _pin = forest.pin();
            assert!(forest.connected(0, n as u32 - 1));
            parked.wait();
            while !release.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
        });
        parked.wait();
        let occupancy_before = forest.arena_occupancy();
        for round in 0..30u32 {
            let v = round % (n as u32 - 1);
            forest.cut(v, v + 1);
            forest.link(v, v + 1);
        }
        assert_eq!(forest.arena_retired(), 60, "remote pin must hold all limbo");
        assert_eq!(forest.arena_occupancy(), occupancy_before + 60);
        release.store(true, Ordering::Release);
    });
    // Reader gone: churn must now run allocation-neutral (after at most a
    // few ops to drain the backlog through two grace periods).
    let settled = forest.arena_occupancy();
    for round in 0..60u32 {
        let v = round % (n as u32 - 1);
        forest.cut(v, v + 1);
        forest.link(v, v + 1);
    }
    assert_eq!(
        forest.arena_occupancy(),
        settled,
        "post-release churn must be fully recycled"
    );
    forest.validate();
}

/// Hammer test: lock-free readers running `connected` full-tilt against a
/// writer cutting and relinking the same component. Readers must never
/// observe a torn structure (wrong answer, panic, or stuck walk) even
/// though the slots they traverse are being retired and recycled under
/// them.
#[test]
fn readers_survive_concurrent_slot_recycling() {
    let n = 128usize;
    let forest = EulerForest::with_seed(n, 0x5EED);
    for v in 0..n as u32 - 1 {
        forest.link(v, v + 1);
    }
    let stop = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..3u32 {
            let (forest, stop, queries) = (&forest, &stop, &queries);
            s.spawn(move || {
                let mut x: u32 = 0x9E37 ^ t;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    let u = x % n as u32;
                    let v = (x >> 8) % n as u32;
                    // The chain is always fully connected except for the one
                    // edge mid-cut; a same-component pair not adjacent to
                    // the churn point must always answer `true`.
                    if u < n as u32 / 2 && v < n as u32 / 2 {
                        assert!(forest.connected(u, v), "lost connectivity {u}-{v}");
                    } else {
                        let _ = forest.connected(u, v);
                    }
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The writer churns only edges in the upper half of the chain, so
        // the lower half is always connected (the asserted invariant above).
        for round in 0..20_000u32 {
            let v = n as u32 / 2 + (round % (n as u32 / 2 - 1));
            forest.cut(v, v + 1);
            forest.link(v, v + 1);
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        queries.load(Ordering::Relaxed) > 0,
        "readers made no progress"
    );
    // Steady-state churn with readers: occupancy bounded below the 40_000
    // slots the run allocated. Readers delay reclamation — a reader
    // preempted while pinned stalls advances for whole scheduler slices,
    // and the release-build writer churns thousands of rounds per slice —
    // so this asserts a recycling *ratio* (at least half the churned slots
    // came back; the deterministic 2x-live gate lives in the
    // single-threaded soak). An append-only regression leaks all 40_000
    // and fails by 2x.
    let bound = forest.live_node_count() + 2 * 20_000 / 2;
    assert!(
        forest.arena_occupancy() <= bound,
        "occupancy {} exceeded {} — less than half of the churned slots \
         were recycled under concurrent readers",
        forest.arena_occupancy(),
        bound,
    );
    forest.validate();
}
