//! Concurrency tests for the link-cut-tree backend, mirroring the Euler
//! Tour Tree suites (`forest_concurrent.rs`, `root_hints.rs`): lock-free
//! readers run `connected` while a single writer restructures the forest
//! through splays, and every invariant the §12 bump-discipline argument
//! promises is asserted from the readers' side.

use dc_ett::{DynamicForest, LctForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Readers must never observe two vertices of a *permanently linked* pair as
/// disconnected, no matter what the writer does elsewhere — the splay
/// restructuring deposes O(log n) apexes per operation and every deposition
/// must be covered by a bump before any reader can act on the stale root.
#[test]
fn readers_never_see_connected_pair_split_by_unrelated_churn() {
    let n = 64u32;
    let forest = Arc::new(LctForest::new(n as usize));
    // Backbone path 0-1-2-...-15 stays in place for the whole test.
    for v in 0..15 {
        forest.link(v, v + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Readers: vertices 0 and 15 are connected for the entire duration.
        for reader_id in 0..3u64 {
            let forest = Arc::clone(&forest);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(reader_id);
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = rng.gen_range(0..15u32);
                    let b = rng.gen_range(0..15u32);
                    assert!(
                        forest.connected(a, b),
                        "backbone pair ({a}, {b}) reported disconnected"
                    );
                    // Vertex 63 is never linked to anything in this test.
                    assert!(
                        !forest.connected(0, 63),
                        "vertex 63 must stay isolated from the backbone"
                    );
                    checks += 1;
                }
                assert!(checks > 0);
            });
        }
        // Writer: churn a random tree over 16..40 and a bridge (15, 16).
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xBEEF);
            for _ in 0..1_000 {
                forest_w.link(15, 16);
                let mut attached = vec![16u32];
                for v in 17..40u32 {
                    let parent = attached[rng.gen_range(0..attached.len())];
                    forest_w.link(parent, v);
                    attached.push(v);
                }
                for v in (17..40u32).rev() {
                    for p in attached.iter().copied() {
                        if p != v && forest_w.has_tree_edge(p, v) {
                            forest_w.cut(p, v);
                            break;
                        }
                    }
                }
                forest_w.cut(15, 16);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });
    forest.validate();
}

/// Two stable paths and a toggling bridge: intra-side pairs stay connected,
/// cross-universe pairs stay disconnected, the bridged pair may be either.
#[test]
fn readers_observe_only_legal_states_of_a_toggling_bridge() {
    let forest = Arc::new(LctForest::new(32));
    for v in 0..7 {
        forest.link(v, v + 1);
    }
    for v in 8..15 {
        forest.link(v, v + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let forest = Arc::clone(&forest);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert!(forest.connected(2, 6));
                    assert!(forest.connected(9, 14));
                    let _ = forest.connected(0, 15);
                    assert!(!forest.connected(0, 31));
                }
            });
        }
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            for _ in 0..20_000 {
                forest_w.link(3, 12);
                forest_w.cut(3, 12);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });
    assert!(!forest.connected(0, 15));
    forest.validate();
}

/// A prepared-but-uncommitted cut must be invisible to concurrent readers:
/// the detached apex keeps its stale up word (plus the sink flag for the
/// writer), so climbs from the detached piece still end at the retained
/// root. The writer here always "finds a replacement" — relinking the same
/// endpoints, whose `link` epilogue closes the window.
#[test]
fn prepared_cut_is_invisible_to_concurrent_readers() {
    let forest = Arc::new(LctForest::new(16));
    for v in 0..15 {
        forest.link(v, v + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let forest = Arc::clone(&forest);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert!(forest.connected(0, 15), "prepared cut leaked to readers");
                }
            });
        }
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            for i in 0..2_000u32 {
                let cut_at = 3 + (i % 9);
                let cut = forest_w.prepare_cut(cut_at, cut_at + 1);
                std::hint::black_box(&cut);
                forest_w.link(cut_at, cut_at + 1);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });
    assert!(forest.connected(0, 15));
    forest.validate();
}

/// The full window lifecycle under concurrent readers: between `prepare_cut`
/// and `commit_cut` every reader sees one component; once the commit's
/// bump–store–bump sequence runs, every reader that starts after it sees
/// two. Both directions need real-time ordering to be assertable: the
/// writer only commits after every reader has acknowledged draining its
/// in-flight window-phase query (so those queries provably preceded the
/// commit), and the committed phase is only published after `commit_cut`
/// returns (so a reader observing it is ordered after the split and a
/// `true` answer would be non-linearizable).
#[test]
fn committed_cut_becomes_visible_exactly_at_commit() {
    let forest = Arc::new(LctForest::new(8));
    forest.link(0, 1);
    forest.link(1, 2);
    forest.link(2, 3);
    // 0 = window open, 1 = drain (stop querying, ack), 2 = committed,
    // 3 = stop.
    let phase = Arc::new(AtomicU8::new(0));
    let drained = Arc::new(AtomicUsize::new(0));
    let readers = 3usize;
    let cut = forest.prepare_cut(1, 2);
    std::thread::scope(|s| {
        for _ in 0..readers {
            let forest = Arc::clone(&forest);
            let phase = Arc::clone(&phase);
            let drained = Arc::clone(&drained);
            s.spawn(move || {
                let mut acked = false;
                loop {
                    match phase.load(Ordering::Acquire) {
                        0 => assert!(
                            forest.connected(0, 3),
                            "prepared window leaked a disconnect"
                        ),
                        1 => {
                            if !acked {
                                drained.fetch_add(1, Ordering::AcqRel);
                                acked = true;
                            }
                            std::hint::spin_loop();
                        }
                        2 => assert!(
                            !forest.connected(0, 3),
                            "committed cut still answered connected"
                        ),
                        _ => break,
                    }
                }
            });
        }
        // Let the readers hammer the open window for a while.
        for _ in 0..10_000 {
            std::hint::spin_loop();
        }
        phase.store(1, Ordering::Release);
        while drained.load(Ordering::Acquire) < readers {
            std::hint::spin_loop();
        }
        forest.commit_cut(&cut);
        phase.store(2, Ordering::Release);
        for _ in 0..10_000 {
            std::hint::spin_loop();
        }
        phase.store(3, Ordering::Release);
    });
    assert!(forest.connected(0, 1));
    assert!(forest.connected(2, 3));
    assert!(!forest.connected(0, 3));
    forest.validate();
}

/// Epoch-reclaim soak with an occupancy gate: readers hold epoch pins while
/// the writer performs a long link/cut stream. The LCT's nodes are permanent
/// (vertex-indexed, never freed), so `node_occupancy` must stay exactly `n`
/// through any amount of churn — a backend-visible leak or double-retire
/// would move it.
#[test]
fn reclaim_soak_keeps_node_occupancy_constant() {
    let n = 96usize;
    let forest = Arc::new(LctForest::new(n));
    let stop = Arc::new(AtomicBool::new(false));
    assert_eq!(forest.node_occupancy(), n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let forest = Arc::clone(&forest);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    let mut completed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let _pin = forest.pin();
                        let a = rng.gen_range(0..n as u32);
                        let b = rng.gen_range(0..n as u32);
                        let _ = forest.connected(a, b);
                        completed += 1;
                    }
                    completed
                })
            })
            .collect();
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for step in 0..20_000 {
                if edges.is_empty() || rng.gen_bool(0.55) {
                    let u = rng.gen_range(0..n as u32);
                    let v = rng.gen_range(0..n as u32);
                    if u != v && !forest_w.connected(u, v) {
                        forest_w.link(u, v);
                        edges.push((u, v));
                    }
                } else {
                    let i = rng.gen_range(0..edges.len());
                    let (u, v) = edges.swap_remove(i);
                    let prepared = forest_w.prepare_cut(u, v);
                    forest_w.commit_cut(&prepared);
                    forest_w.retire_cut_nodes(&prepared);
                }
                if step % 1_024 == 0 {
                    assert_eq!(forest_w.node_occupancy(), n, "occupancy drifted");
                }
            }
            stop_w.store(true, Ordering::Relaxed);
        });
        for h in handles {
            let completed = h.join().unwrap();
            assert!(completed > 0, "reader made no progress");
        }
    });
    assert_eq!(forest.node_occupancy(), n);
    forest.validate();
}

/// Hint-cache mirror of the ETT's churn test: the stable half's reads stay
/// exact (and keep hitting) while the writer's bumps continuously invalidate
/// the churned half's hints.
#[test]
fn concurrent_readers_stay_exact_while_another_component_churns() {
    let forest = LctForest::new(16);
    forest.set_read_hints(true);
    for v in 8..15 {
        forest.link(v, v + 1);
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let forest = &forest;
            let stop = &stop;
            scope.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    let a = 8 + (rand() % 8) as u32;
                    let b = 8 + (rand() % 8) as u32;
                    assert!(forest.connected(a, b), "stable component split?!");
                    let c = (rand() % 8) as u32;
                    assert!(
                        !forest.connected(a, c),
                        "phantom edge between the churned and stable halves"
                    );
                    assert!(forest.connected(c, c));
                }
            });
        }
        for round in 0..2_000u32 {
            let u = round % 7;
            forest.link(u, u + 1);
            forest.cut(u, u + 1);
        }
        stop.store(true, Ordering::Relaxed);
    });
    let (hits, misses) = forest.read_hint_stats();
    assert!(
        hits > 0,
        "stable-component reads must hit ({hits}/{misses})"
    );
    forest.validate();
}
