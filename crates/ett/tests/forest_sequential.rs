//! Sequential correctness tests for the Euler Tour Tree forest: every
//! structural operation is checked against a naive union-find / edge-set
//! model and the internal structural validator.

use dc_ett::EulerForest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A naive dynamic forest model: adjacency sets + BFS connectivity.
struct ForestModel {
    n: usize,
    edges: HashSet<(u32, u32)>,
}

impl ForestModel {
    fn new(n: usize) -> Self {
        ForestModel {
            n,
            edges: HashSet::new(),
        }
    }

    fn norm(u: u32, v: u32) -> (u32, u32) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn link(&mut self, u: u32, v: u32) {
        assert!(self.edges.insert(Self::norm(u, v)));
    }

    fn cut(&mut self, u: u32, v: u32) {
        assert!(self.edges.remove(&Self::norm(u, v)));
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut visited = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        visited[u as usize] = true;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if x == v {
                return true;
            }
            for &y in &adj[x as usize] {
                if !visited[y as usize] {
                    visited[y as usize] = true;
                    queue.push_back(y);
                }
            }
        }
        false
    }

    fn component_size(&self, u: u32) -> u32 {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut visited = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        visited[u as usize] = true;
        queue.push_back(u);
        let mut size = 0;
        while let Some(x) = queue.pop_front() {
            size += 1;
            for &y in &adj[x as usize] {
                if !visited[y as usize] {
                    visited[y as usize] = true;
                    queue.push_back(y);
                }
            }
        }
        size
    }
}

#[test]
fn isolated_vertices_are_disconnected() {
    let f = EulerForest::new(5);
    for u in 0..5 {
        for v in 0..5 {
            assert_eq!(f.connected(u, v), u == v);
        }
        assert_eq!(f.component_size(u), 1);
    }
    f.validate();
}

#[test]
fn single_link_and_cut() {
    let f = EulerForest::new(3);
    f.link(0, 1);
    assert!(f.connected(0, 1));
    assert!(!f.connected(0, 2));
    assert!(f.has_tree_edge(0, 1));
    assert!(f.has_tree_edge(1, 0));
    assert_eq!(f.component_size(0), 2);
    f.validate();

    f.cut(0, 1);
    assert!(!f.connected(0, 1));
    assert!(!f.has_tree_edge(0, 1));
    assert_eq!(f.component_size(0), 1);
    f.validate();
}

#[test]
fn path_graph_connectivity_and_sizes() {
    let n = 64;
    let f = EulerForest::new(n);
    for v in 0..(n as u32 - 1) {
        f.link(v, v + 1);
    }
    assert!(f.connected(0, n as u32 - 1));
    assert_eq!(f.component_size(17), n as u32);
    f.validate();

    // Cut in the middle.
    f.cut(31, 32);
    assert!(!f.connected(0, 63));
    assert!(f.connected(0, 31));
    assert!(f.connected(32, 63));
    assert_eq!(f.component_size(0), 32);
    assert_eq!(f.component_size(63), 32);
    f.validate();
}

#[test]
fn star_graph_cut_leaves() {
    let n = 33;
    let f = EulerForest::new(n);
    for v in 1..n as u32 {
        f.link(0, v);
    }
    assert_eq!(f.component_size(0), n as u32);
    f.validate();
    for v in 1..n as u32 {
        f.cut(0, v);
        assert!(!f.connected(0, v));
        assert_eq!(f.component_size(v), 1);
    }
    assert_eq!(f.component_size(0), 1);
    f.validate();
}

#[test]
fn relink_after_cut_in_any_order() {
    let f = EulerForest::new(6);
    // Build two triangles' spanning paths and join them.
    f.link(0, 1);
    f.link(1, 2);
    f.link(3, 4);
    f.link(4, 5);
    assert!(!f.connected(0, 5));
    f.link(2, 3);
    assert!(f.connected(0, 5));
    f.validate();
    f.cut(2, 3);
    assert!(!f.connected(0, 5));
    // Re-link through different endpoints.
    f.link(0, 5);
    assert!(f.connected(2, 4));
    f.validate();
}

#[test]
fn prepared_cut_keeps_component_until_commit() {
    let f = EulerForest::new(8);
    for v in 0..7 {
        f.link(v, v + 1);
    }
    let cut = f.prepare_cut(3, 4);
    // Physically split, logically still one component for readers.
    assert!(f.connected(0, 7), "readers must not observe a prepared cut");
    assert!(f.connected(3, 4));
    assert_eq!(cut.retained_size + cut.detached_size, 8);
    // Commit: now the split is visible.
    f.commit_cut(&cut);
    assert!(!f.connected(0, 7));
    assert!(f.connected(0, 3));
    assert!(f.connected(4, 7));
    f.validate();
}

#[test]
fn prepared_cut_can_be_relinked_with_replacement() {
    // Components: 0-1-2-3 in a line. Cut (1,2) but "find a replacement"
    // (0,3) and link it instead of committing; connectivity never changes.
    let f = EulerForest::new(4);
    f.link(0, 1);
    f.link(1, 2);
    f.link(2, 3);
    let _cut = f.prepare_cut(1, 2);
    assert!(f.connected(0, 3));
    // Replacement link between the two prepared pieces.
    f.link(0, 3);
    assert!(f.connected(0, 3));
    assert!(f.connected(1, 2), "still connected through the replacement");
    f.validate();
    // Now actually disconnect by cutting both remaining edges.
    f.cut(0, 3);
    assert!(f.connected(1, 0));
    assert!(f.connected(2, 3));
    assert!(!f.connected(1, 2));
    f.validate();
}

#[test]
fn smaller_piece_helper_is_consistent() {
    let f = EulerForest::new(10);
    for v in 0..9 {
        f.link(v, v + 1);
    }
    let cut = f.prepare_cut(6, 7);
    let (small_root, small_size) = cut.smaller_piece();
    assert_eq!(small_size, 3);
    assert_eq!(small_size, f.tree_size(small_root));
    f.commit_cut(&cut);
    f.validate();
}

#[test]
fn tour_is_well_formed_for_random_trees() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..20 {
        let n = 30;
        let f = EulerForest::with_seed(n, 1000 + trial);
        // Random spanning tree by attaching each vertex to a random earlier one.
        for v in 1..n as u32 {
            let parent = rng.gen_range(0..v);
            f.link(parent, v);
        }
        assert_eq!(f.component_size(0), n as u32);
        f.validate();
        let root = f.component_root(0);
        let tour = f.tour(root);
        // Tour length: n vertex nodes + 2 * (n - 1) edge nodes.
        assert_eq!(tour.len(), n + 2 * (n - 1));
        let mut vertices = f.tree_vertices(root);
        vertices.sort_unstable();
        assert_eq!(vertices, (0..n as u32).collect::<Vec<_>>());
    }
}

#[test]
fn randomized_link_cut_agrees_with_model() {
    let n = 40usize;
    let mut rng = StdRng::seed_from_u64(7);
    let f = EulerForest::new(n);
    let mut model = ForestModel::new(n);
    let mut tree_edges: Vec<(u32, u32)> = Vec::new();

    for step in 0..3000 {
        let add = tree_edges.is_empty() || rng.gen_bool(0.55);
        if add {
            // Pick two random vertices in different components.
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v && !f.connected(u, v) {
                assert!(!model.connected(u, v), "ETT and model disagree before link");
                f.link(u, v);
                model.link(u, v);
                tree_edges.push((u, v));
            }
        } else {
            let idx = rng.gen_range(0..tree_edges.len());
            let (u, v) = tree_edges.swap_remove(idx);
            f.cut(u, v);
            model.cut(u, v);
        }
        // Spot-check connectivity and sizes.
        for _ in 0..5 {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            assert_eq!(
                f.connected(a, b),
                model.connected(a, b),
                "connectivity mismatch at step {step} for ({a}, {b})"
            );
        }
        let probe = rng.gen_range(0..n as u32);
        assert_eq!(f.component_size(probe), model.component_size(probe));
        if step % 500 == 0 {
            f.validate();
        }
    }
    f.validate();
}

#[test]
#[should_panic]
fn linking_within_a_component_panics() {
    let f = EulerForest::new(3);
    f.link(0, 1);
    f.link(1, 2);
    f.link(0, 2); // would create a cycle in the spanning forest
}

#[test]
#[should_panic]
fn cutting_a_non_tree_edge_panics() {
    let f = EulerForest::new(3);
    f.link(0, 1);
    f.cut(1, 2);
}
