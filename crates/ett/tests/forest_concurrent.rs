//! Concurrency tests for the single-writer Euler Tour Tree: lock-free
//! readers run `connected` / `find_root` while a writer restructures the
//! forest, and every invariant the paper's linearizability argument promises
//! is asserted from the readers' side.

use dc_ett::EulerForest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Readers must never observe two vertices of a *permanently linked* pair as
/// disconnected, no matter what the writer does elsewhere. This is the
/// Appendix-A failure mode (a non-linearizable `false`) exercised under a
/// hostile schedule: the writer repeatedly removes and re-adds edges that sit
/// on the path between the probed vertices.
#[test]
fn readers_never_see_connected_pair_split_by_unrelated_churn() {
    let n = 64u32;
    let forest = Arc::new(EulerForest::new(n as usize));
    // Backbone path 0-1-2-...-15 stays in place for the whole test.
    for v in 0..15 {
        forest.link(v, v + 1);
    }
    // The writer churns edges among vertices 16..64, plus a dedicated edge
    // (15, 16) that hangs a churning subtree off the backbone.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Readers: vertices 0 and 15 are connected for the entire duration.
        for reader_id in 0..3u64 {
            let forest = Arc::clone(&forest);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(reader_id);
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let a = rng.gen_range(0..15u32);
                    let b = rng.gen_range(0..15u32);
                    assert!(
                        forest.connected(a, b),
                        "backbone pair ({a}, {b}) reported disconnected"
                    );
                    // Vertices in the churn zone must never appear connected
                    // to the backbone unless the bridge edge exists; we only
                    // assert the direction that is stable: vertex 63 is never
                    // linked to anything in this test.
                    assert!(
                        !forest.connected(0, 63),
                        "vertex 63 must stay isolated from the backbone"
                    );
                    checks += 1;
                }
                assert!(checks > 0);
            });
        }
        // Writer: churn a star around vertex 16..40 and a bridge (15, 16).
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xBEEF);
            for _ in 0..2_000 {
                // Attach / detach the bridge and a small random tree.
                forest_w.link(15, 16);
                let mut attached = vec![16u32];
                for v in 17..40u32 {
                    let parent = attached[rng.gen_range(0..attached.len())];
                    forest_w.link(parent, v);
                    attached.push(v);
                }
                // Tear it all down again (reverse order keeps edges spanning).
                for v in (17..40u32).rev() {
                    let parent_edge = attached.iter().position(|&x| x == v).unwrap();
                    let _ = parent_edge;
                    // Cut whichever tree edge connects v to the rest: it is
                    // the one recorded at link time; re-derive by probing.
                    for p in attached.iter().copied() {
                        if p != v && forest_w.has_tree_edge(p, v) {
                            forest_w.cut(p, v);
                            break;
                        }
                    }
                }
                forest_w.cut(15, 16);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });
    forest.validate();
}

/// Two vertices joined and separated repeatedly: readers may see either
/// state, but `connected` must agree with itself when the writer is inactive
/// at the probed pair's boundary — verified by checking the returned value is
/// always one of the two legal snapshots (true when the bridge exists for the
/// entire check window, false when it is absent for the entire window).
#[test]
fn readers_observe_only_legal_states_of_a_toggling_bridge() {
    let forest = Arc::new(EulerForest::new(32));
    // Two fixed cliques' spanning paths.
    for v in 0..7 {
        forest.link(v, v + 1);
    }
    for v in 8..15 {
        forest.link(v, v + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let forest = Arc::clone(&forest);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Intra-side pairs are always connected; the bridge pair
                    // (0, 15) toggles, so any boolean is legal for it — we
                    // only require the call to terminate and not panic.
                    assert!(forest.connected(2, 6));
                    assert!(forest.connected(9, 14));
                    let _ = forest.connected(0, 15);
                    assert!(!forest.connected(0, 31));
                }
            });
        }
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            for _ in 0..20_000 {
                forest_w.link(3, 12);
                forest_w.cut(3, 12);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });
    assert!(!forest.connected(0, 15));
    forest.validate();
}

/// A prepared-but-uncommitted cut must be invisible to concurrent readers
/// even while they hammer the affected component.
#[test]
fn prepared_cut_is_invisible_to_concurrent_readers() {
    let forest = Arc::new(EulerForest::new(16));
    for v in 0..15 {
        forest.link(v, v + 1);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..3 {
            let forest = Arc::clone(&forest);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert!(forest.connected(0, 15), "prepared cut leaked to readers");
                }
            });
        }
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            for i in 0..2_000u32 {
                let cut_at = 3 + (i % 9);
                let cut = forest_w.prepare_cut(cut_at, cut_at + 1);
                // Simulate a replacement search that always succeeds: relink
                // the same endpoints, never committing the cut.
                std::hint::black_box(&cut);
                forest_w.link(cut_at, cut_at + 1);
            }
            stop_w.store(true, Ordering::Relaxed);
        });
    });
    assert!(forest.connected(0, 15));
    forest.validate();
}

/// Version bumps guarantee that a reader racing with modifications retries
/// rather than returning a stale answer; this test checks the *liveness*
/// side: readers always terminate (no livelock) while the writer performs a
/// long stream of operations, and throughput of successful reads is non-zero.
#[test]
fn readers_terminate_under_continuous_writes() {
    let n = 128;
    let forest = Arc::new(EulerForest::new(n));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let forest = Arc::clone(&forest);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    let mut completed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let a = rng.gen_range(0..n as u32);
                        let b = rng.gen_range(0..n as u32);
                        let _ = forest.connected(a, b);
                        completed += 1;
                    }
                    completed
                })
            })
            .collect();
        let forest_w = Arc::clone(&forest);
        let stop_w = Arc::clone(&stop);
        s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for _ in 0..30_000 {
                if edges.is_empty() || rng.gen_bool(0.55) {
                    let u = rng.gen_range(0..n as u32);
                    let v = rng.gen_range(0..n as u32);
                    if u != v && !forest_w.connected(u, v) {
                        forest_w.link(u, v);
                        edges.push((u, v));
                    }
                } else {
                    let i = rng.gen_range(0..edges.len());
                    let (u, v) = edges.swap_remove(i);
                    forest_w.cut(u, v);
                }
            }
            stop_w.store(true, Ordering::Relaxed);
        });
        for h in handles {
            let completed = h.join().unwrap();
            assert!(completed > 0, "reader made no progress");
        }
    });
    forest.validate();
}
