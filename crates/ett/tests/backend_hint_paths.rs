//! Backend-generic hint-miss path coverage: exact counter accounting for
//! the branches of `resolve_root_validated` (`DESIGN.md` §8), run against
//! both [`DynamicForest`] backends.
//!
//! Three branches matter:
//!
//! * **absent hint** — the slot decodes to nothing, one miss, the
//!   double-walk primes it;
//! * **one-sided stale** — a query whose endpoints straddle a structural
//!   change records exactly one hit (the untouched side) and one miss (the
//!   bumped side), and the miss reprimes;
//! * **double-walk disagree** — a walk raced by the writer retries, but the
//!   miss was recorded *before* the walk loop, so each resolution moves the
//!   counters by exactly one no matter how many retries it took. That branch
//!   only fires under concurrency, so it is pinned by total accounting:
//!   `hits + misses` must equal the number of resolutions performed.

use dc_ett::{DynamicForest, EulerForest, LctForest};
use std::sync::atomic::{AtomicBool, Ordering};

fn absent_hint_misses_once_then_primes<F: DynamicForest>() {
    let forest = F::with_seed(8, 0);
    forest.set_read_hints(true);
    let backend = F::BACKEND;
    forest.link(0, 1);
    assert_eq!(
        forest.read_hint_stats(),
        (0, 0),
        "{backend}: writer ops must not touch the read counters"
    );
    // Cold endpoints: one miss per resolution, both slots primed.
    assert!(forest.connected(0, 1));
    assert_eq!(forest.read_hint_stats(), (0, 2), "{backend}: cold query");
    assert!(forest.hint_valid(0), "{backend}: miss must prime the slot");
    assert!(forest.hint_valid(1), "{backend}: miss must prime the slot");
    // Warm repeat: two hits, zero new misses.
    assert!(forest.connected(1, 0));
    assert_eq!(forest.read_hint_stats(), (2, 2), "{backend}: warm query");
}

fn one_sided_stale_counts_one_hit_one_miss<F: DynamicForest>() {
    let forest = F::with_seed(16, 0);
    forest.set_read_hints(true);
    let backend = F::BACKEND;
    // Component A: {0, 1}; component B: {2, 3}. Prime all four slots.
    forest.link(0, 1);
    forest.link(2, 3);
    assert!(forest.connected(0, 1));
    assert!(forest.connected(2, 3));
    let (h0, m0) = forest.read_hint_stats();
    assert_eq!((h0, m0), (0, 4), "{backend}: priming");

    // Structural change in B only: B's root version bumps, A's survives.
    forest.link(3, 4);
    assert!(forest.hint_valid(0), "{backend}: A's hint must survive");
    assert!(forest.hint_valid(1), "{backend}: A's hint must survive");
    assert!(!forest.hint_valid(2), "{backend}: B's hint must go stale");

    // The straddling query: endpoint 0 hits, endpoint 2 misses — exactly.
    assert!(!forest.connected(0, 2));
    assert_eq!(
        forest.read_hint_stats(),
        (h0 + 1, m0 + 1),
        "{backend}: one-sided-stale must record exactly one hit and one miss"
    );
    assert!(forest.hint_valid(2), "{backend}: the miss must reprime");

    // And the reprimed pair now answers from hits alone.
    assert!(!forest.connected(0, 2));
    assert_eq!(
        forest.read_hint_stats(),
        (h0 + 3, m0 + 1),
        "{backend}: reprimed pair must hit on both sides"
    );
}

fn resolve_accounting_stays_exact_under_churn<F: DynamicForest>() {
    let forest = F::with_seed(32, 0);
    forest.set_read_hints(true);
    let backend = F::BACKEND;
    // Stable path 16..31 gives the readers something to hit; the churned
    // half 0..15 forces stale hints and double-walk retries.
    for v in 16..31 {
        forest.link(v, v + 1);
    }
    let stop = AtomicBool::new(false);
    let mut reader_resolutions = 0u64;
    std::thread::scope(|scope| {
        let resolutions: Vec<_> = (0..3u64)
            .map(|t| {
                let forest = &forest;
                let stop = &stop;
                scope.spawn(move || {
                    let mut x = 0xD1B54A32D192ED03u64.wrapping_mul(t + 1);
                    let mut count = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = (x % 32) as u32;
                        let _ = forest.resolve_root_validated(v);
                        count += 1;
                    }
                    count
                })
            })
            .collect();
        // The single writer churns the low half; its own operations never
        // go through the read path, so the counters belong to the readers
        // alone.
        for round in 0..4_000u32 {
            let u = round % 15;
            forest.link(u, u + 1);
            forest.cut(u, u + 1);
        }
        stop.store(true, Ordering::Relaxed);
        for handle in resolutions {
            reader_resolutions += handle.join().unwrap();
        }
    });
    let (hits, misses) = forest.read_hint_stats();
    assert_eq!(
        hits + misses,
        reader_resolutions,
        "{backend}: every resolution records exactly one hit or one miss, \
         retries included"
    );
    assert!(misses > 0, "{backend}: the churn must force misses");
    assert!(hits > 0, "{backend}: the stable half must produce hits");
    forest.validate();
}

#[test]
fn absent_hint_misses_once_then_primes_on_ett() {
    absent_hint_misses_once_then_primes::<EulerForest>();
}

#[test]
fn absent_hint_misses_once_then_primes_on_lct() {
    absent_hint_misses_once_then_primes::<LctForest>();
}

#[test]
fn one_sided_stale_counts_one_hit_one_miss_on_ett() {
    one_sided_stale_counts_one_hit_one_miss::<EulerForest>();
}

#[test]
fn one_sided_stale_counts_one_hit_one_miss_on_lct() {
    one_sided_stale_counts_one_hit_one_miss::<LctForest>();
}

#[test]
fn resolve_accounting_stays_exact_under_churn_on_ett() {
    resolve_accounting_stays_exact_under_churn::<EulerForest>();
}

#[test]
fn resolve_accounting_stays_exact_under_churn_on_lct() {
    resolve_accounting_stays_exact_under_churn::<LctForest>();
}
