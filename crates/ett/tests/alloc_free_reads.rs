//! Asserts the bulk read path is allocation-free in steady state.
//!
//! The interleaved engine's whole point is latency: an allocator visit in
//! the middle of a query batch would both perturb the measured tail and
//! make the path's cost depend on global allocator state. The engine
//! therefore resolves everything through a reusable per-thread
//! [`dc_ett::ReadScratch`] (endpoints, memo, raw hint words, pending
//! climbs), and `connected_many_with` with a warmed scratch plus a
//! capacity-warm `out` buffer must not allocate at all.
//!
//! Proven here with a counting `#[global_allocator]`: the first call warms
//! everything up (epoch-domain registration, hint table materialization,
//! scratch and output capacity), then subsequent calls — same size and
//! smaller, hints on and off, every interleave width — are asserted to
//! perform **zero** allocations and **zero** frees.

use dc_ett::EulerForest;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The process-wide allocation counter behind [`CountingAlloc`].
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counters are simple atomics
// with no reentrancy into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Snapshot of `(allocations, frees)` since process start.
fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        FREES.load(Ordering::Relaxed),
    )
}

/// Integration tests share a process; keep the allocation-sensitive region
/// single-threaded and self-contained so a parallel test cannot bleed
/// counter traffic into the measured window. This file therefore holds
/// exactly one `#[test]`.
static GUARD: AtomicUsize = AtomicUsize::new(0);

#[test]
fn warm_bulk_reads_do_not_allocate() {
    assert_eq!(
        GUARD.fetch_add(1, Ordering::Relaxed),
        0,
        "this file must contain exactly one test (see comment above)"
    );
    let n = 512u32;
    let forest = EulerForest::new(n as usize);
    // A path component plus a separate star, so runs mix roots.
    for v in 0..(n / 2 - 1) {
        forest.link(v, v + 1);
    }
    for v in (n / 2 + 1)..n {
        forest.link(n / 2, v);
    }
    let pairs: Vec<(u32, u32)> = (0..256u32)
        .map(|i| {
            let u = (i * 7) % n;
            let v = (i * 13 + 5) % n;
            (u, v)
        })
        .collect();

    let mut scratch = dc_ett::ReadScratch::new();
    let mut out: Vec<bool> = Vec::new();
    let mut expected: Vec<bool> = Vec::new();
    expected.extend(pairs.iter().map(|&(u, v)| forest.connected(u, v)));

    // Warm-up: materializes the hint table, registers this thread with the
    // epoch domain, grows scratch and `out` to capacity — all the one-time
    // costs the steady state is allowed to have paid once.
    for &hints in &[true, false] {
        forest.set_read_hints(hints);
        for width in [1usize, 8, dc_ett::MAX_INTERLEAVE_WIDTH] {
            forest.set_interleave_width(width);
            out.clear();
            forest.connected_many_with(&pairs, &mut scratch, &mut out);
            assert_eq!(out, expected);
        }
    }

    // Steady state: full-size and smaller runs, every configuration —
    // zero allocator traffic.
    for &hints in &[true, false] {
        forest.set_read_hints(hints);
        for width in [1usize, 8, dc_ett::MAX_INTERLEAVE_WIDTH] {
            forest.set_interleave_width(width);
            for take in [pairs.len(), 64, 4] {
                out.clear();
                let (allocs_before, frees_before) = counters();
                forest.connected_many_with(&pairs[..take], &mut scratch, &mut out);
                let (allocs_after, frees_after) = counters();
                assert_eq!(
                    (allocs_after - allocs_before, frees_after - frees_before),
                    (0, 0),
                    "warm bulk read allocated (w={width}, hints={hints}, {take} pairs)"
                );
                assert_eq!(out, expected[..take], "(w={width}, hints={hints})");
            }
        }
    }
}
