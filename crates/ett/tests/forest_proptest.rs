//! Property-based tests: the Euler Tour Tree forest must agree with a naive
//! edge-set + BFS model under arbitrary sequences of link/cut operations, and
//! its internal structure must stay valid after every operation.

use dc_ett::EulerForest;
use proptest::prelude::*;
use std::collections::HashSet;

const N: u32 = 24;

/// An abstract operation over a forest of `N` vertices. `Link`/`Cut` carry
/// arbitrary vertex pairs; the interpreter below turns them into *valid*
/// forest operations (link only when disconnected, cut only existing tree
/// edges) so that every generated sequence is executable.
#[derive(Clone, Debug)]
enum Op {
    Link(u32, u32),
    Cut(usize),
    Check(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N, 0..N).prop_map(|(a, b)| Op::Link(a, b)),
        any::<usize>().prop_map(Op::Cut),
        (0..N, 0..N).prop_map(|(a, b)| Op::Check(a, b)),
    ]
}

struct Model {
    edges: HashSet<(u32, u32)>,
}

impl Model {
    fn new() -> Self {
        Model {
            edges: HashSet::new(),
        }
    }
    fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let mut visited = HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        visited.insert(u);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if x == v {
                return true;
            }
            for &(a, b) in &self.edges {
                let next = if a == x {
                    Some(b)
                } else if b == x {
                    Some(a)
                } else {
                    None
                };
                if let Some(y) = next {
                    if visited.insert(y) {
                        queue.push_back(y);
                    }
                }
            }
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Connectivity answers always match the model, for arbitrary valid
    /// operation sequences.
    #[test]
    fn ett_matches_bfs_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let forest = EulerForest::new(N as usize);
        let mut model = Model::new();
        let mut tree_edges: Vec<(u32, u32)> = Vec::new();
        for op in ops {
            match op {
                Op::Link(u, v) => {
                    if u != v && !model.connected(u, v) {
                        prop_assert!(!forest.connected(u, v));
                        forest.link(u, v);
                        model.edges.insert((u, v));
                        tree_edges.push((u, v));
                    }
                }
                Op::Cut(i) => {
                    if !tree_edges.is_empty() {
                        let (u, v) = tree_edges.swap_remove(i % tree_edges.len());
                        forest.cut(u, v);
                        model.edges.remove(&(u, v));
                    }
                }
                Op::Check(u, v) => {
                    prop_assert_eq!(forest.connected(u, v), model.connected(u, v));
                }
            }
        }
        // Final exhaustive cross-check plus structural validation.
        for u in 0..N {
            for v in (u + 1)..N {
                prop_assert_eq!(forest.connected(u, v), model.connected(u, v));
            }
        }
        forest.validate();
    }

    /// Component sizes reported by the forest match the model after any
    /// sequence of operations.
    #[test]
    fn ett_component_sizes_match_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let forest = EulerForest::new(N as usize);
        let mut model = Model::new();
        let mut tree_edges: Vec<(u32, u32)> = Vec::new();
        for op in ops {
            match op {
                Op::Link(u, v) => {
                    if u != v && !model.connected(u, v) {
                        forest.link(u, v);
                        model.edges.insert((u, v));
                        tree_edges.push((u, v));
                    }
                }
                Op::Cut(i) => {
                    if !tree_edges.is_empty() {
                        let (u, v) = tree_edges.swap_remove(i % tree_edges.len());
                        forest.cut(u, v);
                        model.edges.remove(&(u, v));
                    }
                }
                Op::Check(_, _) => {}
            }
        }
        for probe in 0..N {
            let model_size = (0..N).filter(|&x| model.connected(probe, x)).count() as u32;
            prop_assert_eq!(forest.component_size(probe), model_size);
        }
    }

    /// A prepared (uncommitted) cut never changes the answers readers see.
    #[test]
    fn prepared_cut_preserves_reader_view(
        ops in proptest::collection::vec((0..N, 0..N), 1..60),
        cut_choice in any::<usize>(),
    ) {
        let forest = EulerForest::new(N as usize);
        let mut tree_edges: Vec<(u32, u32)> = Vec::new();
        for (u, v) in ops {
            if u != v && !forest.connected(u, v) {
                forest.link(u, v);
                tree_edges.push((u, v));
            }
        }
        prop_assume!(!tree_edges.is_empty());
        let before: Vec<bool> = (0..N)
            .flat_map(|u| (0..N).map(move |v| (u, v)))
            .map(|(u, v)| forest.connected(u, v))
            .collect();
        let (u, v) = tree_edges[cut_choice % tree_edges.len()];
        let cut = forest.prepare_cut(u, v);
        let during: Vec<bool> = (0..N)
            .flat_map(|u| (0..N).map(move |v| (u, v)))
            .map(|(u, v)| forest.connected(u, v))
            .collect();
        prop_assert_eq!(&before, &during, "prepared cut changed reader-visible connectivity");
        forest.commit_cut(&cut);
        prop_assert!(!forest.connected(u, v));
    }
}
