//! Tests of the version-validated root-hint cache (`DESIGN.md` §8).
//!
//! The cache is a pure accelerator, so every test here is about the two
//! things that could go wrong: a *stale* hint answering after its component
//! changed (the unsoundness the version validation must exclude — including
//! across the prepared-cut window, where walks from the detached piece
//! still end at the retained root), and invalidation bleeding into
//! components a writer never touched (which would erase the O(1) win).

use dc_ett::EulerForest;
use std::sync::atomic::{AtomicBool, Ordering};

/// Builds a forest with hints explicitly enabled (tests must not depend on
/// the process-wide default, which other tests may toggle).
fn forest(n: usize) -> EulerForest {
    let forest = EulerForest::new(n);
    forest.set_read_hints(true);
    forest
}

#[test]
fn toggling_hints_on_a_fresh_forest_allocates_nothing() {
    let forest = EulerForest::new(1 << 20);
    assert!(!forest.hints_materialized());
    // Disabling (or enabling) before the first query records a pending
    // override without paying the O(n) table...
    forest.set_read_hints(false);
    assert!(!forest.hints_materialized());
    assert!(!forest.read_hints_enabled());
    forest.set_read_hints(true);
    assert!(!forest.hints_materialized());
    assert!(forest.read_hints_enabled());
    forest.set_read_hints(false);
    // ...and a query under a disabled override climbs without ever
    // building the table.
    assert!(!forest.connected(0, 1));
    assert!(!forest.hints_materialized());
    assert_eq!(forest.read_hint_stats(), (0, 0));
}

#[test]
fn repeat_queries_hit_the_cache() {
    let forest = forest(8);
    forest.link(0, 1);
    forest.link(1, 2);
    forest.link(3, 4);

    // Cold: the first query climbs for both endpoints and installs hints
    // (counters are per endpoint resolution).
    assert!(forest.connected(0, 2));
    assert_eq!(forest.read_hint_stats(), (0, 2));

    // Warm: repeats answer from the cache — same pair, reversed pair, and a
    // cross-component pair once both endpoints are primed.
    assert!(forest.connected(0, 2)); // 2 hits
    assert!(forest.connected(2, 0)); // 2 hits
    assert!(forest.connected(3, 4)); // cold pair: 2 misses
    assert!(!forest.connected(0, 3)); // both endpoints primed: a false answer from hits
    assert_eq!(forest.read_hint_stats(), (6, 4));
}

#[test]
fn a_bump_invalidates_exactly_the_touched_component() {
    let forest = forest(12);
    // Component A: 0-1-2; component B: 4-5-6; vertex 8 stays a singleton.
    forest.link(0, 1);
    forest.link(1, 2);
    forest.link(4, 5);
    forest.link(5, 6);
    // Prime hints in A, B and the singleton.
    assert!(forest.connected(0, 2));
    assert!(forest.connected(4, 6));
    assert!(!forest.connected(8, 0));
    assert!(forest.hint_valid(0));
    assert!(forest.hint_valid(2));
    assert!(forest.hint_valid(4));
    assert!(forest.hint_valid(6));
    assert!(forest.hint_valid(8));

    // Structural change in A only (grow it by a link).
    forest.link(2, 3);

    // Exactly A's hints became stale; B's and the singleton's still hold.
    assert!(!forest.hint_valid(0), "A's hints must be invalidated");
    assert!(!forest.hint_valid(2), "A's hints must be invalidated");
    assert!(forest.hint_valid(4), "B's hints must survive A's change");
    assert!(forest.hint_valid(6), "B's hints must survive A's change");
    assert!(forest.hint_valid(8), "the singleton's hint must survive");

    // Hits on B, misses (and a reprime) on A — confirmed by the counters
    // (per endpoint resolution: a two-endpoint query counts twice).
    let (hits_before, misses_before) = forest.read_hint_stats();
    assert!(forest.connected(4, 6));
    let (hits_mid, misses_mid) = forest.read_hint_stats();
    assert_eq!((hits_mid, misses_mid), (hits_before + 2, misses_before));
    // 0's hint is stale and 3 was never primed: two misses.
    assert!(forest.connected(0, 3));
    let (hits_after, misses_after) = forest.read_hint_stats();
    assert_eq!((hits_after, misses_after), (hits_mid, misses_mid + 2));
    assert!(forest.hint_valid(0), "the miss must reprime the hint");

    // A cut in A again leaves B untouched.
    forest.cut(1, 2);
    assert!(!forest.hint_valid(0));
    assert!(forest.hint_valid(4));
    assert!(!forest.connected(0, 2));
    assert!(forest.connected(4, 6));
}

#[test]
fn hints_installed_during_a_prepared_cut_die_at_commit() {
    // Regression test for the subtle case the proptest suite caught during
    // development: during the prepared window walks from the detached piece
    // still end at the retained root, and readers install hints saying so.
    // `commit_cut` must bump the retained root *after* the logical split
    // store (and the detached root before it), or those hints would keep
    // validating — and keep answering `connected` — after the split
    // (DESIGN.md §8, the post-store bump rule).
    let forest = forest(6);
    forest.link(0, 1);
    forest.link(1, 2);
    forest.link(2, 3);

    let cut = forest.prepare_cut(1, 2);
    // Readers during the window still see one component, and install hints.
    assert!(forest.connected(0, 3));
    assert!(forest.connected(3, 0));

    forest.commit_cut(&cut);
    // The very hints installed above must now fail validation.
    assert!(!forest.connected(0, 3));
    assert!(!forest.connected(3, 0));
    assert!(forest.connected(0, 1));
    assert!(forest.connected(2, 3));
    forest.validate();
}

#[test]
fn forest_connected_many_agrees_with_connected() {
    let forest = forest(16);
    for v in 0..7 {
        forest.link(v, v + 1);
    }
    forest.link(9, 10);
    let pairs: Vec<(u32, u32)> = vec![
        (0, 7),
        (7, 0),
        (3, 3),
        (0, 9),
        (9, 10),
        (11, 12),
        (0, 7),
        (5, 2),
        (10, 9),
    ];
    for warm in [false, true, true] {
        if !warm {
            // Exercise the cold path with the cache disabled too.
            forest.set_read_hints(false);
        } else {
            forest.set_read_hints(true);
        }
        let mut bulk = Vec::new();
        forest.connected_many_into(&pairs, &mut bulk);
        let single: Vec<bool> = pairs.iter().map(|&(u, v)| forest.connected(u, v)).collect();
        assert_eq!(bulk, single);
        assert_eq!(
            bulk,
            vec![true, true, true, false, true, false, true, true, true]
        );
    }
}

#[test]
fn concurrent_readers_stay_exact_while_another_component_churns() {
    // Vertices 0..8 churn (single writer); vertices 8..16 form a stable
    // path. Readers hammer the stable component and the cross-component
    // pairs through the hint cache while the writer links and cuts — every
    // one of those answers is deterministic and must stay exact, even
    // though the writer's bumps continuously invalidate the churned
    // component's hints.
    let forest = forest(16);
    for v in 8..15 {
        forest.link(v, v + 1);
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let forest = &forest;
            let stop = &stop;
            scope.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    let a = 8 + (rand() % 8) as u32;
                    let b = 8 + (rand() % 8) as u32;
                    assert!(forest.connected(a, b), "stable component split?!");
                    let c = (rand() % 8) as u32;
                    assert!(
                        !forest.connected(a, c),
                        "phantom edge between the churned and stable halves"
                    );
                    assert!(forest.connected(c, c));
                }
            });
        }
        // The single writer: link/cut cycles over a small edge set in the
        // churned half, continuously bumping that half's root versions.
        for round in 0..2_000u32 {
            let u = round % 7;
            forest.link(u, u + 1);
            forest.cut(u, u + 1);
        }
        stop.store(true, Ordering::Relaxed);
    });
    let (hits, misses) = forest.read_hint_stats();
    assert!(
        hits > 0,
        "stable-component reads must hit ({hits}/{misses})"
    );
    forest.validate();
}
