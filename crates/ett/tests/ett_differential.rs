//! Differential test of the Euler Tour Tree forest against a sequential
//! union-find-with-rollback oracle, under heavy slot reuse.
//!
//! The existing proptests cross-check against a BFS model; this suite uses a
//! different oracle — union by rank with an undo stack, where a `cut` rolls
//! the union history back to the cut edge and replays the suffix — and
//! deliberately shapes the workloads around the arena's epoch-recycling:
//! long cut/link alternations at a steady live-edge count, so most
//! operations run on *recycled* node slots. Any reuse bug (a slot freed too
//! early, leftover marks/links from a previous incarnation, double retire)
//! shows up as a connectivity disagreement, a validation panic, or an
//! occupancy blow-up.

use dc_ett::EulerForest;
use proptest::prelude::*;

const N: u32 = 48;

/// Union-find with union-by-rank (no path compression) and an undo stack —
/// the rollback makes arbitrary edge deletion affordable: roll back to the
/// deleted edge's union, drop it, replay the unions that came after it.
struct RollbackDsu {
    parent: Vec<u32>,
    rank: Vec<u32>,
    /// One record per *union* (self-unions are never pushed):
    /// `(child_root, rank_bumped)`.
    history: Vec<(u32, bool)>,
    /// The edge that caused each union, aligned with `history`.
    edges: Vec<(u32, u32)>,
}

impl RollbackDsu {
    fn new(n: usize) -> Self {
        RollbackDsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            history: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn find(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn connected(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Unions the components of `a` and `b` (must be distinct) and records
    /// the edge.
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        assert_ne!(ra, rb, "oracle union of an already-connected pair");
        let (child, parent) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let bump = self.rank[child as usize] == self.rank[parent as usize];
        if bump {
            self.rank[parent as usize] += 1;
        }
        self.parent[child as usize] = parent;
        self.history.push((child, bump));
        self.edges.push((a, b));
    }

    fn undo_last(&mut self) -> (u32, u32) {
        let (child, bump) = self.history.pop().expect("undo on empty history");
        let parent = self.parent[child as usize];
        self.parent[child as usize] = child;
        if bump {
            self.rank[parent as usize] -= 1;
        }
        self.edges.pop().expect("history/edges out of sync")
    }

    /// Deletes `edge` (which must be present): rolls back to it, removes it,
    /// replays the rest.
    fn delete(&mut self, edge: (u32, u32)) {
        let mut replay = Vec::new();
        loop {
            let undone = self.undo_last();
            if undone == edge {
                break;
            }
            replay.push(undone);
        }
        for (a, b) in replay.into_iter().rev() {
            self.union(a, b);
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Link(u32, u32),
    Cut(usize),
    Check(u32, u32),
    /// Cut a random present edge and immediately re-link the same pair:
    /// maximum slot churn with no net structural change.
    Recycle(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N, 0..N).prop_map(|(a, b)| Op::Link(a, b)),
        any::<usize>().prop_map(Op::Cut),
        (0..N, 0..N).prop_map(|(a, b)| Op::Check(a, b)),
        any::<usize>().prop_map(Op::Recycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The forest agrees with the union-find-with-rollback oracle on every
    /// query, across operation sequences long enough to cycle edge-node
    /// slots through retirement and reuse many times.
    #[test]
    fn ett_matches_rollback_union_find(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let forest = EulerForest::new(N as usize);
        let mut oracle = RollbackDsu::new(N as usize);
        let mut total_links = 0usize;
        for op in ops {
            match op {
                Op::Link(u, v) => {
                    if u != v && !oracle.connected(u, v) {
                        prop_assert!(!forest.connected(u, v));
                        forest.link(u, v);
                        oracle.union(u, v);
                        total_links += 1;
                    }
                }
                Op::Cut(i) => {
                    if !oracle.edges.is_empty() {
                        let (u, v) = oracle.edges[i % oracle.edges.len()];
                        forest.cut(u, v);
                        oracle.delete((u, v));
                        prop_assert!(!forest.connected(u, v));
                    }
                }
                Op::Check(u, v) => {
                    prop_assert_eq!(
                        forest.connected(u, v),
                        oracle.connected(u, v),
                        "disagreement on ({}, {})", u, v
                    );
                }
                Op::Recycle(i) => {
                    if !oracle.edges.is_empty() {
                        let (u, v) = oracle.edges[i % oracle.edges.len()];
                        forest.cut(u, v);
                        oracle.delete((u, v));
                        forest.link(u, v);
                        oracle.union(u, v);
                        total_links += 1;
                    }
                }
            }
        }
        // Exhaustive final cross-check + structural validation.
        for u in 0..N {
            for v in (u + 1)..N {
                prop_assert_eq!(forest.connected(u, v), oracle.connected(u, v));
            }
        }
        forest.validate();
        // Slot-reuse acceptance: the arena never holds more slots than the
        // vertices plus the *peak* concurrent live edges (bounded by N - 1)
        // plus whatever is parked in limbo/free — far below one slot pair
        // per historical link once the sequence recycles.
        let bound = N as usize + 2 * (N as usize - 1) + 64;
        prop_assert!(
            forest.arena_occupancy() <= bound,
            "arena occupancy {} exceeds live bound {} after {} links",
            forest.arena_occupancy(), bound, total_links
        );
    }

    /// Pure steady-state churn: one spanning chain, then cut+link cycles.
    /// Occupancy must stay flat no matter how many operations run.
    #[test]
    fn churned_slots_are_recycled_not_leaked(
        picks in proptest::collection::vec((0..N - 1, any::<bool>()), 64..256)
    ) {
        let forest = EulerForest::new(N as usize);
        for v in 0..N - 1 {
            forest.link(v, v + 1);
        }
        let occupancy_after_build = forest.arena_occupancy();
        for (edge, relink_same) in picks {
            let (u, v) = (edge, edge + 1);
            forest.cut(u, v);
            if relink_same {
                forest.link(u, v);
            } else {
                forest.link(v, u);
            }
        }
        forest.validate();
        prop_assert_eq!(forest.live_node_count(), occupancy_after_build);
        // Grace periods trail by a couple of epochs, so allow a small pad.
        prop_assert!(
            forest.arena_occupancy() <= occupancy_after_build + 16,
            "steady-state churn grew the arena: {} -> {}",
            occupancy_after_build,
            forest.arena_occupancy()
        );
    }
}
