//! The single-writer, multi-reader concurrent Euler Tour Tree forest.
//!
//! An [`EulerForest`] maintains one Euler tour per spanning tree of a forest
//! over `n` vertices, each tour stored in a Cartesian tree (treap).  It is
//! the data structure of Section 3 of the paper:
//!
//! * [`EulerForest::connected`] / [`EulerForest::find_root`] are lock-free
//!   and may be called from any number of threads at any time
//!   (Listing 1 of the paper).
//! * Structural operations ([`EulerForest::link`], [`EulerForest::cut`],
//!   [`EulerForest::prepare_cut`] / [`EulerForest::commit_cut`]) follow the
//!   single-writer discipline: for any given component, at most one thread
//!   may be running a structural operation at a time.  The dynamic
//!   connectivity layer enforces this with a global lock (coarse-grained
//!   variants) or per-component locks (fine-grained variants).
//!
//! Structural operations are split into a *logical* part — one store that
//! readers observe as the linearization point — and a *physical* part that
//! restructures the treaps while preserving, at every instant, the invariant
//! that every node reaches its component's current representative by
//! following parent pointers (see `crate::treap` for the mechanics).
//!
//! # Side tables and reclamation
//!
//! Per-node state that is only meaningful on component representatives —
//! the root **version** the reader protocol snapshots and the per-component
//! **lock** of the fine-grained variants — lives in per-vertex side tables
//! here rather than inside every [`Node`]: the priority-band invariant makes
//! every complete-tour treap root a vertex node, so indexing by the root's
//! vertex id is total.  This halves the node footprint (see
//! [`crate::node`]).
//!
//! Lock-free traversals ([`EulerForest::find_root`],
//! [`EulerForest::connected`], [`EulerForest::mark_path_upward`]) pin the
//! arena's epoch domain, which lets `cut` *retire* its two Euler-tour edge
//! nodes for recycling instead of leaking them (see [`crate::arena`] and
//! `DESIGN.md` §4).  A [`PreparedCut`] must be finished with exactly one of
//! [`EulerForest::commit_cut`] (which retires the pair) or
//! [`EulerForest::retire_cut_nodes`] (for the replacement-found path that
//! relinks the pieces instead of committing).
//!
//! # The root-hint fast path
//!
//! On top of the Listing-1 protocol sits a per-vertex [`HintCache`]: a
//! validated `(root_vertex, version)` snapshot per vertex, installed by
//! readers on the way out of a successful climb.  Because writers bump a
//! root's version *before* any structural change to its component, "the
//! hinted root's version is still the recorded one" proves the component —
//! and hence the vertex's membership — is unchanged since the snapshot, so
//! a repeat query on a stable component is a handful of loads instead of
//! two O(depth) pointer climbs.  Stale hints fail validation and fall back
//! to the climb (which refreshes them); see `DESIGN.md` §8 for the safety
//! argument and [`crate::hints`] for the encoding.

use crate::arena::{Arena, NodeRef};
use crate::hints::HintCache;
use crate::node::{Mark, Node};
use dc_sync::epoch::EpochGuard;
use dc_sync::{RawRwLock, ShardedMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Upper bound on the interleaved read engine's in-flight climb count (the
/// per-group state array lives on the stack, so the cap keeps it small).
pub const MAX_INTERLEAVE_WIDTH: usize = 32;

/// Default number of in-flight climbs (see `DESIGN.md` §10: wide enough to
/// cover a DRAM round-trip with useful work, narrow enough that the states
/// themselves stay cache-resident).
const DEFAULT_INTERLEAVE_WIDTH: usize = 8;

/// How many times one in-flight climb may restart (validation failure under
/// concurrent restructuring) before the group bails it out to the scalar
/// retry loop — this bounds how long a group's epoch pin can be held.
const INTERLEAVE_RETRY_CAP: u8 = 4;

/// Hint-validation batch: slot lines are prefetched this many endpoints
/// ahead of the loads that consume them.
const HINT_PREFETCH_BATCH: usize = 16;

/// Normalizes an undirected edge key.
#[inline]
fn norm(u: u32, v: u32) -> (u32, u32) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// A spanning-edge cut that has been physically prepared but not yet
/// logically applied.
///
/// Between [`EulerForest::prepare_cut`] and [`EulerForest::commit_cut`] the
/// two would-be trees are fully restructured, yet concurrent readers still
/// observe a single connected component: the root of the detached piece keeps
/// a stale parent pointer into the retained piece.  The dynamic connectivity
/// layer runs its replacement search in this window; if a replacement edge is
/// found it simply links the pieces back together (readers never notice),
/// otherwise it commits the cut with a single parent-pointer store.
#[derive(Clone, Copy, Debug)]
pub struct PreparedCut {
    /// Root of the piece that contains the old component representative.
    pub retained_root: NodeRef,
    /// Root of the piece that becomes a separate component when committed.
    pub detached_root: NodeRef,
    /// Number of vertices in the retained piece.
    pub retained_size: u32,
    /// Number of vertices in the detached piece.
    pub detached_size: u32,
    /// The two directed tour edge nodes split out of the tour, now
    /// singletons awaiting retirement (see [`EulerForest::retire_cut_nodes`]).
    pub edge_nodes: (NodeRef, NodeRef),
}

impl PreparedCut {
    /// Returns `(smaller_root, smaller_size)` of the two prepared pieces —
    /// the side the HDT replacement search scans and promotes.
    pub fn smaller_piece(&self) -> (NodeRef, u32) {
        if self.detached_size <= self.retained_size {
            (self.detached_root, self.detached_size)
        } else {
            (self.retained_root, self.retained_size)
        }
    }
}

/// Reusable buffers for the bulk read path
/// ([`EulerForest::connected_many_with`]): the sorted distinct-endpoint
/// list, its root memo, the raw hint words of the batched validation pass
/// and the pending-climb worklist. Capacity accumulates across calls, so a
/// warmed scratch makes the whole bulk read path allocation-free
/// (asserted by `crates/ett/tests/alloc_free_reads.rs`).
///
/// [`EulerForest::connected_many_into`] keeps one per thread internally;
/// callers managing their own buffers (the batch engine's fan-out workers)
/// can hold one explicitly.
#[derive(Debug, Default)]
pub struct ReadScratch {
    /// Sorted, deduplicated endpoints of the current run.
    endpoints: Vec<u32>,
    /// Validated `(root_vertex, version)` claim per endpoint.
    memo: Vec<(u32, u64)>,
    /// Raw hint word observed per endpoint (fed back to the install CAS).
    raws: Vec<u64>,
    /// Endpoint indices whose hint missed and still need a climb.
    pending: Vec<u32>,
}

impl ReadScratch {
    /// Creates an empty scratch (buffers grow on first use and are reused
    /// from then on).
    pub const fn new() -> Self {
        ReadScratch {
            endpoints: Vec::new(),
            memo: Vec::new(),
            raws: Vec::new(),
            pending: Vec::new(),
        }
    }
}

thread_local! {
    /// The per-thread scratch behind [`EulerForest::connected_many_into`]
    /// (take/put so re-entrancy degrades to a fresh scratch, never aliasing).
    static READ_SCRATCH: std::cell::Cell<ReadScratch> =
        const { std::cell::Cell::new(ReadScratch::new()) };
}

/// One in-flight climb of the interleaved engine: which endpoint it
/// resolves, where the climb currently stands, and the first completed
/// walk's `(root, version)` claim awaiting confirmation by the second.
#[derive(Clone, Copy)]
struct Climb {
    /// Index into `ReadScratch::endpoints`.
    slot: u32,
    /// The vertex node the walk (re)starts from.
    start: NodeRef,
    /// Current position of the walk.
    cur: NodeRef,
    /// Result of the previous completed walk, if any: a claim becomes
    /// validated when the next walk reproduces it exactly.
    first: Option<(NodeRef, u64)>,
    /// Walk restarts consumed (validation failures under churn); at
    /// `INTERLEAVE_RETRY_CAP` the climb is bailed out of the group.
    retries: u8,
}

/// The Euler Tour Tree forest; see the module documentation.
pub struct EulerForest {
    arena: Arena,
    vertex_nodes: Vec<NodeRef>,
    /// Normalized tree edge -> (min->max tour node, max->min tour node).
    edge_nodes: ShardedMap<(u32, u32), (NodeRef, NodeRef)>,
    /// Per-vertex root version, read by the lock-free protocol whenever the
    /// vertex is a component representative (side table, see module docs).
    versions: Box<[AtomicU64]>,
    /// Per-vertex component lock, taken by the dynamic connectivity layer
    /// on level-0 representatives. Lazy: upper-level forests never touch it.
    locks: OnceLock<Box<[RawRwLock]>>,
    /// Per-vertex validated root hints (the lock-free read fast path).
    /// Lazy like `locks`: only the forest that answers queries (level 0 of
    /// an HDT structure) ever consults it, so upper-level forests never pay
    /// the O(n) table.
    hints: OnceLock<HintCache>,
    /// Enable/disable requested before the cache materialized: 0 = none
    /// (adopt the process default at materialization), 1 = forced off,
    /// 2 = forced on. Lets `set_read_hints(false)` on a never-queried
    /// forest stay allocation-free.
    hints_override: AtomicU8,
    /// Whether bulk reads go through the interleaved, prefetched climber
    /// (`connected_many_into`); the scalar memo path remains available as
    /// the differential oracle. Both settings are correct.
    interleaved: AtomicBool,
    /// In-flight climb count of the interleaved engine, clamped to
    /// `1..=MAX_INTERLEAVE_WIDTH`.
    interleave_width: AtomicU8,
    prio_state: AtomicU64,
}

impl EulerForest {
    /// Creates a forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self::with_seed(n, 0x05EE_D0FD_C0DE)
    }

    /// Creates a forest of `n` isolated vertices with an explicit priority
    /// seed (useful for deterministic tests).
    pub fn with_seed(n: usize, seed: u64) -> Self {
        let forest = EulerForest {
            arena: Arena::new(),
            vertex_nodes: Vec::new(),
            edge_nodes: ShardedMap::new(),
            versions: (0..n).map(|_| AtomicU64::new(0)).collect(),
            locks: OnceLock::new(),
            hints: OnceLock::new(),
            hints_override: AtomicU8::new(0),
            interleaved: AtomicBool::new(true),
            interleave_width: AtomicU8::new(DEFAULT_INTERLEAVE_WIDTH as u8),
            prio_state: AtomicU64::new(seed | 1),
        };
        let mut forest = forest;
        let mut nodes = Vec::with_capacity(n);
        for v in 0..n {
            let r = forest.arena.alloc();
            let node = forest.arena.node(r);
            node.set_endpoints(v as u32, v as u32);
            // Vertex nodes draw priorities from the upper band so a tour's
            // treap root is always a vertex node.
            node.set_priority(forest.next_priority() | (1 << 31));
            node.set_size(1);
            node.set_is_root(true);
            node.set_parent(NodeRef::NONE);
            nodes.push(r);
        }
        forest.vertex_nodes = nodes;
        forest
    }

    fn next_priority(&self) -> u32 {
        // SplitMix64 over an atomic counter: thread-safe, cheap, and
        // deterministic for a fixed seed. The high half of the mix feeds the
        // 31-bit priority (bit 31 is the vertex/edge band flag).
        let x = self
            .prio_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (((z ^ (z >> 31)) >> 32) as u32) & !(1 << 31)
    }

    /// Number of vertices in the forest.
    pub fn num_vertices(&self) -> usize {
        self.vertex_nodes.len()
    }

    /// Number of spanning edges currently in the forest.
    pub fn num_tree_edges(&self) -> usize {
        self.edge_nodes.len()
    }

    /// Number of node slots the arena currently holds (allocated, whether
    /// live or retired). The memory-stability metric tracked by the churn
    /// benchmark: with slot recycling this stays proportional to
    /// [`EulerForest::live_node_count`] instead of growing with the total
    /// number of historical links.
    pub fn arena_occupancy(&self) -> usize {
        self.arena.len()
    }

    /// Number of *live* tour nodes: one per vertex plus two per spanning
    /// edge.
    pub fn live_node_count(&self) -> usize {
        self.vertex_nodes.len() + 2 * self.edge_nodes.len()
    }

    /// Number of retired tour nodes still waiting out an epoch grace period.
    pub fn arena_retired(&self) -> usize {
        self.arena.retired_len()
    }

    /// Number of recycled slots ready for reuse.
    pub fn arena_free(&self) -> usize {
        self.arena.free_len()
    }

    /// Caps (or uncaps) the node arena's bump growth — the test door for
    /// exercising the typed [`crate::arena::ArenaExhausted`] path through
    /// [`EulerForest::try_link`] without allocating millions of slots.
    pub fn set_node_limit(&self, limit: Option<u32>) {
        self.arena.set_node_limit(limit);
    }

    /// Pins the calling thread against the forest's reclamation domain: no
    /// node the thread can reach is recycled until the guard drops. The
    /// lock-free read operations pin internally; this is for tests and for
    /// callers composing multi-step lock-free traversals.
    #[inline]
    pub fn pin(&self) -> EpochGuard<'_> {
        self.arena.pin()
    }

    /// The forest's reclamation domain (observability: tests, diagnostics).
    pub fn epoch_domain(&self) -> &dc_sync::EpochDomain {
        self.arena.domain()
    }

    // ----- per-representative side tables ----------------------------------

    /// Vertex id of a complete-tour treap root (always a vertex node, by the
    /// priority-band invariant).
    #[inline]
    fn root_vertex(&self, r: NodeRef) -> u32 {
        self.node(r)
            .vertex()
            .expect("complete-tour treap roots are vertex nodes")
    }

    /// Reads the root version of representative `r` (paper Listing 1).
    ///
    /// Acquire, not SeqCst. The read protocol needs exactly three things
    /// from these loads (memory-ordering table in `DESIGN.md` §8):
    /// (a) per-word monotonicity — coherence gives it for free at any
    /// ordering; (b) the validation loads of a sandwich (hint fast path,
    /// Listing-1 double-check) must stay in program order — Acquire forbids
    /// hoisting a later load above an earlier one; (c) a reader whose
    /// validation *fails* must observe a fully published structure when it
    /// re-walks — reading the Release bump synchronizes-with the writer.
    /// No total order across different version words is required.
    #[inline]
    pub fn root_version(&self, r: NodeRef) -> u64 {
        self.version_of_vertex(self.root_vertex(r))
    }

    /// Reads a root version by the representative's vertex id (the hint
    /// validation path, which has no [`NodeRef`] in hand).
    #[inline]
    fn version_of_vertex(&self, root: u32) -> u64 {
        self.versions[root as usize].load(Ordering::Acquire)
    }

    /// Bumps the root version of representative `r` (writer only, before a
    /// merge/split of its component).
    ///
    /// Release, not SeqCst. The invariant readers rely on is *bump visible
    /// no later than the structural change*: the bump is sequenced before
    /// the operation's first Release parent-pointer store, so any reader
    /// that observed restructured pointers through an Acquire parent load
    /// also observes the bump — that holds even for a Relaxed bump.
    /// Release (rather than Relaxed) additionally publishes the writer's
    /// earlier bookkeeping to readers whose validation load observes the
    /// new version word directly, sparing them a fence before the re-walk.
    #[inline]
    pub fn bump_root_version(&self, r: NodeRef) {
        let root = self.root_vertex(r);
        let version = self.versions[root as usize].fetch_add(1, Ordering::Release) + 1;
        // Every bump invalidates the outstanding hints on this root
        // (DESIGN.md §8); surface that as a counter + flight event.
        dc_obs::counter_add(dc_obs::Counter::HintInvalidations, 1);
        dc_obs::event(dc_obs::EventKind::HintInvalidation, root as u64, version);
    }

    /// The per-component lock of representative `r` (level-0 only; the table
    /// materializes on first use so upper-level forests never pay for it).
    ///
    /// The lock lives in a per-*vertex* side table rather than inside the
    /// node: it is only ever taken on component representatives, which are
    /// always vertex nodes, so `n` lock words cover a forest of `2n + 2m`
    /// nodes.
    #[inline]
    pub fn root_lock(&self, r: NodeRef) -> &RawRwLock {
        let locks = self.locks.get_or_init(|| {
            (0..self.vertex_nodes.len())
                .map(|_| RawRwLock::new())
                .collect()
        });
        &locks[self.root_vertex(r) as usize]
    }

    /// Shared access to a node. This is an advanced accessor used by the
    /// dynamic connectivity layer for per-component locks, subtree traversal
    /// and mark maintenance.
    #[inline]
    pub fn node(&self, r: NodeRef) -> &Node {
        self.arena.node(r)
    }

    /// The permanent tour node of vertex `v`.
    #[inline]
    pub fn vertex_node_ref(&self, v: u32) -> NodeRef {
        self.vertex_nodes[v as usize]
    }

    /// Returns `true` if the spanning edge `(u, v)` is currently in the
    /// forest.
    pub fn has_tree_edge(&self, u: u32, v: u32) -> bool {
        self.edge_nodes.contains_key(&norm(u, v))
    }

    // ----- lock-free read operations (Listing 1 + root hints) --------------

    /// The raw climb of paper Listing 1: follows parent links from `v`'s
    /// node to the current root and returns the root with its version.
    ///
    /// Safe to call concurrently with structural operations: the walk pins
    /// the reclamation domain, so no node it can reach is recycled under
    /// it. The pin covers only this one walk — the returned pair is plain
    /// data (the root is a vertex node, whose slot is never recycled), so
    /// callers may hold it across pins. Keeping pins walk-sized is what
    /// lets the epoch advance under sustained read pressure: a pin held
    /// across a whole retrying query would stall reclamation exactly when
    /// the structure churns hardest.
    fn find_root_walk(&self, v: u32) -> (NodeRef, u64) {
        let _guard = self.arena.pin();
        let mut cur = self.vertex_node_ref(v);
        loop {
            let parent = self.node(cur).parent();
            if parent.is_none() {
                break;
            }
            cur = parent;
        }
        (cur, self.root_version(cur))
    }

    /// The forest's hint cache, materialized on first consultation (first
    /// query against this forest) so never-queried forests — every HDT
    /// level above 0 — skip the O(n) table entirely.
    #[inline]
    fn hints(&self) -> &HintCache {
        self.hints.get_or_init(|| {
            let cache = HintCache::new(self.vertex_nodes.len());
            match self.hints_override.load(Ordering::Relaxed) {
                1 => cache.set_enabled(false),
                2 => cache.set_enabled(true),
                _ => {} // adopt the process default HintCache::new read
            }
            cache
        })
    }

    /// Whether the hint fast path is active, *without* materializing the
    /// table: an unmaterialized cache reports the pending override if one
    /// was set, else the process-wide construction default (what it would
    /// be built with) — so hints-disabled forests stay table-free through
    /// any number of queries.
    #[inline]
    fn hints_enabled(&self) -> bool {
        match self.hints.get() {
            Some(hints) => hints.is_enabled(),
            None => match self.hints_override.load(Ordering::Relaxed) {
                1 => false,
                2 => true,
                _ => crate::hints::default_read_hints(),
            },
        }
    }

    /// Validates a raw hint slot value: `Some((root_vertex,
    /// current_version))` iff the hinted root's version still matches the
    /// recorded snapshot. A hit proves the slot's vertex roots at
    /// `root_vertex` *right now* (at the validation load) — no pin, no
    /// traversal; see `DESIGN.md` §8. Takes the already-loaded raw value so
    /// callers read each slot exactly once.
    #[inline]
    fn validate_hint(&self, raw: u64) -> Option<(u32, u64)> {
        let (root, ver32) = HintCache::decode(raw)?;
        let cur = self.version_of_vertex(root);
        (cur as u32 == ver32).then_some((root, cur))
    }

    /// Resolves `v`'s current root together with its version (paper
    /// Listing 1, `find_root`), short-circuited by a validated root hint
    /// when one is present. Goes through the same resolution path as
    /// `connected`, so its consultations count in the hit/miss statistics
    /// and a miss warms the hint slot on the way out; the returned pair is
    /// always a validated claim (simultaneously current at some instant).
    pub fn find_root(&self, v: u32) -> (NodeRef, u64) {
        let (root, version) = self.resolve_root_validated(v);
        (self.vertex_node_ref(root), version)
    }

    /// The current root node of `v`'s component (without the version),
    /// always resolved by a raw climb — never through the hint cache.
    ///
    /// The callers of this method are *protocol-critical* writer-side
    /// paths: per-component lock acquisition and the published-removal
    /// conflict handshake. Those must be exact, not probabilistic — the
    /// hint fast path carries the (astronomically improbable, but real)
    /// 32-bit version-wraparound caveat of `DESIGN.md` §8, which is an
    /// acceptable risk for one stale query answer but not for mutual
    /// exclusion. Keeping this walk-based confines the caveat strictly to
    /// the read side.
    pub fn find_root_node(&self, v: u32) -> NodeRef {
        self.find_root_walk(v).0
    }

    /// Linearizable, non-blocking connectivity check: the root-hint fast
    /// path over paper Listing 1.
    ///
    /// With hints enabled, each endpoint is resolved to a *validated*
    /// `(root, version)` claim independently — a hot endpoint costs one
    /// hint load plus one version load, and only a cold/stale endpoint
    /// pays a climb — and the two claims are then proved simultaneous with
    /// at most three more version loads (`DESIGN.md` §8). A query whose
    /// both endpoints are hot is therefore two hint loads plus two version
    /// loads, no tree traversal and no epoch pin at all. With hints
    /// disabled this is exactly the paper's climbing protocol.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        if self.hints_enabled() {
            self.connected_resolve(u, v)
        } else {
            self.connected_climb(u, v)
        }
    }

    /// The hint-backed protocol: two validated endpoint resolutions plus a
    /// version sandwich proving them simultaneous.
    fn connected_resolve(&self, u: u32, v: u32) -> bool {
        loop {
            let (ru, ver_u) = self.resolve_root_validated(u);
            let (rv, ver_v) = self.resolve_root_validated(v);
            if ru == rv {
                // Same root: each claim proves `versions[ru] == ver` at its
                // own instant, so equal versions mean the word was constant
                // between the two instants (monotonicity) — both claims
                // held at once, hence connected. No extra load needed.
                if ver_u == ver_v {
                    return true;
                }
            } else {
                // Different roots: validate u, then v, then u again. If all
                // three loads match, both components were unchanged at the
                // instant of the middle load, where the answer linearizes.
                if self.version_of_vertex(ru) == ver_u
                    && self.version_of_vertex(rv) == ver_v
                    && self.version_of_vertex(ru) == ver_u
                {
                    return false;
                }
            }
            // A writer moved one of the components mid-query; re-resolve
            // (the stale side will miss its hint and re-climb).
        }
    }

    /// The climbing protocol of paper Listing 1, verbatim (the hints-off
    /// read path, and the reference the hint protocol is measured against).
    ///
    /// Each `find_root_walk` pins the reclamation domain independently; the
    /// comparisons below only involve the returned values, never a
    /// dereference of a node from an earlier walk.
    fn connected_climb(&self, u: u32, v: u32) -> bool {
        loop {
            let (u_root, u_version) = self.find_root_walk(u);
            let (v_root, v_version) = self.find_root_walk(v);
            // Has the component of `u` changed while we looked at `v`?
            if self.find_root_walk(u) != (u_root, u_version) {
                continue;
            }
            if u_root != v_root {
                // `u` and `v` are likely in different components; re-check
                // that both roots were snapshotted atomically.
                if self.find_root_walk(v) != (v_root, v_version) {
                    continue;
                }
                if self.find_root_walk(u) != (u_root, u_version) {
                    continue;
                }
            }
            return u_root == v_root;
        }
    }

    /// Resolves `v`'s component root as a *validated* `(root_vertex,
    /// version)` claim — the pair was simultaneously current at some
    /// instant — consulting the hint cache first and double-walking on a
    /// miss (installing the fresh hint on the way out).
    ///
    /// This is the building block bulk query paths share: resolve each
    /// distinct endpoint once, then compare and revalidate per pair
    /// ([`EulerForest::connected_many_into`]).
    pub fn resolve_root_validated(&self, v: u32) -> (u32, u64) {
        // Bind the cache once (or not at all: a disabled cache is never
        // touched, so hints-off forests stay table-free). The slot is read
        // exactly once; the same value is validated here and handed to the
        // install CAS below, so a hint installed concurrently is never
        // clobbered by mistake.
        let hints = self.hints_enabled().then(|| self.hints());
        let observed = hints.map(|h| h.raw(v));
        if let (Some(hints), Some(observed)) = (hints, observed) {
            if let Some((root, version)) = self.validate_hint(observed) {
                hints.record_hit();
                return (root, version);
            }
            hints.record_miss();
        }
        loop {
            let (r, version) = self.find_root_walk(v);
            if self.find_root_walk(v) == (r, version) {
                let root = self.root_vertex(r);
                if let (Some(hints), Some(observed)) = (hints, observed) {
                    hints.install(v, observed, root, version);
                }
                return (root, version);
            }
        }
    }

    /// Answers a run of connectivity queries, resolving each *distinct*
    /// endpoint's root at most once and reusing it across the run: repeated
    /// roots validate with a couple of version loads per pair instead of
    /// re-climbing, even when the hint cache is cold or disabled. Answers
    /// are appended to `out` in pair order; each answer is individually
    /// linearizable (stale memo entries are revalidated per pair and
    /// refreshed on failure, exactly like hint misses).
    ///
    /// By default the run goes through the interleaved, software-prefetched
    /// read engine (see [`EulerForest::connected_many_with`]); with
    /// [`EulerForest::set_interleaved_reads`]`(false)` it takes the scalar
    /// memo path ([`EulerForest::connected_many_scalar_into`]), the
    /// differential oracle. Uses a per-thread [`ReadScratch`], so steady-
    /// state calls allocate nothing beyond `out`'s own growth.
    pub fn connected_many_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        if !self.interleaved_reads_enabled() {
            self.connected_many_scalar_into(pairs, out);
            return;
        }
        let mut scratch = READ_SCRATCH.with(|s| s.take());
        self.connected_many_with(pairs, &mut scratch, out);
        READ_SCRATCH.with(|s| s.set(scratch));
    }

    /// The scalar bulk read path: per-endpoint [`EulerForest::
    /// resolve_root_validated`] climbs into a sorted memo, no interleaving,
    /// no prefetch. Kept verbatim as the differential oracle the
    /// interleaved engine is tested against (and as a bench cell).
    pub fn connected_many_scalar_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        out.reserve(pairs.len());
        // Tiny runs: the memo costs more than it saves.
        if pairs.len() < 4 {
            for &(u, v) in pairs {
                out.push(u == v || self.connected(u, v));
            }
            return;
        }
        let mut endpoints: Vec<u32> = Vec::with_capacity(pairs.len() * 2);
        for &(u, v) in pairs {
            endpoints.push(u);
            endpoints.push(v);
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        let mut memo: Vec<(u32, u64)> = endpoints
            .iter()
            .map(|&e| self.resolve_root_validated(e))
            .collect();
        let index = |x: u32| {
            endpoints
                .binary_search(&x)
                .expect("endpoint collected above")
        };
        for &(u, v) in pairs {
            if u == v {
                out.push(true);
                continue;
            }
            let (iu, iv) = (index(u), index(v));
            loop {
                let (ru, ver_u) = memo[iu];
                let (rv, ver_v) = memo[iv];
                // The same sandwich as `connected_resolve`, against the
                // full 64-bit versions the memo carries.
                let valid = if ru == rv {
                    ver_u == ver_v
                } else {
                    self.version_of_vertex(ru) == ver_u
                        && self.version_of_vertex(rv) == ver_v
                        && self.version_of_vertex(ru) == ver_u
                };
                if valid {
                    out.push(ru == rv);
                    break;
                }
                memo[iu] = self.resolve_root_validated(u);
                memo[iv] = self.resolve_root_validated(v);
            }
        }
    }

    // ----- the interleaved, prefetched bulk read engine ---------------------

    /// The memory-level-parallelism bulk read path (`DESIGN.md` §10): the
    /// same memoized protocol as [`EulerForest::connected_many_scalar_into`]
    /// — and the same answers — but endpoint resolution is restructured so
    /// independent cache misses overlap instead of serializing:
    ///
    /// 1. **Batched hint validation.** Hint-slot lines are prefetched a
    ///    batch ahead of the loads that consume them, and each decoded
    ///    root's version word is prefetched as soon as the raw hint word is
    ///    in hand — by the time the validation load executes, the line is
    ///    (probabilistically) already in flight.
    /// 2. **Interleaved climbing.** Endpoints whose hint missed are climbed
    ///    in groups of up to `width` software-pipelined walks: each
    ///    in-flight walk advances one parent hop per turn and prefetches
    ///    its next node before the turn passes on, so up to `width` DRAM
    ///    misses are outstanding at once instead of one.
    /// 3. The per-pair version-sandwich validation, identical to the scalar
    ///    path.
    ///
    /// Prefetching never changes what is *read*, so the Listing-1 /
    /// root-hint safety arguments apply unchanged (`DESIGN.md` §10).
    /// Explicit-scratch variant of [`EulerForest::connected_many_into`];
    /// with a warmed `scratch` the call is allocation-free.
    pub fn connected_many_with(
        &self,
        pairs: &[(u32, u32)],
        scratch: &mut ReadScratch,
        out: &mut Vec<bool>,
    ) {
        out.reserve(pairs.len());
        // Tiny runs: the memo costs more than it saves (same cutoff as the
        // scalar path).
        if pairs.len() < 4 {
            for &(u, v) in pairs {
                out.push(u == v || self.connected(u, v));
            }
            return;
        }
        scratch.endpoints.clear();
        scratch.endpoints.reserve(pairs.len() * 2);
        for &(u, v) in pairs {
            scratch.endpoints.push(u);
            scratch.endpoints.push(v);
        }
        scratch.endpoints.sort_unstable();
        scratch.endpoints.dedup();
        let n = scratch.endpoints.len();
        scratch.memo.clear();
        scratch.memo.resize(n, (0, 0));
        scratch.pending.clear();

        let hints = self.hints_enabled().then(|| self.hints());
        match hints {
            Some(cache) => self.validate_hints_batched(cache, scratch),
            None => scratch.pending.extend(0..n as u32),
        }
        self.climb_pending_interleaved(scratch, hints);

        let ReadScratch {
            endpoints, memo, ..
        } = scratch;
        let index = |x: u32| {
            endpoints
                .binary_search(&x)
                .expect("endpoint collected above")
        };
        for &(u, v) in pairs {
            if u == v {
                out.push(true);
                continue;
            }
            let (iu, iv) = (index(u), index(v));
            loop {
                let (ru, ver_u) = memo[iu];
                let (rv, ver_v) = memo[iv];
                // The same sandwich as `connected_resolve`, against the
                // full 64-bit versions the memo carries.
                let valid = if ru == rv {
                    ver_u == ver_v
                } else {
                    self.version_of_vertex(ru) == ver_u
                        && self.version_of_vertex(rv) == ver_v
                        && self.version_of_vertex(ru) == ver_u
                };
                if valid {
                    out.push(ru == rv);
                    break;
                }
                memo[iu] = self.resolve_root_validated(u);
                memo[iv] = self.resolve_root_validated(v);
            }
        }
    }

    /// Stage 1 of the interleaved engine: validates every endpoint's hint
    /// with slot lines prefetched `HINT_PREFETCH_BATCH` endpoints ahead and
    /// version lines prefetched as soon as each raw word decodes. Hits land
    /// in `scratch.memo`; misses join `scratch.pending` for the climb
    /// stage. Counters are recorded in bulk (one atomic add per outcome for
    /// the whole run).
    fn validate_hints_batched(&self, cache: &HintCache, scratch: &mut ReadScratch) {
        let n = scratch.endpoints.len();
        scratch.raws.clear();
        scratch.raws.resize(n, 0);
        for &e in &scratch.endpoints[..n.min(HINT_PREFETCH_BATCH)] {
            cache.prefetch_slot(e);
        }
        for i in 0..n {
            if let Some(&ahead) = scratch.endpoints.get(i + HINT_PREFETCH_BATCH) {
                cache.prefetch_slot(ahead);
            }
            let raw = cache.raw(scratch.endpoints[i]);
            scratch.raws[i] = raw;
            if let Some((root, _)) = HintCache::decode(raw) {
                self.prefetch_version(root);
            }
        }
        let mut hits = 0u64;
        for i in 0..n {
            match self.validate_hint(scratch.raws[i]) {
                Some(claim) => {
                    scratch.memo[i] = claim;
                    hits += 1;
                }
                None => scratch.pending.push(i as u32),
            }
        }
        cache.record_hits_n(hits);
        cache.record_misses_n(scratch.pending.len() as u64);
    }

    /// Stage 2 of the interleaved engine: resolves every pending endpoint by
    /// the double-walk protocol, `width` walks in flight at a time.
    ///
    /// Each group of up to `width` climbs shares one epoch pin — pins grow
    /// from walk-sized to group-sized, still bounded (`DESIGN.md` §10) —
    /// and every in-flight walk advances one parent hop per turn, issuing a
    /// prefetch for the hop after before yielding the turn. A walk that
    /// reaches a root records `(root, version)`; the claim validates when
    /// the *next* completed walk of the same climb reproduces it exactly
    /// (precisely the Listing-1 double-walk condition — by version
    /// monotonicity the word was constant between the two walk ends, so
    /// the second walk ran against an unchanged component). A climb that
    /// keeps failing validation under churn is bailed out at
    /// `INTERLEAVE_RETRY_CAP` restarts and finished by the scalar retry
    /// loop *after* the group's pin drops, so churn cannot stretch the pin
    /// unboundedly.
    fn climb_pending_interleaved(&self, scratch: &mut ReadScratch, hints: Option<&HintCache>) {
        if scratch.pending.is_empty() {
            return;
        }
        let width = self.interleave_width();
        let ReadScratch {
            endpoints,
            memo,
            raws,
            pending,
        } = scratch;
        let mut bailed = [0u32; MAX_INTERLEAVE_WIDTH];
        for group in pending.chunks(width) {
            let _span = dc_obs::span(dc_obs::SpanId::InterleavedClimbGroup);
            let mut states = [Climb {
                slot: 0,
                start: NodeRef::NONE,
                cur: NodeRef::NONE,
                first: None,
                retries: 0,
            }; MAX_INTERLEAVE_WIDTH];
            let mut bail_count = 0usize;
            {
                let _guard = self.arena.pin();
                for (state, &slot) in states.iter_mut().zip(group.iter()) {
                    let start = self.vertex_node_ref(endpoints[slot as usize]);
                    *state = Climb {
                        slot,
                        start,
                        cur: start,
                        first: None,
                        retries: 0,
                    };
                    self.prefetch_node(start);
                }
                // `states[..active]` are in flight; finished/bailed climbs
                // swap to the back. Round-robin one hop per live climb.
                let mut active = group.len();
                let mut i = 0;
                while active > 0 {
                    if i >= active {
                        i = 0;
                    }
                    let state = &mut states[i];
                    let parent = self.node(state.cur).parent();
                    if parent.is_some() {
                        state.cur = parent;
                        self.prefetch_node(parent);
                        i += 1;
                        continue;
                    }
                    // Walk complete: `cur` is a root right now.
                    let claim = (state.cur, self.root_version(state.cur));
                    let mut retire = false;
                    match state.first {
                        Some(first) if first == claim => {
                            // Two consecutive walks agree: validated.
                            let root = self.root_vertex(claim.0);
                            memo[state.slot as usize] = (root, claim.1);
                            if let Some(cache) = hints {
                                cache.install(
                                    endpoints[state.slot as usize],
                                    raws[state.slot as usize],
                                    root,
                                    claim.1,
                                );
                            }
                            retire = true;
                        }
                        Some(_) => {
                            // A writer moved the component between walks;
                            // this walk becomes the new first of the pair.
                            state.retries += 1;
                            if state.retries >= INTERLEAVE_RETRY_CAP {
                                bailed[bail_count] = state.slot;
                                bail_count += 1;
                                retire = true;
                            } else {
                                state.first = Some(claim);
                                state.cur = state.start;
                            }
                        }
                        None => {
                            state.first = Some(claim);
                            state.cur = state.start;
                        }
                    }
                    if retire {
                        states.swap(i, active - 1);
                        active -= 1;
                    } else {
                        i += 1;
                    }
                }
            }
            // Pin dropped: finish churn-bailed climbs with the scalar
            // protocol (re-pins per walk, retries unboundedly like
            // `connected` itself — the group above just refuses to hold
            // *its* pin that long).
            for &slot in &bailed[..bail_count] {
                memo[slot as usize] = self.resolve_root_validated(endpoints[slot as usize]);
            }
        }
    }

    /// Hints the CPU to pull `r`'s node into cache (no-op for `NONE`).
    /// Node addresses are stable for the arena's lifetime, so computing one
    /// is safe whether or not the node is still live — and a prefetch never
    /// reads architecturally (see `dc_sync::prefetch`).
    #[inline]
    fn prefetch_node(&self, r: NodeRef) {
        if r.is_some() {
            dc_sync::prefetch_read(self.node(r) as *const Node);
        }
    }

    /// Hints the CPU to pull `root`'s version word into cache.
    #[inline]
    fn prefetch_version(&self, root: u32) {
        if let Some(word) = self.versions.get(root as usize) {
            dc_sync::prefetch_read(word as *const AtomicU64);
        }
    }

    /// Enables or disables the interleaved bulk read engine (both settings
    /// answer identically; interleaving is strictly a latency optimization —
    /// disabled, bulk reads take the scalar memo path, the differential
    /// oracle).
    pub fn set_interleaved_reads(&self, enabled: bool) {
        self.interleaved.store(enabled, Ordering::Relaxed);
    }

    /// Whether bulk reads go through the interleaved engine.
    pub fn interleaved_reads_enabled(&self) -> bool {
        self.interleaved.load(Ordering::Relaxed)
    }

    /// Sets the interleaved engine's in-flight climb count, clamped to
    /// `1..=MAX_INTERLEAVE_WIDTH` (width 1 degenerates to sequential climbs
    /// with next-hop prefetch — a bench cell, not a useful production
    /// setting).
    pub fn set_interleave_width(&self, width: usize) {
        let clamped = width.clamp(1, MAX_INTERLEAVE_WIDTH) as u8;
        self.interleave_width.store(clamped, Ordering::Relaxed);
    }

    /// The interleaved engine's in-flight climb count.
    pub fn interleave_width(&self) -> usize {
        self.interleave_width.load(Ordering::Relaxed) as usize
    }

    // ----- hint-cache observability ----------------------------------------

    /// Read-path hint counters: `(hits, misses)`, counted per *endpoint
    /// resolution*. A hit resolved an endpoint's root purely from a
    /// validated hint; a miss fell back to the double-walk climb (and
    /// reinstalled the hint). A two-endpoint query contributes two counts.
    pub fn read_hint_stats(&self) -> (u64, u64) {
        match self.hints.get() {
            Some(hints) => (hints.hits(), hints.misses()),
            None => (0, 0),
        }
    }

    /// Enables or disables the root-hint fast path on this forest (both
    /// settings are correct; hints are strictly an accelerator).
    ///
    /// Allocation-free on a never-queried forest: the request is recorded
    /// as a pending override and applied when (if ever) the table
    /// materializes. Racing this with a concurrent first query can leave
    /// the cache on the old setting — harmless, since correctness never
    /// depends on the flag — so callers wanting a deterministic state set
    /// it before publishing the forest to readers (what the benches do).
    pub fn set_read_hints(&self, enabled: bool) {
        self.hints_override
            .store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
        if let Some(hints) = self.hints.get() {
            hints.set_enabled(enabled);
        }
    }

    /// Whether the root-hint fast path is enabled on this forest.
    pub fn read_hints_enabled(&self) -> bool {
        self.hints_enabled()
    }

    /// Whether this forest's hint table has been materialized (it happens
    /// on the first query; never-queried forests — HDT levels above 0 —
    /// stay table-free). Diagnostics and tests.
    pub fn hints_materialized(&self) -> bool {
        self.hints.get().is_some()
    }

    /// Diagnostics/tests: does `v` currently hold a hint that validates?
    pub fn hint_valid(&self, v: u32) -> bool {
        match self.hints.get().map(|h| HintCache::decode(h.raw(v))) {
            Some(Some((root, ver32))) => self.version_of_vertex(root) as u32 == ver32,
            _ => false,
        }
    }

    /// Root comparison for callers that already hold the locks covering both
    /// components (no retry protocol needed).
    pub fn same_tree_locked(&self, u: u32, v: u32) -> bool {
        self.writer_root(self.vertex_node_ref(u)) == self.writer_root(self.vertex_node_ref(v))
    }

    /// Writer-side component representative of vertex `v` (follows exact
    /// parent pointers, valid only under the component's lock).
    pub fn component_root(&self, v: u32) -> NodeRef {
        self.writer_root(self.vertex_node_ref(v))
    }

    /// Number of vertices in the tree rooted at `root`.
    pub fn tree_size(&self, root: NodeRef) -> u32 {
        self.node(root).size()
    }

    /// Number of vertices in the component containing `v` (writer-side).
    pub fn component_size(&self, v: u32) -> u32 {
        self.tree_size(self.component_root(v))
    }

    // ----- structural operations (single writer per component) -------------

    fn init_edge_node(&self, r: NodeRef, from: u32, to: u32, initial_parent: NodeRef) -> NodeRef {
        let node = self.arena.node(r);
        node.set_endpoints(from, to);
        // Edge nodes live in the lower priority band: they can never become a
        // component's treap root, so the common root of a merge is always the
        // pre-determined higher-priority old root (see `crate::node`).
        node.set_priority(self.next_priority());
        node.set_size(0);
        node.set_left(NodeRef::NONE);
        node.set_right(NodeRef::NONE);
        node.set_is_root(true);
        // Never expose a second sink: before the node is attached anywhere it
        // already points at the component representative.
        node.set_parent(initial_parent);
        r
    }

    /// Adds the spanning edge `(u, v)`, merging the two Euler tours.
    ///
    /// # Contract
    /// `u` and `v` must currently be in different trees, and the caller must
    /// hold whatever synchronization makes it the unique writer for both
    /// components.
    pub fn link(&self, u: u32, v: u32) {
        let e_a = self.arena.alloc();
        let e_b = self.arena.alloc();
        self.link_with_nodes(u, v, e_a, e_b);
    }

    /// Fallible [`EulerForest::link`]: the two tour edge nodes are reserved
    /// through [`crate::arena::Arena::try_alloc`] **before** any version
    /// bump or structural change, so arena exhaustion (real or
    /// chaos-injected) comes back as `Err(ArenaExhausted)` with the forest
    /// bit-for-bit untouched — the caller degrades the insert to a rejected
    /// operation instead of aborting (`DESIGN.md` §13).
    pub fn try_link(&self, u: u32, v: u32) -> Result<(), crate::arena::ArenaExhausted> {
        let e_a = self.arena.try_alloc()?;
        let e_b = match self.arena.try_alloc() {
            Ok(r) => r,
            Err(err) => {
                // Never published: straight back to the free list.
                self.arena.release_unpublished(e_a);
                return Err(err);
            }
        };
        self.link_with_nodes(u, v, e_a, e_b);
        Ok(())
    }

    /// The link body, with the two tour edge nodes already reserved
    /// (uninitialized) by the caller.
    fn link_with_nodes(&self, u: u32, v: u32, e_a: NodeRef, e_b: NodeRef) {
        debug_assert!(u != v, "self-loops cannot be spanning edges");
        let ru = self.component_root(u);
        let rv = self.component_root(v);
        assert_ne!(ru, rv, "link({u}, {v}): endpoints already in the same tree");

        // Update the root versions before any structural change (readers use
        // them to detect racing modifications).
        self.bump_root_version(ru);
        self.bump_root_version(rv);

        // The common root after the merge is the higher-priority old root.
        let (hi, lo) = if self.prio_key(ru) > self.prio_key(rv) {
            (ru, rv)
        } else {
            (rv, ru)
        };

        // Logical merge — the linearization point of the edge addition: from
        // here on every node of both trees reaches `hi`.
        self.node(lo).set_parent(hi);

        // `lo` stops being a representative at the store above, so bump it
        // *again*, after the store: a root-hint claim "(v, lo, version)"
        // installed by a reader inside the bump→store window was true when
        // installed, but nothing else would ever move `lo`'s version again
        // (future ops bump `hi`), so without this bump the claim would keep
        // validating — and keep answering stale `false`s — forever
        // (`DESIGN.md` §8; caught by
        // `forest_concurrent::readers_terminate_under_continuous_writes`).
        self.bump_root_version(lo);

        // Physical merge: rotate both tours to start at the edge endpoints
        // and concatenate them with the two new Euler-tour edge nodes.
        let tu = self.reroot(u);
        let tv = self.reroot(v);
        let e_uv = self.init_edge_node(e_a, u, v, hi);
        let e_vu = self.init_edge_node(e_b, v, u, hi);
        let (key_u, _key_v) = (norm(u, v).0, norm(u, v).1);
        let stored = if key_u == u {
            (e_uv, e_vu)
        } else {
            (e_vu, e_uv)
        };
        let prev = self.edge_nodes.insert(norm(u, v), stored);
        debug_assert!(prev.is_none(), "duplicate spanning edge ({u}, {v})");

        let t = self.merge_roots(tu, e_uv);
        let t = self.merge_roots(t, tv);
        let t = self.merge_roots(t, e_vu);
        debug_assert_eq!(
            t, hi,
            "merged tour root must be the higher-priority old root"
        );
    }

    /// Physically splits the tour of spanning edge `(u, v)` into the two
    /// would-be trees without logically disconnecting them.
    ///
    /// # Contract
    /// `(u, v)` must be a spanning edge and the caller must be the unique
    /// writer for its component.
    pub fn prepare_cut(&self, u: u32, v: u32) -> PreparedCut {
        let key = norm(u, v);
        let (fwd, bwd) = self
            .edge_nodes
            .remove(&key)
            .unwrap_or_else(|| panic!("cut({u}, {v}): not a spanning edge"));
        let old_root = self.writer_root(fwd);
        self.bump_root_version(old_root);

        // Split the tour around the two directed edge nodes. `fwd` is the
        // min->max node; it may appear before or after `bwd` in the tour.
        let (prefix, from_fwd) = self.split_before(fwd);
        let bwd_in_prefix = prefix.is_some() && self.piece_of(bwd, prefix, from_fwd) == prefix;

        let (t_outer, t_inner) = if bwd_in_prefix {
            // Tour = [A, bwd, M, fwd, C]: the subtree segment M lies between
            // `bwd` and `fwd`.
            let (_fwd_single, c) = self.split_after(fwd);
            let (a, _from_bwd) = self.split_before(bwd);
            let (_bwd_single, m) = self.split_after(bwd);
            debug_assert_eq!(_fwd_single, fwd);
            debug_assert_eq!(_bwd_single, bwd);
            (self.merge_roots(a, c), m)
        } else {
            // Tour = [A, fwd, M, bwd, C].
            let (_fwd_single, rest) = self.split_after(fwd);
            debug_assert_eq!(_fwd_single, fwd);
            let (m, _from_bwd) = self.split_before(bwd);
            let (_bwd_single, c) = self.split_after(bwd);
            debug_assert_eq!(_bwd_single, bwd);
            let _ = rest;
            (self.merge_roots(prefix, c), m)
        };

        debug_assert!(t_outer.is_some() && t_inner.is_some());
        let (retained_root, detached_root) = if t_outer == old_root {
            (t_outer, t_inner)
        } else {
            debug_assert_eq!(t_inner, old_root);
            (t_inner, t_outer)
        };
        PreparedCut {
            retained_root,
            detached_root,
            retained_size: self.node(retained_root).size(),
            detached_size: self.node(detached_root).size(),
            edge_nodes: (fwd, bwd),
        }
    }

    /// Logically applies a prepared cut: after this single store, readers
    /// observe two components. This is the linearization point of a spanning
    /// edge removal without replacement.
    ///
    /// Also retires the cut's two tour edge nodes: after the detached root's
    /// parent is cleared, no reachable parent pointer references them any
    /// more, so they only need to outlive the readers pinned right now.
    pub fn commit_cut(&self, cut: &PreparedCut) {
        // The detached root becomes a component representative; give it a
        // fresh version first so readers that race with the very next
        // modification of the new component still detect the change.
        self.bump_root_version(cut.detached_root);
        self.node(cut.detached_root).set_parent(NodeRef::NONE);
        // The retained root stops representing the detached piece at the
        // store above, so bump it *after* the store: root-hint claims
        // "(v, retained_root, version)" installed during the prepared
        // window (walks from the detached piece still ended at the retained
        // root — one logical component) were true when installed, but no
        // future operation of the detached component would ever move the
        // retained root's version, so without this bump they would keep
        // validating after the split and answer `connected` wrongly
        // (`DESIGN.md` §8; pinned by `crates/ett/tests/root_hints.rs`).
        self.bump_root_version(cut.retained_root);
        self.retire_cut_nodes(cut);
    }

    /// Retires a prepared cut's two tour edge nodes without committing the
    /// cut — the replacement-found path, where the two pieces have just been
    /// relinked by [`EulerForest::link`] (which overwrote the last stale
    /// parent pointer that could lead to them).
    ///
    /// Every [`PreparedCut`] must be finished with exactly one of
    /// [`EulerForest::commit_cut`] or this.
    pub fn retire_cut_nodes(&self, cut: &PreparedCut) {
        let (fwd, bwd) = cut.edge_nodes;
        self.arena.retire_pair(fwd, bwd);
    }

    /// Removes the spanning edge `(u, v)` and splits the tree
    /// (`prepare_cut` + `commit_cut`). Returns the prepared-cut description.
    pub fn cut(&self, u: u32, v: u32) -> PreparedCut {
        let cut = self.prepare_cut(u, v);
        self.commit_cut(&cut);
        cut
    }

    // ----- subtree marks (non-spanning / spanning edge summaries) ----------

    /// Sets the self-contribution of `mark` on vertex `v`'s node.
    pub fn set_vertex_self_mark(&self, v: u32, mark: Mark, value: bool) {
        self.node(self.vertex_node_ref(v))
            .set_self_mark(mark, value);
    }

    /// Reads the self-contribution of `mark` on vertex `v`'s node.
    pub fn vertex_self_mark(&self, v: u32, mark: Mark) -> bool {
        self.node(self.vertex_node_ref(v)).self_mark(mark)
    }

    /// Marks vertex `v` as having adjacent edges of kind `mark` and raises
    /// the aggregate flag on every node from `v` up to the current root
    /// (paper Listing 6, `set_flags_up`). Lock-free: may race with
    /// restructuring; the conservative direction (extra `true`s) is always
    /// safe and `recalculate_mark` repairs them under the lock.
    pub fn mark_path_upward(&self, v: u32, mark: Mark) {
        // The walk may cross stale parent pointers onto retired nodes
        // (conservative extra `true`s are harmless there); the pin keeps
        // those slots from being recycled mid-walk.
        let _guard = self.arena.pin();
        let start = self.vertex_node_ref(v);
        self.node(start).set_self_mark(mark, true);
        let mut cur = start;
        loop {
            let node = self.node(cur);
            node.set_agg_mark(mark, true);
            let parent = node.parent();
            if parent.is_none() {
                break;
            }
            cur = parent;
        }
    }

    fn should_have_mark(&self, r: NodeRef, mark: Mark) -> bool {
        let node = self.node(r);
        if node.self_mark(mark) {
            return true;
        }
        [node.left(), node.right()]
            .into_iter()
            .any(|c| c.is_some() && self.node(c).agg_mark(mark))
    }

    /// Recomputes the aggregate flag of `r` from its self-mark and children,
    /// with the re-check of paper Listing 6 / Lemma C.1 so a racing lock-free
    /// insertion is never lost. Must be called under the component's lock.
    pub fn recalculate_mark(&self, r: NodeRef, mark: Mark) {
        let should = self.should_have_mark(r, mark);
        self.node(r).set_agg_mark(mark, should);
        if !should && self.should_have_mark(r, mark) {
            // A concurrent insertion slipped in between the computation and
            // the store; restore the conservative value.
            self.node(r).set_agg_mark(mark, true);
        }
    }

    /// Reads the aggregate flag of `r`.
    pub fn subtree_has_mark(&self, r: NodeRef, mark: Mark) -> bool {
        self.node(r).agg_mark(mark)
    }

    // ----- traversal & validation helpers -----------------------------------

    /// Collects the vertices of the tree rooted at `root` in tour order
    /// (writer-side; used by tests and by level promotions).
    pub fn tree_vertices(&self, root: NodeRef) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_in_order(root, &mut |r| {
            if let Some(v) = self.node(r).vertex() {
                out.push(v);
            }
        });
        out
    }

    /// Visits every spanning edge currently in the forest, normalized
    /// (`u < v`), exactly once — the checkpoint serialization walker.
    ///
    /// Writer-side: the walk iterates the edge-node registry that `link` /
    /// `cut` maintain, so the caller must hold whatever synchronization
    /// stops structural mutation (for the durable checkpoint path, the
    /// batch engine's leader lock). Concurrent lock-free readers are fine.
    pub fn for_each_tree_edge(&self, mut f: impl FnMut(u32, u32)) {
        self.edge_nodes.for_each(|&(u, v), _| f(u, v));
    }

    /// Collects the full Euler tour (node endpoints) of the tree rooted at
    /// `root`, in order. Vertex nodes appear as `(v, v)`.
    pub fn tour(&self, root: NodeRef) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.for_each_in_order(root, &mut |r| out.push(self.node(r).endpoints()));
        out
    }

    /// Exhaustively validates the tree rooted at `root`: exact parent
    /// pointers, the treap heap property, subtree sizes, and Euler-tour
    /// well-formedness. Panics on violation. Intended for tests.
    pub fn validate_tree(&self, root: NodeRef) {
        assert!(self.node(root).is_root(), "root lacks is_root flag");
        let mut tour: Vec<NodeRef> = Vec::new();
        self.for_each_in_order(root, &mut |r| tour.push(r));
        // Structural invariants.
        let mut vertex_count = 0u32;
        for &r in &tour {
            let node = self.node(r);
            if node.vertex().is_some() {
                vertex_count += 1;
            }
            for child in [node.left(), node.right()] {
                if child.is_some() {
                    assert_eq!(
                        self.node(child).parent(),
                        r,
                        "child {child:?} of {r:?} has wrong parent"
                    );
                    assert!(
                        self.prio_key(child) < self.prio_key(r),
                        "heap property violated between {r:?} and {child:?}"
                    );
                }
            }
            let mut expect = u32::from(node.vertex().is_some());
            for child in [node.left(), node.right()] {
                if child.is_some() {
                    expect += self.node(child).size();
                }
            }
            assert_eq!(node.size(), expect, "subtree size of {r:?} is stale");
        }
        assert_eq!(self.node(root).size(), vertex_count, "root size mismatch");

        // Euler-tour well-formedness. Tours are *cyclic* sequences (any
        // rotation is a legal linearization), so the checks below are phrased
        // cyclically: every vertex appears exactly once, every tree edge
        // contributes exactly two oppositely-directed nodes, no two edges'
        // node pairs cross, and the vertices enclosed by an edge's pair are
        // exactly one side of the tree split by that edge.
        let mut seen = std::collections::HashSet::new();
        let mut edge_positions: std::collections::HashMap<(u32, u32), Vec<usize>> =
            std::collections::HashMap::new();
        let mut vertex_position: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for (i, &r) in tour.iter().enumerate() {
            let node = self.node(r);
            match node.vertex() {
                Some(v) => {
                    assert!(seen.insert(v), "vertex {v} appears twice in the tour");
                    vertex_position.insert(v, i);
                }
                None => {
                    let (a, b) = node.endpoints();
                    edge_positions.entry(norm(a, b)).or_default().push(i);
                }
            }
        }
        let edges: Vec<(u32, u32)> = edge_positions.keys().copied().collect();
        for (&edge, positions) in &edge_positions {
            assert_eq!(
                positions.len(),
                2,
                "tree edge {edge:?} must contribute exactly two tour nodes"
            );
            let (a, b) = (
                self.node(tour[positions[0]]).endpoints(),
                self.node(tour[positions[1]]).endpoints(),
            );
            assert_eq!(a, (b.1, b.0), "the two nodes of {edge:?} must be opposite");
        }
        // Non-crossing (cyclic nesting): for any two edges, the pair of one
        // must not interleave with the pair of the other.
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                let (e1, e2) = (&edge_positions[&edges[i]], &edge_positions[&edges[j]]);
                let inside = |x: usize| x > e1[0] && x < e1[1];
                assert_eq!(
                    inside(e2[0]),
                    inside(e2[1]),
                    "edge pairs {:?} and {:?} cross in the tour",
                    edges[i],
                    edges[j]
                );
            }
        }
        // Side correctness: vertices strictly between an edge's two nodes are
        // exactly one side of the tree with that edge removed.
        let mut adjacency: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for &(a, b) in &edges {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        for &(a, b) in &edges {
            let positions = &edge_positions[&(a, b)];
            let inside: std::collections::HashSet<u32> = vertex_position
                .iter()
                .filter(|&(_, &p)| p > positions[0] && p < positions[1])
                .map(|(&v, _)| v)
                .collect();
            // BFS one side of the tree without using edge (a, b).
            let start = if inside.contains(&a) { a } else { b };
            let mut side = std::collections::HashSet::new();
            let mut queue = std::collections::VecDeque::new();
            side.insert(start);
            queue.push_back(start);
            while let Some(x) = queue.pop_front() {
                for &y in adjacency.get(&x).into_iter().flatten() {
                    if (x == a && y == b) || (x == b && y == a) {
                        continue;
                    }
                    if side.insert(y) {
                        queue.push_back(y);
                    }
                }
            }
            assert_eq!(
                inside, side,
                "vertices enclosed by edge ({a}, {b}) do not form one side of the tree"
            );
        }
    }

    /// Validates every tree of the forest (writer-side, quiescent use only).
    pub fn validate(&self) {
        let mut seen_roots = std::collections::HashSet::new();
        for v in 0..self.vertex_nodes.len() as u32 {
            let root = self.component_root(v);
            if seen_roots.insert(root) {
                self.validate_tree(root);
            }
        }
    }
}

impl std::fmt::Debug for EulerForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EulerForest")
            .field("vertices", &self.num_vertices())
            .field("tree_edges", &self.edge_nodes.len())
            .finish()
    }
}
