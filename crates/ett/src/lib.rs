//! Single-writer, multi-reader concurrent Euler Tour Trees.
//!
//! This crate implements Section 3 of *"A Scalable Concurrent Algorithm for
//! Dynamic Connectivity"* (Fedorov, Koval, Alistarh — SPAA '21): an Euler
//! Tour Tree forest whose `connected` / `find_root` queries are lock-free and
//! linearizable while a single writer (per component) performs `link` and
//! `cut` operations.
//!
//! # Highlights
//!
//! * Structural operations are split into a **logical** part (a single store
//!   that acts as the linearization point) and a **physical** part (treap
//!   restructuring that never exposes out-of-thin-air components to readers).
//! * Roots carry **versions**; the triple re-check protocol of the paper's
//!   Listing 1 makes `connected(u, v)` linearizable even though the version
//!   may be one step ahead of the structure.
//! * Spanning-edge removals can be **prepared** (physically split) before
//!   being **committed** (logically split), which is what lets the dynamic
//!   connectivity layer search for a replacement edge without readers ever
//!   observing a transiently disconnected component.
//! * A per-vertex **root-hint cache** ([`hints`]) makes repeat queries on
//!   stable components O(1): a validated `(root, version)` snapshot answers
//!   `connected` with a handful of loads and no tree traversal, falling
//!   back to the climbing protocol (which refreshes the hint) whenever the
//!   component changed.
//!
//! # Example
//!
//! ```
//! use dc_ett::EulerForest;
//!
//! let forest = EulerForest::new(4);
//! assert!(!forest.connected(0, 3));
//! forest.link(0, 1);
//! forest.link(1, 2);
//! forest.link(2, 3);
//! assert!(forest.connected(0, 3));
//! forest.cut(1, 2);
//! assert!(!forest.connected(0, 3));
//! assert!(forest.connected(0, 1));
//! assert!(forest.connected(2, 3));
//! ```

pub mod arena;
pub mod forest;
pub mod hints;
pub mod lct;
pub mod node;
pub mod traits;
mod treap;

pub use arena::{ArenaExhausted, NodeRef};
pub use forest::{EulerForest, PreparedCut, ReadScratch, MAX_INTERLEAVE_WIDTH};
pub use hints::{default_read_hints, set_default_read_hints, HintCache};
pub use lct::{LctForest, PreparedLctCut};
pub use node::{Mark, Node};
pub use traits::DynamicForest;
