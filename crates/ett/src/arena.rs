//! A concurrent node arena with epoch-based slot recycling.
//!
//! The single-writer Euler Tour Tree stores its nodes in an arena and
//! addresses them with dense `u32` indices ([`NodeRef`]).  Readers traverse
//! parent pointers while writers restructure the trees, so the arena has to
//! satisfy two requirements that a plain `Vec<Node>` cannot:
//!
//! 1. **Stable addresses.** Growing the arena must never move existing nodes,
//!    because a concurrent reader may be dereferencing them at that very
//!    moment.  Nodes therefore live in fixed-size chunks that are allocated
//!    once and never reallocated; the chunk directory is a fixed array of
//!    `AtomicPtr`s.
//! 2. **No reuse while readers may still traverse a retired node.** The
//!    paper's implementation runs on the JVM and leans on garbage collection:
//!    a reader holding a stale reference keeps the node alive.  Early
//!    versions of this arena reproduced that by never recycling slots, which
//!    made a long-running churn workload grow memory linearly with the
//!    *operation count*.  The arena now reproduces the GC guarantee with
//!    **epoch-based reclamation** ([`dc_sync::epoch`]): readers pin the
//!    arena's epoch domain for the duration of a traversal, `cut` retires
//!    its two tour edge nodes into limbo, and a retired slot returns to the
//!    free list only after two grace periods — once no pinned reader can
//!    still hold a path to it.  Arena occupancy is therefore bounded by the
//!    peak *live* tour size (plus a small limbo buffer), not by history.
//!    The safety argument is laid out in `DESIGN.md` §4.
//!
//! Chunk memory is allocated **raw and uninitialized**; each slot is
//! initialized (or re-initialized, when recycled) by the single `alloc`
//! caller that receives its index, before the index is published.  This
//! keeps the loser of a chunk-installation race from paying for 16Ki
//! `Node::new_unlinked()` constructions that are immediately thrown away —
//! losing the race now costs one raw `dealloc`.
//!
//! Allocation is thread-safe (several writers operating on disjoint
//! components may allocate edge nodes concurrently in the fine-grained
//! variants).

use crate::node::Node;
use dc_sync::epoch::{EpochDomain, EpochGuard, Limbo};
use parking_lot::Mutex;
use std::alloc::Layout;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

/// Typed arena-capacity error: the allocation could not be satisfied
/// without exceeding the arena's slot budget (or a chaos schedule injected
/// that condition — see `dc_faults`). Callers surface this as a rejected
/// operation instead of aborting; see `DESIGN.md` §13.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaExhausted;

impl std::fmt::Display for ArenaExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "arena exhausted: node slot budget exceeded")
    }
}

impl std::error::Error for ArenaExhausted {}

/// Index of a node inside the arena. `NodeRef::NONE` is the null reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(pub u32);

impl NodeRef {
    /// The null node reference.
    pub const NONE: NodeRef = NodeRef(u32::MAX);

    /// Returns `true` if this is the null reference.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// Returns `true` if this is a real node reference.
    #[inline]
    pub fn is_some(self) -> bool {
        self != Self::NONE
    }

    /// Converts to `Option<NodeRef>`, mapping `NONE` to `None`.
    #[inline]
    pub fn some(self) -> Option<NodeRef> {
        if self.is_none() {
            None
        } else {
            Some(self)
        }
    }
}

impl std::fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "NodeRef(NONE)")
        } else {
            write!(f, "NodeRef({})", self.0)
        }
    }
}

/// Number of nodes per chunk (16 Ki nodes).
const CHUNK_BITS: u32 = 14;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_SIZE - 1;
/// Maximum number of chunks (allows up to ~268M nodes — sized for the
/// huge-graph bench tier, where a 50M-vertex forest with tens of millions
/// of spanning edges needs well over the previous ~67M-slot ceiling; the
/// directory itself is just `MAX_CHUNKS` atomic pointers, so the headroom
/// costs 128 KiB regardless of use).
const MAX_CHUNKS: usize = 16384;

fn chunk_layout() -> Layout {
    Layout::array::<Node>(CHUNK_SIZE).expect("chunk layout")
}

/// The chunked, epoch-recycling node arena. See the module documentation.
pub struct Arena {
    chunks: Box<[AtomicPtr<Node>]>,
    /// High-water mark: number of slots ever handed out by the bump path
    /// (every index below it is backed by chunk memory).
    len: AtomicU32,
    /// Recycled slot indices, ready for immediate reuse.
    free: Mutex<Vec<u32>>,
    /// Length of `free`, readable without the mutex: lets the alloc fast
    /// path skip the lock entirely while the free list is empty (e.g. the
    /// whole incremental workload), keeping bump allocation lock-free.
    free_count: AtomicU32,
    /// Retired slot indices waiting out their grace period.
    limbo: Limbo<u32>,
    /// The reclamation domain readers pin while traversing.
    domain: EpochDomain,
    /// Bump-path slot budget (`u32::MAX` = only the chunk directory
    /// bounds growth). A tiny limit is the test door for exercising the
    /// [`ArenaExhausted`] path without allocating 268M nodes.
    node_limit: AtomicU32,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        let chunks = (0..MAX_CHUNKS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arena {
            chunks,
            len: AtomicU32::new(0),
            free: Mutex::new(Vec::new()),
            free_count: AtomicU32::new(0),
            limbo: Limbo::new(),
            domain: EpochDomain::new(),
            node_limit: AtomicU32::new(u32::MAX),
        }
    }

    /// Caps the bump path at `limit` total slots (`None` removes the cap).
    /// Recycled slots stay allocatable — the cap bounds arena *growth*, so
    /// a capped arena keeps serving a churn workload whose live set fits.
    pub fn set_node_limit(&self, limit: Option<u32>) {
        self.node_limit
            .store(limit.unwrap_or(u32::MAX), Ordering::Relaxed);
    }

    /// Number of slots backed by arena memory (the high-water mark — the
    /// memory-footprint proxy tracked by the churn benchmark). Recycled
    /// slots stay counted; `free_len` / `retired_len` break the total down.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if no node has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of recycled slots currently available for reuse.
    pub fn free_len(&self) -> usize {
        self.free_count.load(Ordering::Relaxed) as usize
    }

    /// Number of retired slots still waiting out a grace period.
    pub fn retired_len(&self) -> usize {
        self.limbo.retired_len()
    }

    /// The arena's reclamation domain (observability for tests).
    pub fn domain(&self) -> &EpochDomain {
        &self.domain
    }

    /// Pins the calling thread: until the guard drops, no slot the thread
    /// can reach through (possibly stale) parent pointers is recycled.
    #[inline]
    pub fn pin(&self) -> EpochGuard<'_> {
        self.domain.pin()
    }

    fn chunk_ptr(&self, chunk_idx: usize) -> *mut Node {
        self.chunks[chunk_idx].load(Ordering::Acquire)
    }

    fn ensure_chunk(&self, chunk_idx: usize) -> *mut Node {
        assert!(
            chunk_idx < MAX_CHUNKS,
            "arena exhausted: more than {} nodes requested",
            MAX_CHUNKS * CHUNK_SIZE
        );
        let existing = self.chunk_ptr(chunk_idx);
        if !existing.is_null() {
            return existing;
        }
        // Allocate the chunk raw: slots are initialized one by one, each by
        // the unique `alloc` caller that receives the slot, so neither the
        // winner nor the loser of the installation race constructs 16Ki
        // nodes up front.
        // SAFETY: the layout is non-zero-sized; the memory is published
        // uninitialized but no slot is read before `alloc` initializes it.
        let ptr = unsafe { std::alloc::alloc(chunk_layout()) as *mut Node };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(chunk_layout());
        }
        match self.chunks[chunk_idx].compare_exchange(
            std::ptr::null_mut(),
            ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => ptr,
            Err(winner) => {
                // Another allocator won the race; free ours and use theirs.
                // SAFETY: `ptr` came from `std::alloc::alloc` with the same
                // layout above and was never published.
                unsafe { std::alloc::dealloc(ptr as *mut u8, chunk_layout()) };
                winner
            }
        }
    }

    /// Pointer to slot `idx`; the chunk must already exist.
    fn slot_ptr(&self, idx: u32) -> *mut Node {
        let chunk_idx = (idx >> CHUNK_BITS) as usize;
        let ptr = self.chunk_ptr(chunk_idx);
        assert!(!ptr.is_null(), "node chunk {chunk_idx} not allocated");
        // SAFETY: in-bounds offset within one chunk allocation.
        unsafe { ptr.add(idx as usize & CHUNK_MASK) }
    }

    /// Allocates a node slot — recycled if a grace period has freed one,
    /// fresh from the bump path otherwise — and returns its reference.
    ///
    /// The returned node is in the "unlinked" state (no parent, no children,
    /// zero priority); the caller initializes its fields before publishing
    /// the reference to other threads.
    pub fn alloc(&self) -> NodeRef {
        match self.try_alloc_capacity() {
            Ok(r) => r,
            Err(ArenaExhausted) => panic!(
                "arena exhausted: more than {} nodes requested",
                self.node_limit
                    .load(Ordering::Relaxed)
                    .min((MAX_CHUNKS * CHUNK_SIZE) as u32)
            ),
        }
    }

    /// Fallible allocation: [`Arena::alloc`] semantics, but capacity
    /// exhaustion (chunk directory full, or past a [`Arena::set_node_limit`]
    /// cap) comes back as a typed [`ArenaExhausted`] instead of a panic,
    /// and an installed `dc_faults` chaos schedule can inject that failure
    /// on its [`dc_faults::InjectionPoint::ArenaAlloc`] ordinals.
    ///
    /// Forest `try_link` doors allocate through this entry so an
    /// over-capacity insert degrades to a rejected operation; interior
    /// restructuring (which must not fail halfway) stays on the infallible
    /// [`Arena::alloc`], whose failure is handled by the engine's unwind
    /// boundary instead (`DESIGN.md` §13).
    pub fn try_alloc(&self) -> Result<NodeRef, ArenaExhausted> {
        if dc_faults::should_inject(dc_faults::InjectionPoint::ArenaAlloc) {
            return Err(ArenaExhausted);
        }
        self.try_alloc_capacity()
    }

    /// Capacity-checked allocation shared by [`Arena::alloc`] (which panics
    /// on `Err`) and [`Arena::try_alloc`] (which also consults chaos).
    fn try_alloc_capacity(&self) -> Result<NodeRef, ArenaExhausted> {
        // Fast path: a recycled slot (skips even the mutex while the free
        // list is empty, so bump allocation stays lock-free with respect to
        // other allocators).
        let idx = match self.pop_free() {
            Some(idx) => idx,
            None => match self.collect_for_alloc() {
                Some(idx) => idx,
                None => {
                    let limit = self.node_limit.load(Ordering::Relaxed);
                    let idx = self.len.fetch_add(1, Ordering::AcqRel);
                    if idx == u32::MAX || idx >= limit || (idx >> CHUNK_BITS) as usize >= MAX_CHUNKS
                    {
                        // Undo our own increment. Concurrent failers each
                        // undo exactly their own, so the counter conserves;
                        // a racing success may be rejected spuriously during
                        // the transient overshoot, which is safe (rejection
                        // is always a legal outcome at capacity).
                        self.len.fetch_sub(1, Ordering::AcqRel);
                        return Err(ArenaExhausted);
                    }
                    self.ensure_chunk((idx >> CHUNK_BITS) as usize);
                    idx
                }
            },
        };
        // (Re-)initialize the slot before handing it out. No other thread
        // holds this index: fresh indices are unpublished, and recycled ones
        // survived two grace periods since retirement.
        // SAFETY: the slot is backed by an existing chunk and unaliased.
        unsafe { std::ptr::write(self.slot_ptr(idx), Node::new_unlinked()) };
        Ok(NodeRef(idx))
    }

    /// Returns a slot obtained from [`Arena::try_alloc`] that was **never
    /// published** (no other thread ever saw its index) straight to the
    /// free list — no grace period needed. This is the cleanup door for a
    /// multi-node operation whose later allocation failed.
    pub fn release_unpublished(&self, r: NodeRef) {
        debug_assert!(r.is_some(), "released NodeRef::NONE");
        self.free.lock().push(r.0);
        self.free_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Slow path of [`Arena::alloc`]: tries to graduate retired slots whose
    /// grace period elapsed. A bin needs up to two epoch advances to come
    /// due, and an advance fails while any reader is still pinned one epoch
    /// behind — reader pins are walk-sized (microseconds), so a short,
    /// *bounded* retry loop recovers most transient failures instead of
    /// permanently growing the arena by a fresh slot. When the retries
    /// don't pan out (a reader preempted while pinned, or genuinely
    /// parked), the caller bump-allocates and moves on: trading a bounded
    /// sliver of arena growth for never blocking the writer on readers.
    fn collect_for_alloc(&self) -> Option<u32> {
        if self.limbo.retired_len() == 0 {
            return None;
        }
        for _ in 0..4 {
            self.drain_limbo_into_free();
            if let Some(idx) = self.pop_free() {
                return Some(idx);
            }
            if self.limbo.retired_len() == 0 {
                return None;
            }
            for _ in 0..32 {
                std::hint::spin_loop();
            }
        }
        None
    }

    /// Pops a recycled slot, maintaining the lock-free length mirror.
    fn pop_free(&self) -> Option<u32> {
        if self.free_count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let got = self.free.lock().pop();
        if got.is_some() {
            self.free_count.fetch_sub(1, Ordering::Relaxed);
        }
        got
    }

    /// Runs one collect with the free mutex held only for the final splice,
    /// not across the epoch advance and bin drain.
    fn drain_limbo_into_free(&self) -> usize {
        // Chaos: hold the epoch advance back, as if a pinned reader were
        // parked mid-walk — limbo keeps growing and allocation falls through
        // to the bump path, exactly the pattern the watchdog's epoch probe
        // and the capacity-rejection machinery must absorb.
        dc_faults::maybe_stall(dc_faults::InjectionPoint::EpochAdvanceDelay);
        let mut drained: Vec<u32> = Vec::new();
        self.limbo
            .try_collect(&self.domain, |idx| drained.push(idx));
        let n = drained.len();
        if n > 0 {
            self.free.lock().extend(drained);
            self.free_count.fetch_add(n as u32, Ordering::Relaxed);
        }
        dc_obs::counter_add(dc_obs::Counter::EpochCollects, 1);
        dc_obs::counter_add(dc_obs::Counter::EpochNodesReclaimed, n as u64);
        if dc_obs::metrics_enabled() || dc_obs::tracing_enabled() {
            let allocated = self.len.load(Ordering::Relaxed) as u64;
            let free = self.free_count.load(Ordering::Relaxed) as u64;
            let live = allocated.saturating_sub(free);
            dc_obs::gauge_set(dc_obs::Gauge::ArenaOccupancy, live);
            dc_obs::event(dc_obs::EventKind::EpochAdvance, n as u64, live);
        }
        n
    }

    /// Retires a slot: once every thread pinned early enough to still reach
    /// the node has unpinned, the slot returns to the free list.
    ///
    /// The caller must guarantee no *new* traversal can reach `r` (its index
    /// must no longer be stored in any reachable parent/child link), and
    /// must not retire the same reference twice.
    pub fn retire(&self, r: NodeRef) {
        debug_assert!(r.is_some(), "retired NodeRef::NONE");
        let retired = self.limbo.retire(&self.domain, r.0);
        self.maybe_collect_on_retire(retired);
    }

    /// [`Arena::retire`] for the pair a `cut` produces: one epoch read and
    /// one limbo lock instead of two of each.
    pub fn retire_pair(&self, a: NodeRef, b: NodeRef) {
        debug_assert!(a.is_some() && b.is_some(), "retired NodeRef::NONE");
        let retired = self.limbo.retire_pair(&self.domain, a.0, b.0);
        self.maybe_collect_on_retire(retired);
    }

    /// Opportunistic, amortized collection: attempting an epoch advance on
    /// roughly every 64th retired slot keeps the free list stocked ahead of
    /// demand, so `alloc` rarely faces an empty list during the short
    /// window in which a concurrent reader blocks an advance — the case
    /// that would force permanent arena growth.
    /// `retired` is the post-retire counter value returned by the limbo
    /// (not a re-read, which could race past the trigger residues under
    /// concurrent retirers); `< 2` catches both parities of `retire_pair`.
    #[inline]
    fn maybe_collect_on_retire(&self, retired: usize) {
        if retired & 63 < 2 {
            self.drain_limbo_into_free();
        }
    }

    /// Returns a shared reference to the node at `r`.
    ///
    /// # Panics
    /// Panics if `r` is `NONE` or out of bounds.
    #[inline]
    pub fn node(&self, r: NodeRef) -> &Node {
        assert!(r.is_some(), "dereferenced NodeRef::NONE");
        let idx = r.0 as usize;
        debug_assert!(idx < self.len(), "node index {idx} out of bounds");
        let chunk_idx = idx >> CHUNK_BITS;
        let ptr = self.chunk_ptr(chunk_idx);
        assert!(!ptr.is_null(), "node chunk {chunk_idx} not allocated");
        // SAFETY: chunks are never freed or moved while the arena is alive,
        // every slot below `len` was initialized by the `alloc` that first
        // handed it out, and `Node` only contains atomics, so shared access
        // from any thread is sound.
        unsafe { &*ptr.add(idx & CHUNK_MASK) }
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for chunk in self.chunks.iter() {
            let ptr = chunk.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: the pointer was produced by `std::alloc::alloc`
                // with this layout in `ensure_chunk`; `Node` needs no drop
                // (checked by a const assertion in `crate::node`), so a raw
                // dealloc suffices even for never-initialized slots.
                unsafe { std::alloc::dealloc(ptr as *mut u8, chunk_layout()) };
            }
        }
    }
}

// SAFETY: all shared state is accessed through atomics, mutexes or `Node`'s
// interior-mutable fields.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noderef_none_behaviour() {
        assert!(NodeRef::NONE.is_none());
        assert!(!NodeRef::NONE.is_some());
        assert_eq!(NodeRef::NONE.some(), None);
        assert_eq!(NodeRef(3).some(), Some(NodeRef(3)));
    }

    #[test]
    fn alloc_returns_dense_indices() {
        let arena = Arena::new();
        assert!(arena.is_empty());
        let a = arena.alloc();
        let b = arena.alloc();
        let c = arena.alloc();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn nodes_are_distinct_and_addressable() {
        let arena = Arena::new();
        let refs: Vec<NodeRef> = (0..100).map(|_| arena.alloc()).collect();
        for (i, &r) in refs.iter().enumerate() {
            arena.node(r).set_priority(i as u32);
        }
        for (i, &r) in refs.iter().enumerate() {
            assert_eq!(arena.node(r).priority(), i as u32);
        }
    }

    #[test]
    fn allocation_crosses_chunk_boundary() {
        let arena = Arena::new();
        let count = CHUNK_SIZE + 10;
        let refs: Vec<NodeRef> = (0..count).map(|_| arena.alloc()).collect();
        assert_eq!(arena.len(), count);
        // Touch the first and last to make sure both chunks are live.
        arena.node(refs[0]).set_priority(7);
        arena.node(refs[count - 1]).set_priority(9);
        assert_eq!(arena.node(refs[0]).priority(), 7);
        assert_eq!(arena.node(refs[count - 1]).priority(), 9);
    }

    #[test]
    #[should_panic]
    fn dereferencing_none_panics() {
        let arena = Arena::new();
        let _ = arena.node(NodeRef::NONE);
    }

    #[test]
    fn retired_slots_are_recycled_after_grace_periods() {
        let arena = Arena::new();
        let refs: Vec<NodeRef> = (0..8).map(|_| arena.alloc()).collect();
        for &r in &refs[..4] {
            arena.retire(r);
        }
        assert_eq!(arena.retired_len(), 4);
        // With no pinned readers, allocations graduate the retired slots
        // (each alloc can advance the epoch once; two advances complete the
        // grace period) instead of growing the arena.
        let mut reused = Vec::new();
        for _ in 0..4 {
            reused.push(arena.alloc().0);
        }
        let high_water = arena.len();
        assert!(
            reused
                .iter()
                .any(|idx| refs[..4].iter().any(|r| r.0 == *idx)),
            "no retired slot was recycled: {reused:?}"
        );
        assert!(high_water <= 12, "arena grew past the un-recycled bound");
    }

    #[test]
    fn pinned_reader_blocks_recycling() {
        let arena = Arena::new();
        let r = arena.alloc();
        let guard = arena.pin();
        arena.retire(r);
        for _ in 0..8 {
            let fresh = arena.alloc();
            assert_ne!(fresh, r, "slot recycled under an active pin");
        }
        drop(guard);
        let mut saw_reuse = false;
        for _ in 0..8 {
            if arena.alloc() == r {
                saw_reuse = true;
                break;
            }
        }
        assert!(saw_reuse, "slot never recycled after the pin dropped");
    }

    #[test]
    fn recycled_slots_come_back_unlinked() {
        let arena = Arena::new();
        let r = arena.alloc();
        let node = arena.node(r);
        node.set_endpoints(3, 9);
        node.set_priority(17);
        node.set_parent(NodeRef(0));
        node.set_is_root(true);
        node.set_agg_mark(crate::node::Mark::Spanning, true);
        arena.retire(r);
        loop {
            let fresh = arena.alloc();
            if fresh == r {
                break;
            }
        }
        let node = arena.node(r);
        assert!(node.parent().is_none());
        assert_eq!(node.priority(), 0);
        assert_eq!(node.vertex(), None);
        assert!(!node.is_root());
        assert!(!node.agg_mark(crate::node::Mark::Spanning));
    }

    #[test]
    fn concurrent_allocation_yields_unique_slots() {
        let arena = Arc::new(Arena::new());
        let threads = 4;
        let per_thread = 5000;
        let mut all: Vec<u32> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let arena = Arc::clone(&arena);
                    s.spawn(move || (0..per_thread).map(|_| arena.alloc().0).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per_thread);
        assert_eq!(arena.len(), threads * per_thread);
    }

    #[test]
    fn tiny_arena_exhaustion_is_typed_and_survivable() {
        let arena = Arena::new();
        arena.set_node_limit(Some(2));
        let a = arena.try_alloc().expect("slot 0");
        let b = arena.try_alloc().expect("slot 1");
        // The cap binds: growth is rejected with the typed error, repeatedly
        // and without damaging the arena.
        assert_eq!(arena.try_alloc(), Err(ArenaExhausted));
        assert_eq!(arena.try_alloc(), Err(ArenaExhausted));
        assert_eq!(arena.len(), 2);
        // Existing slots still work.
        arena.node(a).set_priority(5);
        assert_eq!(arena.node(a).priority(), 5);
        // Recycling still works at the cap: a retired slot graduates and is
        // allocatable again even though the bump path is closed.
        arena.retire(b);
        let mut recycled = None;
        for _ in 0..8 {
            if let Ok(r) = arena.try_alloc() {
                recycled = Some(r);
                break;
            }
        }
        assert_eq!(recycled, Some(b), "capped arena failed to recycle");
        // Lifting the cap restores growth.
        arena.set_node_limit(None);
        assert!(arena.try_alloc().is_ok());
    }

    #[test]
    fn release_unpublished_returns_the_slot_immediately() {
        let arena = Arena::new();
        let a = arena.try_alloc().unwrap();
        arena.release_unpublished(a);
        assert_eq!(arena.free_len(), 1);
        // The very next allocation reuses it — no grace period.
        assert_eq!(arena.try_alloc().unwrap(), a);
    }

    #[test]
    fn chaos_schedule_injects_try_alloc_failures_but_not_alloc() {
        let _g = dc_faults::test_guard();
        let schedule = std::sync::Arc::new(dc_faults::ChaosSchedule::from_config(
            dc_faults::ChaosConfig {
                seed: 11,
                horizon: 1,
                // Only the ArenaAlloc point, firing at ordinal 0.
                faults_per_point: [0, 0, 1, 0, 0],
                stall: std::time::Duration::from_micros(1),
            },
        ));
        dc_faults::install(schedule.clone());
        let arena = Arena::new();
        assert_eq!(arena.try_alloc(), Err(ArenaExhausted));
        assert!(arena.try_alloc().is_ok(), "only ordinal 0 should fire");
        // The infallible path never consults the schedule.
        let _ = arena.alloc();
        dc_faults::uninstall();
        assert_eq!(
            schedule.fired(dc_faults::InjectionPoint::ArenaAlloc),
            1,
            "alloc() must not consume chaos ordinals"
        );
        assert_eq!(schedule.checks(dc_faults::InjectionPoint::ArenaAlloc), 2);
    }

    #[test]
    fn concurrent_churn_stays_bounded() {
        // Writers alternately allocate and retire while readers pin/unpin;
        // the high-water mark must stay near the live count, far below the
        // total allocation count.
        let arena = Arc::new(Arena::new());
        let writers = 2;
        let rounds = 4000;
        std::thread::scope(|s| {
            for _ in 0..writers {
                let arena = Arc::clone(&arena);
                s.spawn(move || {
                    for _ in 0..rounds {
                        let r = arena.alloc();
                        arena.retire(r);
                    }
                });
            }
            for _ in 0..2 {
                let arena = Arc::clone(&arena);
                s.spawn(move || {
                    for _ in 0..rounds {
                        let _g = arena.pin();
                    }
                });
            }
        });
        let total = writers * rounds;
        assert!(
            arena.len() < total / 4,
            "arena grew to {} slots for {} transient allocations",
            arena.len(),
            total
        );
    }
}
