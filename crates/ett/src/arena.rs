//! A concurrent, append-only node arena.
//!
//! The single-writer Euler Tour Tree stores its nodes in an arena and
//! addresses them with dense `u32` indices ([`NodeRef`]).  Readers traverse
//! parent pointers while writers restructure the trees, so the arena has to
//! satisfy two requirements that a plain `Vec<Node>` cannot:
//!
//! 1. **Stable addresses.** Growing the arena must never move existing nodes,
//!    because a concurrent reader may be dereferencing them at that very
//!    moment.  Nodes therefore live in fixed-size chunks that are allocated
//!    once and never reallocated; the chunk directory is a fixed array of
//!    `AtomicPtr`s.
//! 2. **No reuse while readers may still traverse a retired node.** The
//!    paper's implementation runs on the JVM and leans on garbage collection:
//!    a reader holding a stale reference keeps the node alive.  This arena
//!    reproduces that guarantee by simply never recycling slots — a retired
//!    Euler-tour edge node stays allocated (and safe to read) until the whole
//!    forest is dropped.  See `DESIGN.md` §4 for the substitution rationale.
//!
//! Allocation is thread-safe (several writers operating on disjoint
//! components may allocate edge nodes concurrently in the fine-grained
//! variants).

use crate::node::Node;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

/// Index of a node inside the arena. `NodeRef::NONE` is the null reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(pub u32);

impl NodeRef {
    /// The null node reference.
    pub const NONE: NodeRef = NodeRef(u32::MAX);

    /// Returns `true` if this is the null reference.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// Returns `true` if this is a real node reference.
    #[inline]
    pub fn is_some(self) -> bool {
        self != Self::NONE
    }

    /// Converts to `Option<NodeRef>`, mapping `NONE` to `None`.
    #[inline]
    pub fn some(self) -> Option<NodeRef> {
        if self.is_none() {
            None
        } else {
            Some(self)
        }
    }
}

impl std::fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "NodeRef(NONE)")
        } else {
            write!(f, "NodeRef({})", self.0)
        }
    }
}

/// Number of nodes per chunk (16 Ki nodes).
const CHUNK_BITS: u32 = 14;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_SIZE - 1;
/// Maximum number of chunks (allows up to ~67M nodes).
const MAX_CHUNKS: usize = 4096;

/// The chunked node arena. See the module documentation.
pub struct Arena {
    chunks: Box<[AtomicPtr<Node>]>,
    len: AtomicU32,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        let chunks = (0..MAX_CHUNKS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arena {
            chunks,
            len: AtomicU32::new(0),
        }
    }

    /// Number of nodes allocated so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if no node has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn chunk_ptr(&self, chunk_idx: usize) -> *mut Node {
        self.chunks[chunk_idx].load(Ordering::Acquire)
    }

    fn ensure_chunk(&self, chunk_idx: usize) -> *mut Node {
        assert!(
            chunk_idx < MAX_CHUNKS,
            "arena exhausted: more than {} nodes requested",
            MAX_CHUNKS * CHUNK_SIZE
        );
        let existing = self.chunk_ptr(chunk_idx);
        if !existing.is_null() {
            return existing;
        }
        // Allocate a chunk of default-initialized nodes and try to install it.
        let mut fresh: Vec<Node> = Vec::with_capacity(CHUNK_SIZE);
        fresh.resize_with(CHUNK_SIZE, Node::new_unlinked);
        let boxed: Box<[Node]> = fresh.into_boxed_slice();
        let ptr = Box::into_raw(boxed) as *mut Node;
        match self.chunks[chunk_idx].compare_exchange(
            std::ptr::null_mut(),
            ptr,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => ptr,
            Err(winner) => {
                // Another allocator won the race; free ours and use theirs.
                // SAFETY: `ptr` came from `Box::into_raw` of a `CHUNK_SIZE`
                // slice above and was never published.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        ptr, CHUNK_SIZE,
                    )));
                }
                winner
            }
        }
    }

    /// Allocates a fresh node slot and returns its reference.
    ///
    /// The returned node is in the "unlinked" state (no parent, no children,
    /// zero priority); the caller initializes its fields before publishing
    /// the reference to other threads.
    pub fn alloc(&self) -> NodeRef {
        let idx = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(idx != u32::MAX, "arena index space exhausted");
        let chunk_idx = (idx >> CHUNK_BITS) as usize;
        // Make sure the chunk that holds `idx` exists. Another thread may be
        // allocating it right now; `ensure_chunk` handles the race.
        self.ensure_chunk(chunk_idx);
        NodeRef(idx)
    }

    /// Returns a shared reference to the node at `r`.
    ///
    /// # Panics
    /// Panics if `r` is `NONE` or out of bounds.
    #[inline]
    pub fn node(&self, r: NodeRef) -> &Node {
        assert!(r.is_some(), "dereferenced NodeRef::NONE");
        let idx = r.0 as usize;
        debug_assert!(idx < self.len(), "node index {idx} out of bounds");
        let chunk_idx = idx >> CHUNK_BITS;
        let ptr = self.chunk_ptr(chunk_idx);
        assert!(!ptr.is_null(), "node chunk {chunk_idx} not allocated");
        // SAFETY: chunks are never freed or moved while the arena is alive,
        // every slot below `len` has been default-initialized by
        // `ensure_chunk`, and `Node` only contains atomics / interior-mutable
        // fields, so shared access from any thread is sound.
        unsafe { &*ptr.add(idx & CHUNK_MASK) }
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for chunk in self.chunks.iter() {
            let ptr = chunk.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: the pointer was produced by `Box::into_raw` of a
                // `CHUNK_SIZE` boxed slice in `ensure_chunk`.
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        ptr, CHUNK_SIZE,
                    )));
                }
            }
        }
    }
}

// SAFETY: all shared state is accessed through atomics or `Node`'s
// interior-mutable fields.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn noderef_none_behaviour() {
        assert!(NodeRef::NONE.is_none());
        assert!(!NodeRef::NONE.is_some());
        assert_eq!(NodeRef::NONE.some(), None);
        assert_eq!(NodeRef(3).some(), Some(NodeRef(3)));
    }

    #[test]
    fn alloc_returns_dense_indices() {
        let arena = Arena::new();
        assert!(arena.is_empty());
        let a = arena.alloc();
        let b = arena.alloc();
        let c = arena.alloc();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn nodes_are_distinct_and_addressable() {
        let arena = Arena::new();
        let refs: Vec<NodeRef> = (0..100).map(|_| arena.alloc()).collect();
        for (i, &r) in refs.iter().enumerate() {
            arena.node(r).set_priority(i as u64);
        }
        for (i, &r) in refs.iter().enumerate() {
            assert_eq!(arena.node(r).priority(), i as u64);
        }
    }

    #[test]
    fn allocation_crosses_chunk_boundary() {
        let arena = Arena::new();
        let count = CHUNK_SIZE + 10;
        let refs: Vec<NodeRef> = (0..count).map(|_| arena.alloc()).collect();
        assert_eq!(arena.len(), count);
        // Touch the first and last to make sure both chunks are live.
        arena.node(refs[0]).set_priority(7);
        arena.node(refs[count - 1]).set_priority(9);
        assert_eq!(arena.node(refs[0]).priority(), 7);
        assert_eq!(arena.node(refs[count - 1]).priority(), 9);
    }

    #[test]
    #[should_panic]
    fn dereferencing_none_panics() {
        let arena = Arena::new();
        let _ = arena.node(NodeRef::NONE);
    }

    #[test]
    fn concurrent_allocation_yields_unique_slots() {
        let arena = Arc::new(Arena::new());
        let threads = 4;
        let per_thread = 5000;
        let mut all: Vec<u32> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let arena = Arc::clone(&arena);
                    s.spawn(move || (0..per_thread).map(|_| arena.alloc().0).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per_thread);
        assert_eq!(arena.len(), threads * per_thread);
    }
}
