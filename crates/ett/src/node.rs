//! The Euler Tour Tree node — the hot, cache-compact core.
//!
//! Nodes form a Cartesian tree (treap) over the Euler tour of each spanning
//! tree.  The struct is kept to **32 bytes** (two nodes per cache line) by
//! storing only what the treap hot paths touch:
//!
//! * the `parent` link concurrent readers follow (Release stores / Acquire
//!   loads — see the memory-model note below);
//! * children, subtree size and endpoints, only ever touched by the
//!   component's unique writer (relaxed atomics keep the node `Sync`
//!   without an `UnsafeCell`);
//! * a 32-bit immutable-after-init heap priority;
//! * one packed flags byte holding the writer-side `is_root` bit and the
//!   four subtree-mark bits, maintained with `fetch_or`/`fetch_and` so the
//!   lock-free mark-raising path never loses a concurrent writer's bit.
//!
//! Everything a node does *not* need per-instance lives in side tables in
//! [`crate::forest::EulerForest`], indexed by vertex id: the per-component
//! root **version** and the per-component **lock** are meaningful only on
//! treap roots, and the priority-band invariant (below) makes every root a
//! vertex node — so 2n + 2m nodes carry neither an 8-byte version nor a
//! lock word.
//!
//! Vertex nodes are permanent; Euler-tour *edge* nodes are created on
//! `link`, retired on `cut`, and their slots recycled once an epoch grace
//! period guarantees no in-flight reader can still traverse them (see
//! [`crate::arena`] and `DESIGN.md` §4).
//!
//! Priorities live in two disjoint bands: vertex nodes draw from the upper
//! half of the `u32` range and edge nodes from the lower half.  This
//! guarantees that the treap root of any Euler tour is always a vertex node,
//! which in turn guarantees the invariants the single-writer protocol relies
//! on: the node that represents a component (its treap root) can never be a
//! node that a `cut` is about to retire, and the pre-determined common root
//! of a `link` is always the higher-priority old root (paper, Section 3,
//! "Atomic Merge and Split").
//!
//! # Memory-model note
//!
//! The seed implementation used `SeqCst` for every reader-visible field.
//! The proof only needs:
//!
//! * **root versions totally ordered** — they stay `SeqCst`, in the
//!   forest's side table;
//! * **node initialization visible before the node is reachable** — a node
//!   becomes reachable for readers only as the value of some *other* node's
//!   parent pointer; the Release store publishing that pointer makes all
//!   program-order-earlier initialization writes visible to the Acquire
//!   load that discovered it.
//!
//! Upward walks therefore only need Acquire/Release on `parent`; on x86
//! this turns the hottest store in `link`/`cut` restructuring from an
//! `xchg` into a plain `mov`.

use crate::arena::NodeRef;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// Which subtree-summary flag to address (paper Listing 5: the
/// `has_non_spanning_edges` / `has_spanning_edges` pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mark {
    /// "Some vertex in this subtree has adjacent non-spanning edges at this
    /// level."
    NonSpanning = 0,
    /// "Some vertex in this subtree has adjacent spanning edges of exactly
    /// this level."
    Spanning = 1,
}

/// Writer-side "this node is currently a treap root" flag.
const F_IS_ROOT: u8 = 1 << 0;
/// Self-contribution mark bits (`1 << (SELF_SHIFT + mark)`).
const SELF_SHIFT: u8 = 1;
/// Subtree-aggregate mark bits (`1 << (AGG_SHIFT + mark)`).
const AGG_SHIFT: u8 = 3;

/// A treap node; see the module documentation.
pub struct Node {
    /// Parent link followed by concurrent readers (Release/Acquire).
    parent: AtomicU32,
    /// Left / right children (writer-only).
    left: AtomicU32,
    right: AtomicU32,
    /// Number of *vertex* nodes in this subtree (writer-only).
    size: AtomicU32,
    /// Graph endpoints: for a vertex node `a == b == v`; for the Euler-tour
    /// node of directed edge `u -> v`, `a == u`, `b == v`.
    a: AtomicU32,
    b: AtomicU32,
    /// Immutable-after-init heap priority (banded, see module docs).
    priority: AtomicU32,
    /// Packed `is_root` + self-mark + aggregate-mark bits. Updated with
    /// atomic RMWs: the lock-free mark-raising path may race with the
    /// writer's structural bookkeeping on the same byte.
    flags: AtomicU8,
}

/// The whole point of the hot/cold split: two nodes per cache line.
const _: () = assert!(std::mem::size_of::<Node>() == 32);
/// The arena reclaims slots by overwrite + raw dealloc; nothing to drop.
const _: () = assert!(!std::mem::needs_drop::<Node>());

impl Node {
    /// Creates a fully unlinked node (used by the arena to initialize a
    /// slot when it is first handed out or recycled).
    pub fn new_unlinked() -> Self {
        Node {
            parent: AtomicU32::new(NodeRef::NONE.0),
            left: AtomicU32::new(NodeRef::NONE.0),
            right: AtomicU32::new(NodeRef::NONE.0),
            size: AtomicU32::new(0),
            a: AtomicU32::new(u32::MAX),
            b: AtomicU32::new(u32::MAX),
            priority: AtomicU32::new(0),
            flags: AtomicU8::new(0),
        }
    }

    // ----- reader-visible fields -------------------------------------------

    /// Reads the parent link (used by concurrent readers).
    #[inline]
    pub fn parent(&self) -> NodeRef {
        NodeRef(self.parent.load(Ordering::Acquire))
    }

    /// Writes the parent link (writer only).
    #[inline]
    pub fn set_parent(&self, p: NodeRef) {
        self.parent.store(p.0, Ordering::Release);
    }

    // ----- writer-only structural fields -----------------------------------

    /// Left child.
    #[inline]
    pub fn left(&self) -> NodeRef {
        NodeRef(self.left.load(Ordering::Relaxed))
    }

    /// Right child.
    #[inline]
    pub fn right(&self) -> NodeRef {
        NodeRef(self.right.load(Ordering::Relaxed))
    }

    /// Sets the left child.
    #[inline]
    pub fn set_left(&self, c: NodeRef) {
        self.left.store(c.0, Ordering::Relaxed);
    }

    /// Sets the right child.
    #[inline]
    pub fn set_right(&self, c: NodeRef) {
        self.right.store(c.0, Ordering::Relaxed);
    }

    /// Heap priority.
    #[inline]
    pub fn priority(&self) -> u32 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Sets the priority (initialization only).
    #[inline]
    pub fn set_priority(&self, p: u32) {
        self.priority.store(p, Ordering::Relaxed);
    }

    /// Number of vertex nodes in this subtree.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size.load(Ordering::Relaxed)
    }

    /// Sets the subtree vertex count.
    #[inline]
    pub fn set_size(&self, s: u32) {
        self.size.store(s, Ordering::Relaxed);
    }

    /// The stored endpoints `(a, b)`.
    #[inline]
    pub fn endpoints(&self) -> (u32, u32) {
        (
            self.a.load(Ordering::Relaxed),
            self.b.load(Ordering::Relaxed),
        )
    }

    /// Initializes the stored endpoints.
    #[inline]
    pub fn set_endpoints(&self, a: u32, b: u32) {
        self.a.store(a, Ordering::Relaxed);
        self.b.store(b, Ordering::Relaxed);
    }

    /// If this is a vertex node, returns its vertex id.
    #[inline]
    pub fn vertex(&self) -> Option<u32> {
        let (a, b) = self.endpoints();
        if a == b && a != u32::MAX {
            Some(a)
        } else {
            None
        }
    }

    /// Returns `true` if this node represents a directed Euler-tour edge.
    #[inline]
    pub fn is_edge_node(&self) -> bool {
        let (a, b) = self.endpoints();
        a != b
    }

    // ----- packed flags -----------------------------------------------------

    #[inline]
    fn flag(&self, bit: u8) -> bool {
        self.flags.load(Ordering::Relaxed) & bit != 0
    }

    #[inline]
    fn set_flag(&self, bit: u8, v: bool) {
        // RMW, not load/store: a concurrent `mark_path_upward` may be
        // raising a different bit of the same byte.
        if v {
            self.flags.fetch_or(bit, Ordering::Relaxed);
        } else {
            self.flags.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    /// Writer-side root flag.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.flag(F_IS_ROOT)
    }

    /// Sets the writer-side root flag.
    #[inline]
    pub fn set_is_root(&self, v: bool) {
        self.set_flag(F_IS_ROOT, v);
    }

    // ----- subtree marks ----------------------------------------------------

    /// Reads the self-contribution of `mark` ("this vertex has adjacent
    /// edges of the relevant kind").
    #[inline]
    pub fn self_mark(&self, mark: Mark) -> bool {
        self.flag(1 << (SELF_SHIFT + mark as u8))
    }

    /// Sets the self-contribution of `mark`.
    #[inline]
    pub fn set_self_mark(&self, mark: Mark, v: bool) {
        self.set_flag(1 << (SELF_SHIFT + mark as u8), v);
    }

    /// Reads the subtree aggregate of `mark`.
    #[inline]
    pub fn agg_mark(&self, mark: Mark) -> bool {
        self.flag(1 << (AGG_SHIFT + mark as u8))
    }

    /// Sets the subtree aggregate of `mark`.
    #[inline]
    pub fn set_agg_mark(&self, mark: Mark, v: bool) {
        self.set_flag(1 << (AGG_SHIFT + mark as u8), v);
    }

    /// Both aggregate-mark bits as a raw mask (merge fast path: lets one
    /// flags load carry the whole "does this subtree contain anything
    /// marked" answer).
    #[inline]
    pub(crate) fn agg_mark_bits(&self) -> u8 {
        self.flags.load(Ordering::Relaxed) & (0b11 << AGG_SHIFT)
    }

    /// Raises the given aggregate-mark bits (a mask from
    /// [`Node::agg_mark_bits`]); skips the RMW when nothing would change.
    #[inline]
    pub(crate) fn raise_agg_mark_bits(&self, bits: u8) {
        if bits != 0 && self.flags.load(Ordering::Relaxed) & bits != bits {
            self.flags.fetch_or(bits, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_cache_compact() {
        assert_eq!(std::mem::size_of::<Node>(), 32);
    }

    #[test]
    fn unlinked_node_defaults() {
        let n = Node::new_unlinked();
        assert!(n.parent().is_none());
        assert!(n.left().is_none());
        assert!(n.right().is_none());
        assert_eq!(n.size(), 0);
        assert!(!n.is_root());
        assert_eq!(n.vertex(), None);
        assert!(!n.is_edge_node());
        assert!(!n.self_mark(Mark::NonSpanning));
        assert!(!n.agg_mark(Mark::Spanning));
    }

    #[test]
    fn vertex_and_edge_node_classification() {
        let n = Node::new_unlinked();
        n.set_endpoints(5, 5);
        assert_eq!(n.vertex(), Some(5));
        assert!(!n.is_edge_node());

        let e = Node::new_unlinked();
        e.set_endpoints(3, 9);
        assert_eq!(e.vertex(), None);
        assert!(e.is_edge_node());
        assert_eq!(e.endpoints(), (3, 9));
    }

    #[test]
    fn marks_are_independent() {
        let n = Node::new_unlinked();
        n.set_self_mark(Mark::NonSpanning, true);
        assert!(n.self_mark(Mark::NonSpanning));
        assert!(!n.self_mark(Mark::Spanning));
        n.set_agg_mark(Mark::Spanning, true);
        assert!(n.agg_mark(Mark::Spanning));
        assert!(!n.agg_mark(Mark::NonSpanning));
        // Clearing one bit leaves the others.
        n.set_agg_mark(Mark::Spanning, false);
        assert!(!n.agg_mark(Mark::Spanning));
        assert!(n.self_mark(Mark::NonSpanning));
    }

    #[test]
    fn root_flag_is_independent_of_marks() {
        let n = Node::new_unlinked();
        n.set_is_root(true);
        n.set_self_mark(Mark::Spanning, true);
        assert!(n.is_root());
        n.set_is_root(false);
        assert!(!n.is_root());
        assert!(
            n.self_mark(Mark::Spanning),
            "clearing is_root kept the mark"
        );
    }

    #[test]
    fn parent_and_children_roundtrip() {
        let n = Node::new_unlinked();
        n.set_parent(NodeRef(10));
        n.set_left(NodeRef(11));
        n.set_right(NodeRef(12));
        assert_eq!(n.parent(), NodeRef(10));
        assert_eq!(n.left(), NodeRef(11));
        assert_eq!(n.right(), NodeRef(12));
        n.set_parent(NodeRef::NONE);
        assert!(n.parent().is_none());
    }
}
