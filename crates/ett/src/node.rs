//! The Euler Tour Tree node.
//!
//! Nodes form a Cartesian tree (treap) over the Euler tour of each spanning
//! tree.  Every field a concurrent reader may touch (`parent`, `version`) is
//! accessed with sequentially-consistent atomics; fields only the owning
//! writer touches (children, subtree size, flags) use relaxed atomics so the
//! node remains `Sync` without an `UnsafeCell`.
//!
//! Vertex nodes are permanent; Euler-tour *edge* nodes are created on
//! `link` and retired on `cut` (their slots are never reused, see
//! [`crate::arena`]).
//!
//! Priorities live in two disjoint bands: vertex nodes draw from the upper
//! half of the `u64` range and edge nodes from the lower half.  This
//! guarantees that the treap root of any Euler tour is always a vertex node,
//! which in turn guarantees the invariants the single-writer protocol relies
//! on: the node that represents a component (its treap root) can never be a
//! node that a `cut` is about to retire, and the pre-determined common root
//! of a `link` is always the higher-priority old root (paper, Section 3,
//! "Atomic Merge and Split").

use crate::arena::NodeRef;
use dc_sync::RawRwLock;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Which subtree-summary flag to address (paper Listing 5: the
/// `has_non_spanning_edges` / `has_spanning_edges` pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mark {
    /// "Some vertex in this subtree has adjacent non-spanning edges at this
    /// level."
    NonSpanning = 0,
    /// "Some vertex in this subtree has adjacent spanning edges of exactly
    /// this level."
    Spanning = 1,
}

/// A treap node; see the module documentation.
pub struct Node {
    /// Parent link followed by concurrent readers (SeqCst).
    parent: AtomicU32,
    /// Root version, bumped before every merge/split of this component
    /// (meaningful only while the node is a root).
    version: AtomicU64,
    /// Left / right children (writer-only).
    left: AtomicU32,
    right: AtomicU32,
    /// Immutable-after-init heap priority.
    priority: AtomicU64,
    /// Number of *vertex* nodes in this subtree (writer-only).
    size: AtomicU32,
    /// Graph endpoints: for a vertex node `a == b == v`; for the Euler-tour
    /// node of directed edge `u -> v`, `a == u`, `b == v`.
    a: AtomicU32,
    b: AtomicU32,
    /// Writer-side "this node is currently a treap root" flag, used to bound
    /// upward walks while stale parent pointers are in place mid-operation.
    is_root: AtomicBool,
    /// Per-vertex self contributions to the subtree marks.
    self_marks: [AtomicBool; 2],
    /// Subtree aggregates of the marks (self || children), possibly
    /// conservatively stale-true (see `recalculate_mark`).
    agg_marks: [AtomicBool; 2],
    /// Per-component lock used by the fine-grained algorithm (only ever
    /// taken on level-0 roots). Exclusive mode for updates; the fine-grained
    /// readers-writer variant additionally takes it in shared mode for
    /// queries.
    pub lock: RawRwLock,
}

impl Node {
    /// Creates a fully unlinked node (used by the arena to pre-initialize
    /// chunk slots).
    pub fn new_unlinked() -> Self {
        Node {
            parent: AtomicU32::new(NodeRef::NONE.0),
            version: AtomicU64::new(0),
            left: AtomicU32::new(NodeRef::NONE.0),
            right: AtomicU32::new(NodeRef::NONE.0),
            priority: AtomicU64::new(0),
            size: AtomicU32::new(0),
            a: AtomicU32::new(u32::MAX),
            b: AtomicU32::new(u32::MAX),
            is_root: AtomicBool::new(false),
            self_marks: [AtomicBool::new(false), AtomicBool::new(false)],
            agg_marks: [AtomicBool::new(false), AtomicBool::new(false)],
            lock: RawRwLock::new(),
        }
    }

    // ----- reader-visible fields -------------------------------------------

    /// Reads the parent link (used by concurrent readers).
    #[inline]
    pub fn parent(&self) -> NodeRef {
        NodeRef(self.parent.load(Ordering::SeqCst))
    }

    /// Writes the parent link (writer only).
    #[inline]
    pub fn set_parent(&self, p: NodeRef) {
        self.parent.store(p.0, Ordering::SeqCst);
    }

    /// Reads the root version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Bumps the root version (writer only, before a merge/split).
    #[inline]
    pub fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    // ----- writer-only structural fields -----------------------------------

    /// Left child.
    #[inline]
    pub fn left(&self) -> NodeRef {
        NodeRef(self.left.load(Ordering::Relaxed))
    }

    /// Right child.
    #[inline]
    pub fn right(&self) -> NodeRef {
        NodeRef(self.right.load(Ordering::Relaxed))
    }

    /// Sets the left child.
    #[inline]
    pub fn set_left(&self, c: NodeRef) {
        self.left.store(c.0, Ordering::Relaxed);
    }

    /// Sets the right child.
    #[inline]
    pub fn set_right(&self, c: NodeRef) {
        self.right.store(c.0, Ordering::Relaxed);
    }

    /// Heap priority.
    #[inline]
    pub fn priority(&self) -> u64 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Sets the priority (initialization only).
    #[inline]
    pub fn set_priority(&self, p: u64) {
        self.priority.store(p, Ordering::Relaxed);
    }

    /// Number of vertex nodes in this subtree.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size.load(Ordering::Relaxed)
    }

    /// Sets the subtree vertex count.
    #[inline]
    pub fn set_size(&self, s: u32) {
        self.size.store(s, Ordering::Relaxed);
    }

    /// The stored endpoints `(a, b)`.
    #[inline]
    pub fn endpoints(&self) -> (u32, u32) {
        (
            self.a.load(Ordering::Relaxed),
            self.b.load(Ordering::Relaxed),
        )
    }

    /// Initializes the stored endpoints.
    #[inline]
    pub fn set_endpoints(&self, a: u32, b: u32) {
        self.a.store(a, Ordering::Relaxed);
        self.b.store(b, Ordering::Relaxed);
    }

    /// If this is a vertex node, returns its vertex id.
    #[inline]
    pub fn vertex(&self) -> Option<u32> {
        let (a, b) = self.endpoints();
        if a == b && a != u32::MAX {
            Some(a)
        } else {
            None
        }
    }

    /// Returns `true` if this node represents a directed Euler-tour edge.
    #[inline]
    pub fn is_edge_node(&self) -> bool {
        let (a, b) = self.endpoints();
        a != b
    }

    /// Writer-side root flag.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.is_root.load(Ordering::Relaxed)
    }

    /// Sets the writer-side root flag.
    #[inline]
    pub fn set_is_root(&self, v: bool) {
        self.is_root.store(v, Ordering::Relaxed);
    }

    // ----- subtree marks ----------------------------------------------------

    /// Reads the self-contribution of `mark` ("this vertex has adjacent
    /// edges of the relevant kind").
    #[inline]
    pub fn self_mark(&self, mark: Mark) -> bool {
        self.self_marks[mark as usize].load(Ordering::Relaxed)
    }

    /// Sets the self-contribution of `mark`.
    #[inline]
    pub fn set_self_mark(&self, mark: Mark, v: bool) {
        self.self_marks[mark as usize].store(v, Ordering::Relaxed);
    }

    /// Reads the subtree aggregate of `mark`.
    #[inline]
    pub fn agg_mark(&self, mark: Mark) -> bool {
        self.agg_marks[mark as usize].load(Ordering::Relaxed)
    }

    /// Sets the subtree aggregate of `mark`.
    #[inline]
    pub fn set_agg_mark(&self, mark: Mark, v: bool) {
        self.agg_marks[mark as usize].store(v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlinked_node_defaults() {
        let n = Node::new_unlinked();
        assert!(n.parent().is_none());
        assert!(n.left().is_none());
        assert!(n.right().is_none());
        assert_eq!(n.version(), 0);
        assert_eq!(n.size(), 0);
        assert!(!n.is_root());
        assert_eq!(n.vertex(), None);
        assert!(!n.is_edge_node());
    }

    #[test]
    fn vertex_and_edge_node_classification() {
        let n = Node::new_unlinked();
        n.set_endpoints(5, 5);
        assert_eq!(n.vertex(), Some(5));
        assert!(!n.is_edge_node());

        let e = Node::new_unlinked();
        e.set_endpoints(3, 9);
        assert_eq!(e.vertex(), None);
        assert!(e.is_edge_node());
        assert_eq!(e.endpoints(), (3, 9));
    }

    #[test]
    fn version_bumps_monotonically() {
        let n = Node::new_unlinked();
        n.bump_version();
        n.bump_version();
        assert_eq!(n.version(), 2);
    }

    #[test]
    fn marks_are_independent() {
        let n = Node::new_unlinked();
        n.set_self_mark(Mark::NonSpanning, true);
        assert!(n.self_mark(Mark::NonSpanning));
        assert!(!n.self_mark(Mark::Spanning));
        n.set_agg_mark(Mark::Spanning, true);
        assert!(n.agg_mark(Mark::Spanning));
        assert!(!n.agg_mark(Mark::NonSpanning));
    }

    #[test]
    fn parent_and_children_roundtrip() {
        let n = Node::new_unlinked();
        n.set_parent(NodeRef(10));
        n.set_left(NodeRef(11));
        n.set_right(NodeRef(12));
        assert_eq!(n.parent(), NodeRef(10));
        assert_eq!(n.left(), NodeRef(11));
        assert_eq!(n.right(), NodeRef(12));
        n.set_parent(NodeRef::NONE);
        assert!(n.parent().is_none());
    }
}
