//! Writer-side treap primitives.
//!
//! These are the low-level Cartesian-tree operations the single-writer Euler
//! Tour Tree is built from.  They are ordinary treap `merge` / `split`
//! algorithms with two extra rules that make the intermediate states safe for
//! concurrent readers (paper Section 3, "Atomic Merge and Split"):
//!
//! 1. **No parent link is ever cleared here.** A split leaves the root of the
//!    piece that is "cut off" with its old (now stale) parent pointer, so a
//!    reader walking upward still reaches the component's representative.
//!    The only `parent := null` store in the whole library is the explicit
//!    logical-split write in [`crate::forest::EulerForest::commit_cut`].
//! 2. **Every attachment sets the child's parent.** Whenever a child pointer
//!    is written, the child's parent pointer is updated in the same step, so
//!    parent pointers of non-root nodes are always exact and always point to
//!    a strictly higher-priority node — which keeps the parent graph acyclic
//!    and upward walks terminating.
//!
//! Because stale parent pointers exist only at current treap roots, the
//! writer cannot use `parent == null` to find roots mid-operation; it uses
//! the writer-private `is_root` flag instead, which these primitives keep up
//! to date.

use crate::arena::NodeRef;
use crate::forest::EulerForest;
use crate::node::Mark;

impl EulerForest {
    /// Total order on node priorities (two random-band `u64`s, ties broken by
    /// arena index so the order is strict).
    #[inline]
    pub(crate) fn prio_key(&self, r: NodeRef) -> (u64, u32) {
        (self.node(r).priority(), r.0)
    }

    /// Recomputes the subtree vertex count of `r` and conservatively raises
    /// (never clears) its aggregate marks from its children and its own
    /// self-marks. Clearing happens only in [`EulerForest::recalculate_mark`],
    /// under a component lock.
    pub(crate) fn update_aggregates(&self, r: NodeRef) {
        let node = self.node(r);
        let mut size: u32 = u32::from(node.vertex().is_some());
        let mut non_spanning = node.self_mark(Mark::NonSpanning);
        let mut spanning = node.self_mark(Mark::Spanning);
        for child in [node.left(), node.right()] {
            if child.is_some() {
                let c = self.node(child);
                size += c.size();
                non_spanning |= c.agg_mark(Mark::NonSpanning);
                spanning |= c.agg_mark(Mark::Spanning);
            }
        }
        node.set_size(size);
        if non_spanning {
            node.set_agg_mark(Mark::NonSpanning, true);
        }
        if spanning {
            node.set_agg_mark(Mark::Spanning, true);
        }
    }

    #[inline]
    fn attach_left(&self, parent: NodeRef, child: NodeRef) {
        self.node(parent).set_left(child);
        if child.is_some() {
            self.node(child).set_parent(parent);
        }
    }

    #[inline]
    fn attach_right(&self, parent: NodeRef, child: NodeRef) {
        self.node(parent).set_right(child);
        if child.is_some() {
            self.node(child).set_parent(parent);
        }
    }

    /// Recursive treap merge of the sequences rooted at `a` and `b`
    /// (`a` precedes `b`). Does not adjust `is_root` flags.
    fn merge_rec(&self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a.is_none() {
            return b;
        }
        if b.is_none() {
            return a;
        }
        if self.prio_key(a) > self.prio_key(b) {
            let merged = self.merge_rec(self.node(a).right(), b);
            self.attach_right(a, merged);
            self.update_aggregates(a);
            a
        } else {
            let merged = self.merge_rec(a, self.node(b).left());
            self.attach_left(b, merged);
            self.update_aggregates(b);
            b
        }
    }

    /// Merges two treaps whose roots are `a` and `b` (either may be `NONE`),
    /// keeping the writer-side `is_root` bookkeeping consistent.
    ///
    /// The sequence of `a` precedes the sequence of `b` in the result.
    pub(crate) fn merge_roots(&self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a.is_none() {
            return b;
        }
        if b.is_none() {
            return a;
        }
        debug_assert!(self.node(a).is_root(), "merge_roots: `a` is not a root");
        debug_assert!(self.node(b).is_root(), "merge_roots: `b` is not a root");
        let root = self.merge_rec(a, b);
        let other = if root == a { b } else { a };
        self.node(other).set_is_root(false);
        self.node(root).set_is_root(true);
        root
    }

    /// Splits the treap containing `x` into `(before, from_x)`: everything
    /// strictly before `x` in the Euler sequence, and `x` together with
    /// everything after it. Either piece may be `NONE`.
    pub(crate) fn split_before(&self, x: NodeRef) -> (NodeRef, NodeRef) {
        let xn = self.node(x);
        let mut left_piece = xn.left();
        xn.set_left(NodeRef::NONE);
        self.update_aggregates(x);
        let mut right_piece = x;
        let mut cur = x;
        while !self.node(cur).is_root() {
            let p = self.node(cur).parent();
            debug_assert!(p.is_some(), "non-root node with a null parent");
            let pn = self.node(p);
            if pn.right() == cur {
                // `p` and its left subtree precede `x`.
                self.attach_right(p, left_piece);
                self.update_aggregates(p);
                left_piece = p;
            } else {
                debug_assert_eq!(pn.left(), cur, "parent/child links out of sync");
                self.attach_left(p, right_piece);
                self.update_aggregates(p);
                right_piece = p;
            }
            cur = p;
        }
        if left_piece.is_some() {
            self.node(left_piece).set_is_root(true);
        }
        if right_piece.is_some() {
            self.node(right_piece).set_is_root(true);
        }
        (left_piece, right_piece)
    }

    /// Splits the treap containing `x` into `(up_to_x, after_x)`: everything
    /// up to and including `x`, and everything after it.
    pub(crate) fn split_after(&self, x: NodeRef) -> (NodeRef, NodeRef) {
        let xn = self.node(x);
        let mut right_piece = xn.right();
        xn.set_right(NodeRef::NONE);
        self.update_aggregates(x);
        let mut left_piece = x;
        let mut cur = x;
        while !self.node(cur).is_root() {
            let p = self.node(cur).parent();
            debug_assert!(p.is_some(), "non-root node with a null parent");
            let pn = self.node(p);
            if pn.left() == cur {
                // `p` and its right subtree come after `x`.
                self.attach_left(p, right_piece);
                self.update_aggregates(p);
                right_piece = p;
            } else {
                debug_assert_eq!(pn.right(), cur, "parent/child links out of sync");
                self.attach_right(p, left_piece);
                self.update_aggregates(p);
                left_piece = p;
            }
            cur = p;
        }
        if left_piece.is_some() {
            self.node(left_piece).set_is_root(true);
        }
        if right_piece.is_some() {
            self.node(right_piece).set_is_root(true);
        }
        (left_piece, right_piece)
    }

    /// Writer-side root of the treap containing `x`: follows exact parent
    /// pointers until the `is_root` flag. (Reader-side root finding walks
    /// until `parent == null` instead; see [`EulerForest::find_root`].)
    pub(crate) fn writer_root(&self, x: NodeRef) -> NodeRef {
        let mut cur = x;
        while !self.node(cur).is_root() {
            let p = self.node(cur).parent();
            debug_assert!(p.is_some(), "non-root node with a null parent");
            cur = p;
        }
        cur
    }

    /// Returns which of the two piece roots the node `x` currently belongs
    /// to. Both `a` and `b` must be current treap roots.
    pub(crate) fn piece_of(&self, x: NodeRef, a: NodeRef, b: NodeRef) -> NodeRef {
        let root = self.writer_root(x);
        debug_assert!(root == a || root == b, "node belongs to neither piece");
        if root == a {
            a
        } else {
            b
        }
    }

    /// Rotates the Euler tour of the tree containing vertex `v` so that `v`'s
    /// node becomes the first element, and returns the treap root.
    pub(crate) fn reroot(&self, v: u32) -> NodeRef {
        let vn = self.vertex_node_ref(v);
        let (before, from_v) = self.split_before(vn);
        if before.is_none() {
            return from_v;
        }
        self.merge_roots(from_v, before)
    }

    /// In-order traversal of the treap rooted at `root`, calling `f` for each
    /// node reference (writer-side helper used by validation and tests).
    pub(crate) fn for_each_in_order(&self, root: NodeRef, f: &mut impl FnMut(NodeRef)) {
        if root.is_none() {
            return;
        }
        self.for_each_in_order(self.node(root).left(), f);
        f(root);
        self.for_each_in_order(self.node(root).right(), f);
    }
}
