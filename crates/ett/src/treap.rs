//! Writer-side treap primitives.
//!
//! These are the low-level Cartesian-tree operations the single-writer Euler
//! Tour Tree is built from.  They are ordinary treap `merge` / `split`
//! algorithms with two extra rules that make the intermediate states safe for
//! concurrent readers (paper Section 3, "Atomic Merge and Split"):
//!
//! 1. **No parent link is ever cleared here.** A split leaves the root of the
//!    piece that is "cut off" with its old (now stale) parent pointer, so a
//!    reader walking upward still reaches the component's representative.
//!    The only `parent := null` store in the whole library is the explicit
//!    logical-split write in [`crate::forest::EulerForest::commit_cut`].
//! 2. **Every attachment sets the child's parent.** Whenever a child pointer
//!    is written, the child's parent pointer is updated in the same step, so
//!    parent pointers of non-root nodes are always exact and always point to
//!    a strictly higher-priority node — which keeps the parent graph acyclic
//!    and upward walks terminating.
//!
//! Because stale parent pointers exist only at current treap roots, the
//! writer cannot use `parent == null` to find roots mid-operation; it uses
//! the writer-private `is_root` flag instead, which these primitives keep up
//! to date.

use crate::arena::NodeRef;
use crate::forest::EulerForest;

impl EulerForest {
    /// Total order on node priorities (banded random `u32`s, ties broken by
    /// arena index so the order is strict).
    #[inline]
    pub(crate) fn prio_key(&self, r: NodeRef) -> (u32, u32) {
        (self.node(r).priority(), r.0)
    }

    #[inline]
    fn attach_left(&self, parent: NodeRef, child: NodeRef) {
        self.node(parent).set_left(child);
        if child.is_some() {
            self.node(child).set_parent(parent);
        }
    }

    #[inline]
    fn attach_right(&self, parent: NodeRef, child: NodeRef) {
        self.node(parent).set_right(child);
        if child.is_some() {
            self.node(child).set_parent(parent);
        }
    }

    #[inline]
    fn attach(&self, parent: NodeRef, as_right: bool, child: NodeRef) {
        if as_right {
            self.attach_right(parent, child);
        } else {
            self.attach_left(parent, child);
        }
    }

    /// Iterative treap merge of the sequences rooted at `a` and `b`
    /// (`a` precedes `b`). Does not adjust `is_root` flags.
    ///
    /// The classic recursive merge is O(depth) *call stack*; an Euler tour
    /// treap over millions of vertices makes that both an overflow hazard
    /// and pure call overhead on the hottest write path. This version
    /// descends the right spine of `a` / left spine of `b`, attaching the
    /// higher-priority side into the current "hole". No stack, no heap, no
    /// recursion.
    ///
    /// Aggregates are maintained **top-down at the attach**, with no second
    /// pass over the path:
    ///
    /// * the winner's final subtree is its old subtree plus everything still
    ///   unmerged on the other side, so its exact new size is
    ///   `rem_winner + rem_loser` — both carried in registers;
    /// * the winner's aggregate marks are OR-ed with the other side's
    ///   current root aggregate, which (by the one-way mark invariant)
    ///   covers every mark in the subtree the winner is about to absorb.
    ///
    /// The attachments happen top-down instead of the recursion's bottom-up,
    /// which is equally safe for concurrent readers: every store writes a
    /// child's *final* parent, no parent link is ever cleared, and child
    /// links, sizes and marks are never read by the lock-free read protocol
    /// (see the module documentation).
    fn merge_iter(&self, a0: NodeRef, b0: NodeRef) -> NodeRef {
        if a0.is_none() {
            return b0;
        }
        if b0.is_none() {
            return a0;
        }
        let (mut a, mut b) = (a0, b0);
        let (mut an, mut bn) = (self.node(a), self.node(b));
        let (mut rem_a, mut rem_b) = (an.size(), bn.size());
        // The overall root is the higher-priority input root; descend from
        // it, tracking the hole (parent + side) the next winner attaches to.
        let root;
        let mut hole;
        let mut hole_right;
        if (an.priority(), a.0) > (bn.priority(), b.0) {
            root = a;
            hole = a;
            hole_right = true;
            an.set_size(rem_a + rem_b);
            an.raise_agg_mark_bits(bn.agg_mark_bits());
            a = an.right();
            rem_a = 0; // recomputed below if `a` is a real node
        } else {
            root = b;
            hole = b;
            hole_right = false;
            bn.set_size(rem_a + rem_b);
            bn.raise_agg_mark_bits(an.agg_mark_bits());
            b = bn.left();
            rem_b = 0;
        }
        loop {
            if a.is_some() {
                an = self.node(a);
                rem_a = an.size();
            }
            if b.is_some() {
                bn = self.node(b);
                rem_b = bn.size();
            }
            if a.is_none() {
                self.attach(hole, hole_right, b);
                break;
            }
            if b.is_none() {
                self.attach(hole, hole_right, a);
                break;
            }
            if (an.priority(), a.0) > (bn.priority(), b.0) {
                self.attach(hole, hole_right, a);
                an.set_size(rem_a + rem_b);
                an.raise_agg_mark_bits(bn.agg_mark_bits());
                hole = a;
                hole_right = true;
                a = an.right();
            } else {
                self.attach(hole, hole_right, b);
                bn.set_size(rem_a + rem_b);
                bn.raise_agg_mark_bits(an.agg_mark_bits());
                hole = b;
                hole_right = false;
                b = bn.left();
            }
        }
        root
    }

    /// Merges two treaps whose roots are `a` and `b` (either may be `NONE`),
    /// keeping the writer-side `is_root` bookkeeping consistent.
    ///
    /// The sequence of `a` precedes the sequence of `b` in the result.
    pub(crate) fn merge_roots(&self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a.is_none() {
            return b;
        }
        if b.is_none() {
            return a;
        }
        debug_assert!(self.node(a).is_root(), "merge_roots: `a` is not a root");
        debug_assert!(self.node(b).is_root(), "merge_roots: `b` is not a root");
        let _span = dc_obs::span(dc_obs::SpanId::TreapMerge);
        let root = self.merge_iter(a, b);
        let other = if root == a { b } else { a };
        self.node(other).set_is_root(false);
        self.node(root).set_is_root(true);
        root
    }

    /// Subtree vertex count of a possibly-`NONE` reference.
    #[inline]
    fn size_of(&self, r: NodeRef) -> u32 {
        if r.is_some() {
            self.node(r).size()
        } else {
            0
        }
    }

    /// Splits the treap containing `x` into `(before, from_x)`: everything
    /// strictly before `x` in the Euler sequence, and `x` together with
    /// everything after it. Either piece may be `NONE`.
    ///
    /// # Aggregates along the split path
    ///
    /// Subtree **sizes** are maintained by a register-carried delta: a path
    /// node's new subtree is its old subtree minus the child subtree the
    /// walk came out of, plus the piece just reattached under it —
    /// `p_new = p_old - old_sub + piece`, where `p_old` sits on the parent
    /// line the walk loads anyway and the other two terms are carried. The
    /// split walk is the hottest loop of `cut`, and this eliminates both
    /// child-subtree reads of the old `update_aggregates` call per step.
    ///
    /// Subtree **marks** are deliberately left untouched: a split only ever
    /// *shrinks* the subtree under each path node (every piece reattached
    /// below a path node came out of that node's old subtree), so the old
    /// aggregate, which covered a superset, stays conservatively correct —
    /// exactly the stale-true direction `recalculate_mark` is there to
    /// repair under the component lock.
    pub(crate) fn split_before(&self, x: NodeRef) -> (NodeRef, NodeRef) {
        let _span = dc_obs::span(dc_obs::SpanId::TreapSplit);
        let xn = self.node(x);
        let x_old = xn.size();
        let mut left_piece = xn.left();
        let mut left_size = self.size_of(left_piece);
        xn.set_left(NodeRef::NONE);
        let mut right_size = x_old - left_size;
        xn.set_size(right_size);
        let mut right_piece = x;
        let mut cur = x;
        let mut curn = xn;
        // Original subtree size of the node the walk last came out of.
        let mut old_sub = x_old;
        while !curn.is_root() {
            let p = curn.parent();
            debug_assert!(p.is_some(), "non-root node with a null parent");
            let pn = self.node(p);
            let p_old = pn.size();
            if pn.right() == cur {
                // `p` and its left subtree precede `x`.
                self.attach_right(p, left_piece);
                left_size += p_old - old_sub;
                pn.set_size(left_size);
                left_piece = p;
            } else {
                debug_assert_eq!(pn.left(), cur, "parent/child links out of sync");
                self.attach_left(p, right_piece);
                right_size += p_old - old_sub;
                pn.set_size(right_size);
                right_piece = p;
            }
            old_sub = p_old;
            cur = p;
            curn = pn;
        }
        if left_piece.is_some() {
            self.node(left_piece).set_is_root(true);
        }
        if right_piece.is_some() {
            self.node(right_piece).set_is_root(true);
        }
        (left_piece, right_piece)
    }

    /// Splits the treap containing `x` into `(up_to_x, after_x)`: everything
    /// up to and including `x`, and everything after it.
    ///
    /// Aggregate maintenance as in [`EulerForest::split_before`]:
    /// register-carried size deltas, marks left conservatively stale.
    pub(crate) fn split_after(&self, x: NodeRef) -> (NodeRef, NodeRef) {
        let _span = dc_obs::span(dc_obs::SpanId::TreapSplit);
        let xn = self.node(x);
        let x_old = xn.size();
        let mut right_piece = xn.right();
        let mut right_size = self.size_of(right_piece);
        xn.set_right(NodeRef::NONE);
        let mut left_size = x_old - right_size;
        xn.set_size(left_size);
        let mut left_piece = x;
        let mut cur = x;
        let mut curn = xn;
        let mut old_sub = x_old;
        while !curn.is_root() {
            let p = curn.parent();
            debug_assert!(p.is_some(), "non-root node with a null parent");
            let pn = self.node(p);
            let p_old = pn.size();
            if pn.left() == cur {
                // `p` and its right subtree come after `x`.
                self.attach_left(p, right_piece);
                right_size += p_old - old_sub;
                pn.set_size(right_size);
                right_piece = p;
            } else {
                debug_assert_eq!(pn.right(), cur, "parent/child links out of sync");
                self.attach_right(p, left_piece);
                left_size += p_old - old_sub;
                pn.set_size(left_size);
                left_piece = p;
            }
            old_sub = p_old;
            cur = p;
            curn = pn;
        }
        if left_piece.is_some() {
            self.node(left_piece).set_is_root(true);
        }
        if right_piece.is_some() {
            self.node(right_piece).set_is_root(true);
        }
        (left_piece, right_piece)
    }

    /// Writer-side root of the treap containing `x`: follows exact parent
    /// pointers until the `is_root` flag. (Reader-side root finding walks
    /// until `parent == null` instead; see [`EulerForest::find_root`].)
    pub(crate) fn writer_root(&self, x: NodeRef) -> NodeRef {
        let mut cur = x;
        while !self.node(cur).is_root() {
            let p = self.node(cur).parent();
            debug_assert!(p.is_some(), "non-root node with a null parent");
            cur = p;
        }
        cur
    }

    /// Returns which of the two piece roots the node `x` currently belongs
    /// to. Both `a` and `b` must be current treap roots.
    pub(crate) fn piece_of(&self, x: NodeRef, a: NodeRef, b: NodeRef) -> NodeRef {
        let root = self.writer_root(x);
        debug_assert!(root == a || root == b, "node belongs to neither piece");
        if root == a {
            a
        } else {
            b
        }
    }

    /// Rotates the Euler tour of the tree containing vertex `v` so that `v`'s
    /// node becomes the first element, and returns the treap root.
    pub(crate) fn reroot(&self, v: u32) -> NodeRef {
        let vn = self.vertex_node_ref(v);
        let (before, from_v) = self.split_before(vn);
        if before.is_none() {
            return from_v;
        }
        self.merge_roots(from_v, before)
    }

    /// In-order traversal of the treap rooted at `root`, calling `f` for each
    /// node reference (writer-side helper used by validation and tests).
    /// Iterative with an explicit stack so arbitrarily deep tours cannot
    /// overflow the call stack.
    pub(crate) fn for_each_in_order(&self, root: NodeRef, f: &mut impl FnMut(NodeRef)) {
        let mut stack: Vec<NodeRef> = Vec::new();
        let mut cur = root;
        while cur.is_some() || !stack.is_empty() {
            while cur.is_some() {
                stack.push(cur);
                cur = self.node(cur).left();
            }
            let r = stack.pop().expect("loop invariant: stack non-empty");
            f(r);
            cur = self.node(r).right();
        }
    }
}
