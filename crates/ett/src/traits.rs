//! The [`DynamicForest`] backend contract: what the dynamic connectivity
//! core needs from a concurrent spanning-forest structure.
//!
//! The HDT core (`dynconn::Hdt`) maintains one forest per level; everything
//! it asks of a forest is captured here so the treap Euler Tour Tree
//! ([`crate::EulerForest`]) and the splay-path link-cut tree
//! ([`crate::LctForest`]) are interchangeable backends. The contract has
//! three layers:
//!
//! * **Lock-free reads** — [`DynamicForest::connected`],
//!   [`DynamicForest::resolve_root_validated`] and the bulk doors must
//!   implement the paper's Listing-1 retry protocol over per-representative
//!   version words, optionally short-circuited by the version-validated
//!   root-hint cache ([`crate::HintCache`]). Readers never block and never
//!   observe a torn component: at every instant each component has exactly
//!   one reader-visible sink (a node whose reader-visible parent word is
//!   "none"), and every reachable parent chain ends at it.
//! * **The two-rule bump discipline** (`DESIGN.md` §8/§12) — a conforming
//!   writer (1) bumps the version of a component's current representative
//!   *before* the first reader-visible store of any structural change, and
//!   (2) bumps every representative that *stops* representing part of its
//!   old component immediately *after* the store that deposes it. Rule 2 is
//!   what kills hints installed inside the bump→store window; without it a
//!   deposed representative's version would never move again and stale
//!   claims would validate forever.
//! * **Writer-side exactness** — [`DynamicForest::find_root_node`] is the
//!   reader-style climb used by protocol-critical paths (per-component lock
//!   acquisition, the published-removal handshake) and must never consult
//!   hints; [`DynamicForest::component_root`] is the writer-exact
//!   representative, valid under the component's lock even inside a
//!   prepared-cut window.
//!
//! # Epoch pinning
//!
//! Backends that recycle nodes (the ETT retires tour edge nodes) must make
//! every internal read-side traversal safe by pinning their reclamation
//! domain; [`DynamicForest::pin`] exposes the same pin to callers composing
//! multi-step traversals. Backends whose nodes are permanent (the LCT's
//! per-vertex nodes) still expose a domain so the call is meaningful, but
//! their pin bounds nothing — [`DynamicForest::node_occupancy`] is the
//! portable way to assert storage stays bounded under churn.
//!
//! # Prepared cuts
//!
//! [`DynamicForest::prepare_cut`] physically separates the two would-be
//! pieces while readers still observe one component (the detached piece's
//! representative keeps a stale reader-visible parent into the retained
//! piece). Between prepare and commit the caller may traverse both pieces
//! ([`DynamicForest::visit_marked_vertices`], sizes, writer roots) and may
//! [`DynamicForest::link`] across them (the replacement-found path, which
//! closes the window); [`DynamicForest::commit_cut`] makes the split
//! reader-visible with the rule-1/rule-2 bump order proven in `DESIGN.md`.
//! Every prepared cut must be finished by exactly one of
//! [`DynamicForest::commit_cut`] or [`DynamicForest::retire_cut_nodes`].
//!
//! # Scratch reuse
//!
//! The bulk doors ([`DynamicForest::connected_many_into`] and the scalar
//! oracle) are expected to reuse per-thread scratch so steady-state calls
//! allocate nothing beyond the output vector's own growth — both shipped
//! backends route through thread-local scratch buffers.

use crate::node::Mark;
use dc_sync::{EpochGuard, RawRwLock};
use std::cell::Cell;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::ControlFlow;

use crate::arena::NodeRef;
use crate::forest::EulerForest;

/// A concurrent single-writer-per-component, multi-reader spanning forest
/// usable as the per-level structure of the HDT core. See the module
/// documentation for the full contract.
pub trait DynamicForest: Send + Sync + Sized + 'static {
    /// Opaque component representative handle. For the ETT this is the tour
    /// treap root node; for the LCT it is the apex vertex. Only meaningful
    /// for as long as the component is not restructured (the HDT's
    /// climb–lock–recheck loop tolerates it going stale).
    type Root: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static;

    /// Opaque prepared-cut description returned by
    /// [`DynamicForest::prepare_cut`].
    type Prepared;

    /// Short lowercase backend label used in test failure messages, bench
    /// cells and registry knobs (`"ett"`, `"lct"`).
    const BACKEND: &'static str;

    /// Creates a forest of `n` isolated vertices with a deterministic seed
    /// (the ETT derives treap priorities from it; backends without random
    /// structure may ignore it).
    fn with_seed(n: usize, seed: u64) -> Self;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of spanning edges currently in the forest.
    fn num_tree_edges(&self) -> usize;

    /// Whether the spanning edge `(u, v)` is currently in the forest.
    fn has_tree_edge(&self, u: u32, v: u32) -> bool;

    // ----- lock-free reads --------------------------------------------------

    /// Linearizable, non-blocking connectivity check (paper Listing 1 with
    /// the root-hint fast path).
    fn connected(&self, u: u32, v: u32) -> bool;

    /// Resolves `v`'s component root as a *validated* `(root_vertex,
    /// version)` claim — simultaneously current at some instant — consulting
    /// the hint cache first and double-walking on a miss (installing the
    /// fresh hint on the way out). Exactly one hit or miss is recorded per
    /// call while hints are enabled.
    fn resolve_root_validated(&self, v: u32) -> (u32, u64);

    /// Answers a run of connectivity queries, appending to `out` in pair
    /// order; each answer is individually linearizable. Backends with an
    /// interleaved read engine route through it when enabled; others may
    /// always take their scalar memo path.
    fn connected_many_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>);

    /// The scalar memoized bulk read path (the differential oracle the
    /// interleaved engines are tested against).
    fn connected_many_scalar_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>);

    /// The current representative of `v`'s component by an exact
    /// reader-style climb — **never** through the hint cache (the hint path
    /// carries the 32-bit wraparound caveat, acceptable for one stale query
    /// answer but not for mutual exclusion or the removal handshake).
    fn find_root_node(&self, v: u32) -> Self::Root;

    /// Whether `r` is still a current component representative (the
    /// lock-acquisition recheck: lock first, then confirm the component did
    /// not move).
    fn is_current_root(&self, r: Self::Root) -> bool;

    /// The per-component lock of representative `r` (level-0 only; lock
    /// tables materialize lazily).
    fn root_lock(&self, r: Self::Root) -> &RawRwLock;

    /// Pins the backend's reclamation domain (see the module docs on epoch
    /// pinning).
    fn pin(&self) -> EpochGuard<'_>;

    /// Node-storage slots currently allocated. Epoch-reclaiming backends
    /// grow and shrink this with churn (soak tests gate on it staying
    /// proportional to the live structure); permanent-node backends report a
    /// constant.
    fn node_occupancy(&self) -> usize;

    // ----- writer-side (under the component lock) ---------------------------

    /// Writer-exact component representative of `v` (valid under the
    /// component's lock, including inside a prepared-cut window).
    fn component_root(&self, v: u32) -> Self::Root;

    /// Root comparison for callers already holding the locks covering both
    /// components.
    fn same_tree_locked(&self, u: u32, v: u32) -> bool;

    /// Number of vertices in the tree rooted at `root`.
    fn tree_size(&self, root: Self::Root) -> u32;

    /// Number of vertices in `v`'s component (writer-side).
    fn component_size(&self, v: u32) -> u32;

    /// Adds the spanning edge `(u, v)`, merging two trees. The endpoints
    /// must be in different trees (or different prepared pieces) and the
    /// caller must be the unique writer for both.
    fn link(&self, u: u32, v: u32);

    /// Fallible [`DynamicForest::link`]: any node storage the merge needs
    /// is reserved fallibly **before** the first version bump or structural
    /// store, so capacity exhaustion — real, or injected by an installed
    /// `dc_faults` chaos schedule — returns `Err(ArenaExhausted)` with the
    /// forest untouched and the caller degrades the insert to a rejected
    /// operation (`DESIGN.md` §13). Backends whose link allocates nothing
    /// still consult the injection point so chaos soaks exercise the
    /// rejection path on every backend.
    fn try_link(&self, u: u32, v: u32) -> Result<(), crate::arena::ArenaExhausted>;

    /// Physically splits around spanning edge `(u, v)` without logically
    /// disconnecting the pieces (see the module docs).
    fn prepare_cut(&self, u: u32, v: u32) -> Self::Prepared;

    /// Logically applies a prepared cut — the linearization point of a
    /// spanning-edge removal without replacement.
    fn commit_cut(&self, cut: &Self::Prepared);

    /// Finishes a prepared cut whose pieces were re-linked instead of split
    /// (the replacement-found path): releases whatever the cut still owns
    /// without committing it.
    fn retire_cut_nodes(&self, cut: &Self::Prepared);

    /// `prepare_cut` + `commit_cut`.
    fn cut(&self, u: u32, v: u32);

    /// The representative and size of the smaller prepared piece (the HDT
    /// promotes/scans the smaller side first, per the level-size invariant).
    fn smaller_piece(&self, cut: &Self::Prepared) -> (Self::Root, u32);

    // ----- subtree marks ----------------------------------------------------

    /// Sets the self-contribution of `mark` on vertex `v`.
    fn set_vertex_self_mark(&self, v: u32, mark: Mark, value: bool);

    /// Reads the self-contribution of `mark` on vertex `v`.
    fn vertex_self_mark(&self, v: u32, mark: Mark) -> bool;

    /// Marks vertex `v` as having adjacent edges of kind `mark`, raising
    /// whatever summaries the backend keeps so a subsequent
    /// [`DynamicForest::visit_marked_vertices`] over `v`'s component finds
    /// it. Lock-free: may race with restructuring (conservative extra
    /// visibility is always safe).
    fn mark_path_upward(&self, v: u32, mark: Mark);

    /// Visits vertices of the tree rooted at `root`, guided by `mark`:
    /// `f` is called **at least** for every vertex whose self-mark of kind
    /// `mark` is set (it may be called for unmarked vertices too — callers
    /// treat a visit as "look at this vertex's slots", which is harmless
    /// when empty). `ControlFlow::Break` aborts the walk immediately.
    /// Backends with aggregate summaries repair them along the walk (and
    /// skip the repair of pending ancestors on an abort — the summaries stay
    /// conservative, which is the safe direction). Writer-side: caller must
    /// be the unique writer of `root`'s tree.
    fn visit_marked_vertices(
        &self,
        root: Self::Root,
        mark: Mark,
        f: &mut dyn FnMut(u32) -> ControlFlow<()>,
    );

    /// Visits every spanning edge currently in the forest, normalized
    /// `u < v`, in unspecified order (writer-quiescent callers only).
    fn for_each_tree_edge(&self, f: &mut dyn FnMut(u32, u32));

    // ----- hint & interleave knobs ------------------------------------------

    /// Enables/disables the root-hint fast path on this forest.
    fn set_read_hints(&self, enabled: bool);

    /// Whether the hint fast path is active.
    fn read_hints_enabled(&self) -> bool;

    /// `(hits, misses)` of the forest's hint cache (zeros while the table
    /// was never materialized).
    fn read_hint_stats(&self) -> (u64, u64);

    /// Whether the lazy hint table has materialized (diagnostics).
    fn hints_materialized(&self) -> bool;

    /// Diagnostics/tests: does `v` currently hold a hint that validates?
    fn hint_valid(&self, v: u32) -> bool;

    /// Routes bulk reads through the interleaved engine (advisory: backends
    /// without one keep taking their scalar path).
    fn set_interleaved_reads(&self, enabled: bool);

    /// Whether bulk reads are routed through an interleaved engine.
    fn interleaved_reads_enabled(&self) -> bool;

    /// Sets the interleaved engine's walk width (advisory, clamped).
    fn set_interleave_width(&self, width: usize);

    /// The interleaved engine's current walk width.
    fn interleave_width(&self) -> usize;

    // ----- validation -------------------------------------------------------

    /// Exhaustively checks the backend's structural invariants, panicking on
    /// any violation (tests; writer-quiescent callers only).
    fn validate(&self);
}

thread_local! {
    /// Reusable two-phase DFS stack of the ETT's mark-guided walk
    /// (`(node, children_done)` frames), kept per-thread so steady-state
    /// replacement searches allocate nothing.
    static ETT_WALK_STACK: Cell<Vec<(NodeRef, bool)>> = const { Cell::new(Vec::new()) };
}

impl DynamicForest for EulerForest {
    type Root = NodeRef;
    type Prepared = crate::forest::PreparedCut;

    const BACKEND: &'static str = "ett";

    fn with_seed(n: usize, seed: u64) -> Self {
        EulerForest::with_seed(n, seed)
    }

    fn num_vertices(&self) -> usize {
        EulerForest::num_vertices(self)
    }

    fn num_tree_edges(&self) -> usize {
        EulerForest::num_tree_edges(self)
    }

    fn has_tree_edge(&self, u: u32, v: u32) -> bool {
        EulerForest::has_tree_edge(self, u, v)
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        EulerForest::connected(self, u, v)
    }

    fn resolve_root_validated(&self, v: u32) -> (u32, u64) {
        EulerForest::resolve_root_validated(self, v)
    }

    fn connected_many_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        EulerForest::connected_many_into(self, pairs, out)
    }

    fn connected_many_scalar_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        EulerForest::connected_many_scalar_into(self, pairs, out)
    }

    fn find_root_node(&self, v: u32) -> NodeRef {
        EulerForest::find_root_node(self, v)
    }

    fn is_current_root(&self, r: NodeRef) -> bool {
        self.node(r).parent().is_none()
    }

    fn root_lock(&self, r: NodeRef) -> &RawRwLock {
        EulerForest::root_lock(self, r)
    }

    fn pin(&self) -> EpochGuard<'_> {
        EulerForest::pin(self)
    }

    fn node_occupancy(&self) -> usize {
        self.arena_occupancy()
    }

    fn component_root(&self, v: u32) -> NodeRef {
        EulerForest::component_root(self, v)
    }

    fn same_tree_locked(&self, u: u32, v: u32) -> bool {
        EulerForest::same_tree_locked(self, u, v)
    }

    fn tree_size(&self, root: NodeRef) -> u32 {
        EulerForest::tree_size(self, root)
    }

    fn component_size(&self, v: u32) -> u32 {
        EulerForest::component_size(self, v)
    }

    fn link(&self, u: u32, v: u32) {
        EulerForest::link(self, u, v)
    }

    fn try_link(&self, u: u32, v: u32) -> Result<(), crate::arena::ArenaExhausted> {
        EulerForest::try_link(self, u, v)
    }

    fn prepare_cut(&self, u: u32, v: u32) -> crate::forest::PreparedCut {
        EulerForest::prepare_cut(self, u, v)
    }

    fn commit_cut(&self, cut: &crate::forest::PreparedCut) {
        EulerForest::commit_cut(self, cut)
    }

    fn retire_cut_nodes(&self, cut: &crate::forest::PreparedCut) {
        EulerForest::retire_cut_nodes(self, cut)
    }

    fn cut(&self, u: u32, v: u32) {
        let _ = EulerForest::cut(self, u, v);
    }

    fn smaller_piece(&self, cut: &crate::forest::PreparedCut) -> (NodeRef, u32) {
        cut.smaller_piece()
    }

    fn set_vertex_self_mark(&self, v: u32, mark: Mark, value: bool) {
        EulerForest::set_vertex_self_mark(self, v, mark, value)
    }

    fn vertex_self_mark(&self, v: u32, mark: Mark) -> bool {
        EulerForest::vertex_self_mark(self, v, mark)
    }

    fn mark_path_upward(&self, v: u32, mark: Mark) {
        EulerForest::mark_path_upward(self, v, mark)
    }

    /// The aggregate-pruned two-phase walk (paper Listing 6): subtrees whose
    /// aggregate flag is clear are skipped entirely, every visited node's
    /// aggregate is recomputed post-order with the Lemma C.1 re-check, and
    /// an abort leaves pending ancestors' aggregates untouched — the
    /// conservative (safe) direction.
    fn visit_marked_vertices(
        &self,
        root: NodeRef,
        mark: Mark,
        f: &mut dyn FnMut(u32) -> ControlFlow<()>,
    ) {
        let mut stack = ETT_WALK_STACK.with(|s| s.take());
        stack.clear();
        stack.push((root, false));
        'walk: while let Some((r, children_done)) = stack.pop() {
            if children_done {
                // Post-order repair: recompute this node's aggregate now
                // that both children carry exact flags.
                self.recalculate_mark(r, mark);
                continue;
            }
            if !self.subtree_has_mark(r, mark) {
                continue;
            }
            if let Some(vertex) = self.node(r).vertex() {
                if f(vertex).is_break() {
                    // Abort without repairing pending ancestors: their
                    // aggregates stay conservatively raised.
                    break 'walk;
                }
            }
            stack.push((r, true));
            let node = self.node(r);
            for child in [node.left(), node.right()] {
                if child.is_some() {
                    stack.push((child, false));
                }
            }
        }
        stack.clear();
        ETT_WALK_STACK.with(|s| s.set(stack));
    }

    fn for_each_tree_edge(&self, f: &mut dyn FnMut(u32, u32)) {
        EulerForest::for_each_tree_edge(self, f)
    }

    fn set_read_hints(&self, enabled: bool) {
        EulerForest::set_read_hints(self, enabled)
    }

    fn read_hints_enabled(&self) -> bool {
        EulerForest::read_hints_enabled(self)
    }

    fn read_hint_stats(&self) -> (u64, u64) {
        EulerForest::read_hint_stats(self)
    }

    fn hints_materialized(&self) -> bool {
        EulerForest::hints_materialized(self)
    }

    fn hint_valid(&self, v: u32) -> bool {
        EulerForest::hint_valid(self, v)
    }

    fn set_interleaved_reads(&self, enabled: bool) {
        EulerForest::set_interleaved_reads(self, enabled)
    }

    fn interleaved_reads_enabled(&self) -> bool {
        EulerForest::interleaved_reads_enabled(self)
    }

    fn set_interleave_width(&self, width: usize) {
        EulerForest::set_interleave_width(self, width)
    }

    fn interleave_width(&self) -> usize {
        EulerForest::interleave_width(self)
    }

    fn validate(&self) {
        EulerForest::validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<F: DynamicForest>() {
        let f = F::with_seed(8, 42);
        assert_eq!(f.num_vertices(), 8);
        assert!(!DynamicForest::connected(&f, 0, 2));
        f.link(0, 1);
        f.link(1, 2);
        assert!(DynamicForest::connected(&f, 0, 2));
        assert!(f.has_tree_edge(0, 1));
        assert_eq!(f.num_tree_edges(), 2);
        assert_eq!(f.component_size(0), 3);
        let root = f.find_root_node(0);
        assert!(f.is_current_root(root));
        assert_eq!(f.find_root_node(2), root);
        DynamicForest::cut(&f, 1, 2);
        assert!(!DynamicForest::connected(&f, 0, 2));
        let mut edges = Vec::new();
        f.for_each_tree_edge(&mut |u, v| edges.push((u, v)));
        assert_eq!(edges, vec![(0, 1)]);
        f.validate();
    }

    #[test]
    fn euler_forest_satisfies_the_contract() {
        exercise::<EulerForest>();
        assert_eq!(EulerForest::BACKEND, "ett");
    }

    #[test]
    fn marked_visit_reaches_self_marked_vertices() {
        let f = EulerForest::with_seed(6, 7);
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        f.mark_path_upward(2, Mark::NonSpanning);
        let root = f.component_root(0);
        let mut seen = Vec::new();
        DynamicForest::visit_marked_vertices(&f, root, Mark::NonSpanning, &mut |v| {
            seen.push(v);
            ControlFlow::Continue(())
        });
        assert!(seen.contains(&2), "marked vertex must be visited: {seen:?}");
        // Break aborts immediately.
        let mut first = None;
        DynamicForest::visit_marked_vertices(&f, root, Mark::NonSpanning, &mut |v| {
            first = Some(v);
            ControlFlow::Break(())
        });
        assert!(first.is_some());
    }
}
