//! A concurrent-hardened link-cut tree (Sleator–Tarjan ST-tree) backend for
//! the [`crate::DynamicForest`] contract.
//!
//! # Structure
//!
//! The classic splay-path LCT: each represented tree is partitioned into
//! preferred paths, each path stored in a splay tree keyed by depth; splay
//! trees hang off each other through *path-parent* pointers, and subtrees
//! demoted off a preferred path become *virtual* children (their sizes are
//! folded into `vsize` so `size` counts whole represented pieces). All nodes
//! are per-vertex and permanent — a forest of `n` vertices is exactly `n`
//! nodes forever, so there is nothing to reclaim and
//! [`LctForest::node_occupancy`] is constant.
//!
//! # The reader protocol
//!
//! Readers run the exact Listing-1 protocol of the ETT (`DESIGN.md` §8),
//! unchanged: climb to a sink, read its version word (Acquire), double-walk
//! to validate, with the version-validated root-hint cache
//! ([`crate::HintCache`]) short-circuiting hot endpoints. The *only*
//! reader-visible field of a node is its packed `up` word:
//!
//! ```text
//!   bit 31:     kind — 0 = splay parent, 1 = path parent
//!   bits 30..0: parent vertex id
//!   u32::MAX:   none (this node is its component's reader-visible sink)
//! ```
//!
//! Readers mask bit 31 and keep climbing — a component's *representative is
//! its apex vertex* (the root of the topmost splay tree), which is always a
//! vertex, making the per-vertex version/lock/hint side tables total. Child
//! pointers, sizes and lazy-reversal flags are writer-only (Relaxed).
//!
//! # Concurrent hardening: the no-two-sinks store order
//!
//! The single safety invariant readers need is **at every instant, each
//! component has exactly one reader-visible sink, and every `up` chain ends
//! at it** — transient *cycles* (readers spin a bounded moment) are
//! acceptable, transient *extra sinks* (readers observe a torn component and
//! answer `false` non-linearizably) are not. Every rotation therefore
//! stores in the order: transferred child first, then `p.up := x` (this may
//! form a bounded 2-cycle if `p` was the apex), then `x.up := p`'s old word
//! *verbatim* — the rising node inherits the deposed node's word, whatever
//! it was. The reverse order would expose two sinks and is the one fatal
//! bug class of this file.
//!
//! # The generalized two-rule bump discipline
//!
//! The ETT proves (DESIGN.md §8) that writers must (1) bump the component
//! representative's version before the first reader-visible store and (2)
//! re-bump every representative that stops representing part of its old
//! component, after the deposing store. In an LCT the apex moves on *every*
//! `access`, so rule 2 generalizes: **every rotation that deposes the
//! current apex bumps the deposed vertex immediately after the deposing
//! store** (and transfers the writer-side `F_SINK` marker). A hint claim
//! installed on a transient apex is true at its instant and is killed by
//! that apex's deposing bump. This is the LCT's structural cost: O(log n)
//! bumps per operation against the ETT's O(1), which shows up as extra hint
//! invalidation under churn (measured in `BENCH_backends.json`).
//!
//! # Prepared-cut windows
//!
//! `prepare_cut(u, v)` everts `u` and accesses `v`, leaving the preferred
//! path exactly `[u, v]`; severing `v`'s left child physically splits the
//! pieces while `u` *keeps its stale `up` word into the retained piece* —
//! readers still observe one component. `u` is marked `F_SINK` so writer
//! climbs see two pieces. Verbatim word inheritance through rotations means
//! the stale word (and the flag) migrate correctly to whatever becomes the
//! detached piece's apex if the window's pieces are restructured — which
//! happens on the replacement-found path, where [`LctForest::link`] is
//! called *across the window*. Its epilogue unconditionally clears the
//! merged apex's `up` word: if the surviving apex came from the detached
//! piece it still wears the stale word, which after the attach store would
//! form a reader cycle *with no sink* — the clear (attach first, then
//! clear, never the reverse) closes the window with at most a bounded
//! transient cycle.
//!
//! # Marks
//!
//! The LCT keeps **no aggregate mark summaries** — splay-tree subtrees do
//! not correspond to represented subtrees, so the ETT's aggregate pruning
//! has no cheap analogue here. Self marks are per-vertex flag bits, and
//! [`DynamicForest::visit_marked_vertices`] walks the piece through a
//! spanning-tree adjacency table ([`dc_sync::AdjacencyStore`]) maintained
//! by `link`/`prepare_cut`, filtering on self marks. Honest tradeoff: the
//! ETT prunes unmarked subtrees in O(1), the LCT enumerates the whole
//! piece — another measured backend difference, not a hidden one.

use crate::hints::HintCache;
use crate::node::Mark;
use crate::traits::DynamicForest;
use dc_sync::{AdjacencyStore, EpochDomain, EpochGuard, RawRwLock};
use std::cell::Cell;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// "No parent": this vertex is its component's reader-visible sink.
const UP_NONE: u32 = u32::MAX;

/// Kind bit of the packed `up` word: set = path parent, clear = splay
/// parent. Readers mask it; only writers care.
const UP_PATH: u32 = 1 << 31;

/// "No child" sentinel for the writer-only child pointers.
const NONE: u32 = u32::MAX;

// Writer-only flag bits (all accesses are RMW: the lock-free mark bits
// share the byte with the writer's flip/sink bits, so plain stores would
// lose concurrent updates).
const F_FLIP: u8 = 1 << 0;
const F_SINK: u8 = 1 << 1;
const F_SELF_NONSPANNING: u8 = 1 << 2;
const F_SELF_SPANNING: u8 = 1 << 3;

fn self_mark_bit(mark: Mark) -> u8 {
    match mark {
        Mark::NonSpanning => F_SELF_NONSPANNING,
        Mark::Spanning => F_SELF_SPANNING,
    }
}

/// One per-vertex, permanent LCT node (24 bytes).
struct LctNode {
    /// The packed parent word — the **only** reader-visible field.
    up: AtomicU32,
    /// Splay-tree children (writer-only).
    left: AtomicU32,
    right: AtomicU32,
    /// 1 + splay-subtree sizes + `vsize` — because virtual subtrees are
    /// counted, the apex's `size` is its whole piece's vertex count.
    size: AtomicU32,
    /// Total vertices in this node's virtual (demoted) subtrees.
    vsize: AtomicU32,
    /// Flag byte: `F_FLIP` | `F_SINK` | self marks.
    flags: AtomicU8,
}

impl LctNode {
    fn new() -> Self {
        LctNode {
            up: AtomicU32::new(UP_NONE),
            left: AtomicU32::new(NONE),
            right: AtomicU32::new(NONE),
            size: AtomicU32::new(1),
            vsize: AtomicU32::new(0),
            flags: AtomicU8::new(F_SINK),
        }
    }
}

/// A prepared (physically split, logically intact) cut; see
/// [`LctForest::prepare_cut`].
pub struct PreparedLctCut {
    /// Apex of the piece that keeps the (reader-visible) old representative.
    pub retained_root: u32,
    /// Apex of the piece that will become a new component on commit.
    pub detached_root: u32,
    /// Vertex count of the retained piece.
    pub retained_size: u32,
    /// Vertex count of the detached piece.
    pub detached_size: u32,
}

impl PreparedLctCut {
    /// The smaller piece's apex and size (ties go to the detached piece).
    pub fn smaller_piece(&self) -> (u32, u32) {
        if self.detached_size <= self.retained_size {
            (self.detached_root, self.detached_size)
        } else {
            (self.retained_root, self.retained_size)
        }
    }
}

thread_local! {
    /// Splay-path scratch (ancestor collection for top-down flip pushes).
    static SPLAY_PATH: Cell<Vec<u32>> = const { Cell::new(Vec::new()) };
    /// Mark-walk DFS scratch: `(vertex, parent)` frames.
    static DFS_STACK: Cell<Vec<(u32, u32)>> = const { Cell::new(Vec::new()) };
}

/// The concurrent link-cut-tree spanning forest. See the module docs.
pub struct LctForest {
    nodes: Box<[LctNode]>,
    /// Per-vertex root version words (Listing-1 protocol).
    versions: Box<[AtomicU64]>,
    /// Per-vertex component locks, materialized on first use.
    locks: OnceLock<Box<[RawRwLock]>>,
    /// Root-hint cache, materialized on first query.
    hints: OnceLock<HintCache>,
    /// Pending hint toggle for an unmaterialized cache (0 = process
    /// default, 1 = off, 2 = on).
    hints_override: AtomicU8,
    /// Advisory interleave knobs: the LCT has no interleaved read engine —
    /// bulk reads always take the scalar memo path — but the knobs are
    /// stored and reported so backend-generic callers can flip them freely.
    interleaved: AtomicBool,
    interleave_width: AtomicU8,
    /// Spanning-tree neighbor lists (one level), maintained by
    /// `link`/`prepare_cut`; drives mark walks and edge enumeration.
    nbrs: AdjacencyStore<u32>,
    tree_edges: AtomicUsize,
    /// Reclamation domain: nothing is ever retired (nodes are permanent),
    /// but the domain makes [`DynamicForest::pin`] meaningful and keeps the
    /// trait's epoch integration uniform across backends.
    epoch: EpochDomain,
}

impl LctForest {
    /// Creates a forest of `n` isolated vertices. The seed is accepted for
    /// [`DynamicForest::with_seed`] symmetry and ignored — splay trees have
    /// no random structure.
    pub fn new(n: usize) -> Self {
        assert!(
            n < (1usize << 31),
            "LctForest packs parent vertex ids in 31 bits (n = {n})"
        );
        LctForest {
            nodes: (0..n).map(|_| LctNode::new()).collect(),
            versions: (0..n).map(|_| AtomicU64::new(0)).collect(),
            locks: OnceLock::new(),
            hints: OnceLock::new(),
            hints_override: AtomicU8::new(0),
            interleaved: AtomicBool::new(false),
            interleave_width: AtomicU8::new(crate::forest::MAX_INTERLEAVE_WIDTH as u8 / 4),
            nbrs: AdjacencyStore::new(1, n),
            tree_edges: AtomicUsize::new(0),
            epoch: EpochDomain::new(),
        }
    }

    // ----- field helpers ----------------------------------------------------

    #[inline]
    fn up_word(&self, x: u32) -> u32 {
        self.nodes[x as usize].up.load(Ordering::Acquire)
    }

    #[inline]
    fn set_up_word(&self, x: u32, word: u32) {
        self.nodes[x as usize].up.store(word, Ordering::Release);
    }

    #[inline]
    fn left(&self, x: u32) -> u32 {
        self.nodes[x as usize].left.load(Ordering::Relaxed)
    }

    #[inline]
    fn right(&self, x: u32) -> u32 {
        self.nodes[x as usize].right.load(Ordering::Relaxed)
    }

    #[inline]
    fn set_left(&self, x: u32, c: u32) {
        self.nodes[x as usize].left.store(c, Ordering::Relaxed);
    }

    #[inline]
    fn set_right(&self, x: u32, c: u32) {
        self.nodes[x as usize].right.store(c, Ordering::Relaxed);
    }

    #[inline]
    fn size(&self, x: u32) -> u32 {
        self.nodes[x as usize].size.load(Ordering::Relaxed)
    }

    #[inline]
    fn size_of(&self, x: u32) -> u32 {
        if x == NONE {
            0
        } else {
            self.size(x)
        }
    }

    #[inline]
    fn vsize(&self, x: u32) -> u32 {
        self.nodes[x as usize].vsize.load(Ordering::Relaxed)
    }

    #[inline]
    fn set_vsize(&self, x: u32, v: u32) {
        self.nodes[x as usize].vsize.store(v, Ordering::Relaxed);
    }

    #[inline]
    fn flag(&self, x: u32, bit: u8) -> bool {
        self.nodes[x as usize].flags.load(Ordering::Relaxed) & bit != 0
    }

    #[inline]
    fn raise_flag(&self, x: u32, bit: u8) {
        self.nodes[x as usize]
            .flags
            .fetch_or(bit, Ordering::Relaxed);
    }

    #[inline]
    fn clear_flag(&self, x: u32, bit: u8) {
        self.nodes[x as usize]
            .flags
            .fetch_and(!bit, Ordering::Relaxed);
    }

    #[inline]
    fn toggle_flag(&self, x: u32, bit: u8) {
        self.nodes[x as usize]
            .flags
            .fetch_xor(bit, Ordering::Relaxed);
    }

    /// Recomputes `size(x)` from children and `vsize` (writer-only).
    #[inline]
    fn update(&self, x: u32) {
        let s = 1 + self.size_of(self.left(x)) + self.size_of(self.right(x)) + self.vsize(x);
        self.nodes[x as usize].size.store(s, Ordering::Relaxed);
    }

    /// Reads a root version word (Acquire; see the ETT twin for the
    /// memory-ordering rationale).
    #[inline]
    fn version_of_vertex(&self, root: u32) -> u64 {
        self.versions[root as usize].load(Ordering::Acquire)
    }

    /// Bumps vertex `r`'s version word (Release) and surfaces the hint
    /// invalidation, exactly like `EulerForest::bump_root_version`.
    #[inline]
    fn bump_vertex(&self, r: u32) {
        let version = self.versions[r as usize].fetch_add(1, Ordering::Release) + 1;
        dc_obs::counter_add(dc_obs::Counter::HintInvalidations, 1);
        dc_obs::event(dc_obs::EventKind::HintInvalidation, r as u64, version);
    }

    // ----- writer-side navigation -------------------------------------------

    /// Splay parent of `x`, bounded by the writer-side piece structure:
    /// a node wearing `F_SINK` is a piece apex — its `up` word may be a
    /// stale window word that *looks* like a splay word, so the flag is
    /// checked first and splays can never rotate across a piece boundary.
    #[inline]
    fn splay_parent(&self, x: u32) -> Option<u32> {
        if self.flag(x, F_SINK) {
            return None;
        }
        let w = self.up_word(x);
        if w == UP_NONE || w & UP_PATH != 0 {
            None
        } else {
            Some(w)
        }
    }

    /// Writer-exact apex of `v`'s piece: climb masked `up` words, stopping
    /// at the `F_SINK` marker (not at `up == none`), so the climb is exact
    /// even inside a prepared-cut window where the detached apex wears a
    /// stale word. Valid only under the component's lock.
    fn writer_root(&self, v: u32) -> u32 {
        let mut cur = v;
        while !self.flag(cur, F_SINK) {
            let w = self.up_word(cur);
            debug_assert_ne!(w, UP_NONE, "non-sink node {cur} has no parent");
            cur = w & !UP_PATH;
        }
        cur
    }

    /// Pushes a pending lazy reversal one level down (writer-only: child
    /// pointers swap, children's flip bits toggle, `up` words untouched —
    /// which is what makes evert reader-invisible).
    fn push_flip(&self, x: u32) {
        if !self.flag(x, F_FLIP) {
            return;
        }
        let l = self.left(x);
        let r = self.right(x);
        self.set_left(x, r);
        self.set_right(x, l);
        for c in [l, r] {
            if c != NONE {
                self.toggle_flag(c, F_FLIP);
            }
        }
        self.clear_flag(x, F_FLIP);
    }

    /// One splay rotation of `x` over its splay parent.
    ///
    /// Store order is the safety-critical part (module docs): transferred
    /// child, then `p.up := x` (possibly forming a bounded transient cycle
    /// if `p` was the apex), then `x.up :=` p's old word **verbatim** —
    /// including a stale prepared-window word, which is exactly how the
    /// window migrates to the new apex. Never the reverse: clearing `x.up`
    /// first would expose two sinks. If `p` was the piece apex, the
    /// `F_SINK` marker transfers and the deposed `p` is bumped (generalized
    /// rule 2).
    ///
    /// Flips must already be pushed at `p` and `x`.
    fn rotate(&self, x: u32) {
        let p = self
            .splay_parent(x)
            .expect("rotate requires a splay parent");
        debug_assert!(!self.flag(p, F_FLIP) && !self.flag(x, F_FLIP));
        let g_word = self.up_word(p);
        let p_was_sink = self.flag(p, F_SINK);
        let x_is_left = self.left(p) == x;
        let b = if x_is_left {
            self.right(x)
        } else {
            self.left(x)
        };

        // Writer-only rewiring first (invisible to readers).
        if x_is_left {
            self.set_left(p, b);
            self.set_right(x, p);
        } else {
            self.set_right(p, b);
            self.set_left(x, p);
        }
        // Fix the grandparent's child pointer — only when p's old word was a
        // *real* splay word (an apex's stale window word may decode as one,
        // but it points into another piece and must not be dereferenced).
        if !p_was_sink && g_word != UP_NONE && g_word & UP_PATH == 0 {
            if self.left(g_word) == p {
                self.set_left(g_word, x);
            } else {
                debug_assert_eq!(self.right(g_word), p);
                self.set_right(g_word, x);
            }
        }

        // Reader-visible stores, in the no-two-sinks order.
        if b != NONE {
            self.set_up_word(b, p);
        }
        self.set_up_word(p, x);
        self.set_up_word(x, g_word);

        if p_was_sink {
            self.clear_flag(p, F_SINK);
            self.raise_flag(x, F_SINK);
            // Generalized rule 2: p stopped being the apex at the store
            // above; claims installed on it while it reigned must die.
            self.bump_vertex(p);
        }

        self.update(p);
        self.update(x);
    }

    /// Splays `x` to the root of its splay tree (bounded by the piece: the
    /// collected ancestor path stops at path parents and at `F_SINK`).
    fn splay(&self, x: u32) {
        let mut path = SPLAY_PATH.with(|s| s.take());
        path.clear();
        path.push(x);
        while let Some(&top) = path.last() {
            match self.splay_parent(top) {
                Some(p) => path.push(p),
                None => break,
            }
        }
        for &n in path.iter().rev() {
            self.push_flip(n);
        }
        path.clear();
        SPLAY_PATH.with(|s| s.set(path));

        while let Some(p) = self.splay_parent(x) {
            if let Some(g) = self.splay_parent(p) {
                if (self.left(g) == p) == (self.left(p) == x) {
                    self.rotate(p); // zig-zig
                    self.rotate(x);
                } else {
                    self.rotate(x); // zig-zag
                    self.rotate(x);
                }
            } else {
                self.rotate(x); // zig
            }
        }
    }

    /// Makes the path from `v`'s piece root to `v` preferred and `v` the
    /// apex of its piece's topmost splay tree (with `F_SINK` and the
    /// piece's apex `up` word). Bumps the entering apex first (rule 1).
    fn access(&self, v: u32) {
        let apex = self.writer_root(v);
        // Rule 1: bump before the first reader-visible store of this
        // restructuring (over-bumping when no rotation follows is safe).
        self.bump_vertex(apex);
        self.splay(v);
        // Demote v's preferred right (deeper) segment to a virtual subtree:
        // a pure kind-bit flip — the pointer value is unchanged, so readers
        // never notice.
        let r = self.right(v);
        if r != NONE {
            self.set_right(v, NONE);
            self.set_up_word(r, v | UP_PATH);
            self.set_vsize(v, self.vsize(v) + self.size(r));
            self.update(v);
        }
        // Hop path parents, splicing v's splay tree into each.
        while !self.flag(v, F_SINK) {
            let w_word = self.up_word(v);
            debug_assert_ne!(w_word, UP_NONE, "non-apex splay root without parent");
            debug_assert_ne!(w_word & UP_PATH, 0, "splay root's word must be a path word");
            let w = w_word & !UP_PATH;
            self.splay(w);
            // Demote w's old preferred right segment...
            let wr = self.right(w);
            if wr != NONE {
                self.set_up_word(wr, w | UP_PATH);
                self.set_vsize(w, self.vsize(w) + self.size(wr));
            }
            // ...and promote v's segment in its place (again pure kind-bit
            // flips: both stores keep the pointer values readers see).
            self.set_right(w, v);
            self.set_up_word(v, w);
            self.set_vsize(w, self.vsize(w) - self.size(v));
            self.update(w);
            // One zig brings v to the top of w's splay tree (inheriting w's
            // word — and the apex marker plus deposing bump if w was it).
            self.rotate(v);
        }
    }

    /// Makes `v` the represented root of its piece. Reader-invisible beyond
    /// `access` itself: the reversal only toggles writer-side flip bits.
    fn evert(&self, v: u32) {
        self.access(v);
        self.toggle_flag(v, F_FLIP);
        self.push_flip(v);
    }

    // ----- lock-free reads (Listing 1 + root hints) -------------------------

    /// The raw Listing-1 climb: masked `up` words to the sink, then the
    /// sink's version (Acquire). No pin required — nodes are permanent.
    fn find_root_walk(&self, v: u32) -> (u32, u64) {
        let mut cur = v;
        loop {
            let w = self.nodes[cur as usize].up.load(Ordering::Acquire);
            if w == UP_NONE {
                break;
            }
            cur = w & !UP_PATH;
        }
        (cur, self.version_of_vertex(cur))
    }

    fn hints(&self) -> &HintCache {
        self.hints.get_or_init(|| {
            let cache = HintCache::new(self.nodes.len());
            match self.hints_override.load(Ordering::Relaxed) {
                1 => cache.set_enabled(false),
                2 => cache.set_enabled(true),
                _ => {}
            }
            cache
        })
    }

    fn hints_enabled(&self) -> bool {
        match self.hints.get() {
            Some(hints) => hints.is_enabled(),
            None => match self.hints_override.load(Ordering::Relaxed) {
                1 => false,
                2 => true,
                _ => crate::hints::default_read_hints(),
            },
        }
    }

    fn validate_hint(&self, raw: u64) -> Option<(u32, u64)> {
        let (root, ver32) = HintCache::decode(raw)?;
        let cur = self.version_of_vertex(root);
        (cur as u32 == ver32).then_some((root, cur))
    }

    /// Validated `(root_vertex, version)` resolution — the hint fast path
    /// over the double-walk, identical in shape to the ETT's.
    pub fn resolve_root_validated(&self, v: u32) -> (u32, u64) {
        let hints = self.hints_enabled().then(|| self.hints());
        let observed = hints.map(|h| h.raw(v));
        if let (Some(hints), Some(observed)) = (hints, observed) {
            if let Some((root, version)) = self.validate_hint(observed) {
                hints.record_hit();
                return (root, version);
            }
            hints.record_miss();
        }
        loop {
            let (r, version) = self.find_root_walk(v);
            if self.find_root_walk(v) == (r, version) {
                if let (Some(hints), Some(observed)) = (hints, observed) {
                    hints.install(v, observed, r, version);
                }
                return (r, version);
            }
        }
    }

    /// Linearizable, non-blocking connectivity check (Listing 1 with the
    /// hint fast path; see `EulerForest::connected` for the protocol).
    pub fn connected(&self, u: u32, v: u32) -> bool {
        loop {
            let (ru, ver_u) = self.resolve_root_validated(u);
            let (rv, ver_v) = self.resolve_root_validated(v);
            if ru == rv {
                if ver_u == ver_v {
                    return true;
                }
            } else if self.version_of_vertex(ru) == ver_u
                && self.version_of_vertex(rv) == ver_v
                && self.version_of_vertex(ru) == ver_u
            {
                return false;
            }
        }
    }

    /// The scalar memoized bulk read path (the same algorithm as
    /// `EulerForest::connected_many_scalar_into`). The LCT has no
    /// interleaved engine, so this *is* its bulk door.
    pub fn connected_many_scalar_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        out.reserve(pairs.len());
        if pairs.len() < 4 {
            for &(u, v) in pairs {
                out.push(u == v || self.connected(u, v));
            }
            return;
        }
        let mut endpoints: Vec<u32> = Vec::with_capacity(pairs.len() * 2);
        for &(u, v) in pairs {
            endpoints.push(u);
            endpoints.push(v);
        }
        endpoints.sort_unstable();
        endpoints.dedup();
        let mut memo: Vec<(u32, u64)> = endpoints
            .iter()
            .map(|&e| self.resolve_root_validated(e))
            .collect();
        let index = |x: u32| {
            endpoints
                .binary_search(&x)
                .expect("endpoint collected above")
        };
        for &(u, v) in pairs {
            if u == v {
                out.push(true);
                continue;
            }
            let (iu, iv) = (index(u), index(v));
            loop {
                let (ru, ver_u) = memo[iu];
                let (rv, ver_v) = memo[iv];
                let valid = if ru == rv {
                    ver_u == ver_v
                } else {
                    self.version_of_vertex(ru) == ver_u
                        && self.version_of_vertex(rv) == ver_v
                        && self.version_of_vertex(ru) == ver_u
                };
                if valid {
                    out.push(ru == rv);
                    break;
                }
                memo[iu] = self.resolve_root_validated(u);
                memo[iv] = self.resolve_root_validated(v);
            }
        }
    }

    // ----- structural operations (single writer per component) --------------

    /// Adds the spanning edge `(u, v)`. The endpoints must be in different
    /// trees — or different pieces of one prepared-cut window (the
    /// replacement path), in which case this closes the window.
    pub fn link(&self, u: u32, v: u32) {
        debug_assert!(u != v, "self-loops cannot be spanning edges");
        self.evert(u);
        self.access(v);
        debug_assert_ne!(u, self.writer_root(v), "link({u}, {v}): same piece");

        // u is its piece's represented root and apex; hang the whole piece
        // off v as a virtual child. The store is the linearization point of
        // the merge.
        self.clear_flag(u, F_SINK);
        self.set_up_word(u, v | UP_PATH);
        // Rule 2: u stopped being a representative at the store above.
        self.bump_vertex(u);
        self.set_vsize(v, self.vsize(v) + self.size(u));
        self.update(v);

        // Window-closing epilogue: if v's apex word is a stale prepared-cut
        // word (v came from the detached piece of an open window), readers
        // now loop detached-piece → v → stale word → retained piece → v
        // with *no sink*; clearing after the attach (never before — that
        // order would expose two sinks) breaks the cycle and ends the
        // window. Outside a window this is a value no-op or the attach
        // already overwrote the stale word.
        if self.up_word(v) != UP_NONE {
            self.set_up_word(v, UP_NONE);
        }

        self.nbrs.add(0, u, v);
        self.nbrs.add(0, v, u);
        self.tree_edges.fetch_add(1, Ordering::Relaxed);
    }

    /// Physically splits around spanning edge `(u, v)` while readers still
    /// observe one component (see the module docs on windows).
    pub fn prepare_cut(&self, u: u32, v: u32) -> PreparedLctCut {
        debug_assert!(
            self.nbrs.contains(0, u, &v),
            "cut({u}, {v}): not a spanning edge"
        );
        self.evert(u);
        self.access(v);
        // The preferred path is now exactly [u, v]: u is v's left child.
        debug_assert_eq!(self.left(v), u);
        debug_assert_eq!(self.right(v), NONE);

        let detached_size = self.size(u); // u + its virtual subtrees = u's whole piece
        self.set_left(v, NONE);
        self.update(v);
        // u keeps its stale up word (= v, splay kind): readers still see one
        // component. The writer-side sink marker opens the window.
        self.raise_flag(u, F_SINK);

        self.nbrs.remove(0, u, &v);
        self.nbrs.remove(0, v, &u);
        self.tree_edges.fetch_sub(1, Ordering::Relaxed);

        PreparedLctCut {
            retained_root: v,
            detached_root: u,
            retained_size: self.size(v),
            detached_size,
        }
    }

    /// Logically applies a prepared cut — the linearization point of a
    /// removal without replacement. Same bump order as the ETT: detached
    /// before the store (rule 1 for the new component), retained after
    /// (rule 2: it stops representing the detached piece).
    pub fn commit_cut(&self, cut: &PreparedLctCut) {
        self.bump_vertex(cut.detached_root);
        self.set_up_word(cut.detached_root, UP_NONE);
        self.bump_vertex(cut.retained_root);
    }

    /// The replacement-found path: nothing to release — LCT nodes are
    /// permanent and [`LctForest::link`] already closed the window.
    pub fn retire_cut_nodes(&self, _cut: &PreparedLctCut) {}

    /// `prepare_cut` + `commit_cut`.
    pub fn cut(&self, u: u32, v: u32) -> PreparedLctCut {
        let cut = self.prepare_cut(u, v);
        self.commit_cut(&cut);
        cut
    }

    // ----- validation -------------------------------------------------------

    /// Exhaustive structural check (writer-quiescent callers only).
    pub fn validate(&self) {
        let n = self.nodes.len();
        let mut expected_vsize = vec![0u64; n];
        let mut sinks_per_apex = vec![0u32; n];
        let mut apex_of = vec![NONE; n];
        for x in 0..n as u32 {
            let w = self.up_word(x);
            if w == UP_NONE {
                assert!(
                    self.flag(x, F_SINK),
                    "vertex {x}: up == none but F_SINK is clear"
                );
            } else {
                assert!(
                    !self.flag(x, F_SINK),
                    "vertex {x}: quiescent non-root wears F_SINK (open window?)"
                );
                let p = w & !UP_PATH;
                assert!((p as usize) < n, "vertex {x}: parent {p} out of range");
                if w & UP_PATH == 0 {
                    assert!(
                        self.left(p) == x || self.right(p) == x,
                        "vertex {x}: splay parent {p} does not own it as a child"
                    );
                } else {
                    assert!(
                        self.left(p) != x && self.right(p) != x,
                        "vertex {x}: path parent {p} also owns it as a splay child"
                    );
                    // A path child is the root of its own splay tree whose
                    // whole piece-subtree counts into p's vsize.
                    expected_vsize[p as usize] += self.size(x) as u64;
                }
            }
            for c in [self.left(x), self.right(x)] {
                if c != NONE {
                    assert_eq!(
                        self.up_word(c),
                        x,
                        "child {c} of {x} does not point back with a splay word"
                    );
                }
            }
            // Size recurrence (flip-invariant: reversal only swaps children).
            assert_eq!(
                self.size(x),
                1 + self.size_of(self.left(x)) + self.size_of(self.right(x)) + self.vsize(x),
                "vertex {x}: size recurrence violated"
            );
            let (apex, _) = self.find_root_walk(x);
            apex_of[x as usize] = apex;
        }
        for x in 0..n as u32 {
            assert_eq!(
                self.vsize(x) as u64,
                expected_vsize[x as usize],
                "vertex {x}: vsize does not match its path children"
            );
            if self.up_word(x) == UP_NONE {
                sinks_per_apex[x as usize] += 1;
            }
        }
        // Component sizes: each apex's size counts exactly its climb set.
        let mut members = vec![0u32; n];
        for x in 0..n as u32 {
            members[apex_of[x as usize] as usize] += 1;
        }
        for x in 0..n as u32 {
            if self.up_word(x) == UP_NONE {
                assert_eq!(sinks_per_apex[x as usize], 1);
                assert_eq!(
                    self.size(x),
                    members[x as usize],
                    "apex {x}: size != component vertex count"
                );
            }
        }
        // Adjacency: symmetric, consistent with the climb partition, and
        // exactly 2 * tree_edges directed entries forming a forest.
        let mut directed = 0usize;
        self.nbrs.for_each_entry(|_, vertex, nbr| {
            directed += 1;
            assert!(
                self.nbrs.contains(0, nbr, &vertex),
                "adjacency not symmetric: ({vertex}, {nbr})"
            );
            assert_eq!(
                apex_of[vertex as usize], apex_of[nbr as usize],
                "tree edge ({vertex}, {nbr}) crosses components"
            );
        });
        assert_eq!(directed, 2 * self.tree_edges.load(Ordering::Relaxed));
        // Forest check: edges == vertices - components.
        let components = (0..n as u32)
            .filter(|&x| self.up_word(x) == UP_NONE)
            .count();
        assert_eq!(
            self.tree_edges.load(Ordering::Relaxed),
            n - components,
            "tree-edge count is not vertices - components"
        );
    }
}

impl DynamicForest for LctForest {
    type Root = u32;
    type Prepared = PreparedLctCut;

    const BACKEND: &'static str = "lct";

    fn with_seed(n: usize, _seed: u64) -> Self {
        LctForest::new(n)
    }

    fn num_vertices(&self) -> usize {
        self.nodes.len()
    }

    fn num_tree_edges(&self) -> usize {
        self.tree_edges.load(Ordering::Relaxed)
    }

    fn has_tree_edge(&self, u: u32, v: u32) -> bool {
        self.nbrs.contains(0, u, &v)
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        LctForest::connected(self, u, v)
    }

    fn resolve_root_validated(&self, v: u32) -> (u32, u64) {
        LctForest::resolve_root_validated(self, v)
    }

    fn connected_many_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        // No interleaved engine: the scalar memo path is the bulk door.
        self.connected_many_scalar_into(pairs, out);
    }

    fn connected_many_scalar_into(&self, pairs: &[(u32, u32)], out: &mut Vec<bool>) {
        LctForest::connected_many_scalar_into(self, pairs, out);
    }

    fn find_root_node(&self, v: u32) -> u32 {
        // Exact reader-style climb; never the hint cache (protocol-critical
        // callers — see the trait docs).
        self.find_root_walk(v).0
    }

    fn is_current_root(&self, r: u32) -> bool {
        self.up_word(r) == UP_NONE
    }

    fn root_lock(&self, r: u32) -> &RawRwLock {
        let locks = self
            .locks
            .get_or_init(|| (0..self.nodes.len()).map(|_| RawRwLock::new()).collect());
        &locks[r as usize]
    }

    fn pin(&self) -> EpochGuard<'_> {
        self.epoch.pin()
    }

    fn node_occupancy(&self) -> usize {
        self.nodes.len()
    }

    fn component_root(&self, v: u32) -> u32 {
        self.writer_root(v)
    }

    fn same_tree_locked(&self, u: u32, v: u32) -> bool {
        self.writer_root(u) == self.writer_root(v)
    }

    fn tree_size(&self, root: u32) -> u32 {
        self.size(root)
    }

    fn component_size(&self, v: u32) -> u32 {
        self.size(self.writer_root(v))
    }

    fn link(&self, u: u32, v: u32) {
        LctForest::link(self, u, v)
    }

    fn try_link(&self, u: u32, v: u32) -> Result<(), crate::arena::ArenaExhausted> {
        // LCT nodes are permanent and vertex-indexed — link allocates
        // nothing, so genuine exhaustion cannot happen here. The injection
        // point is still consulted so a chaos soak exercises the typed
        // rejection path on this backend too.
        if dc_faults::should_inject(dc_faults::InjectionPoint::ArenaAlloc) {
            return Err(crate::arena::ArenaExhausted);
        }
        LctForest::link(self, u, v);
        Ok(())
    }

    fn prepare_cut(&self, u: u32, v: u32) -> PreparedLctCut {
        LctForest::prepare_cut(self, u, v)
    }

    fn commit_cut(&self, cut: &PreparedLctCut) {
        LctForest::commit_cut(self, cut)
    }

    fn retire_cut_nodes(&self, cut: &PreparedLctCut) {
        LctForest::retire_cut_nodes(self, cut)
    }

    fn cut(&self, u: u32, v: u32) {
        let _ = LctForest::cut(self, u, v);
    }

    fn smaller_piece(&self, cut: &PreparedLctCut) -> (u32, u32) {
        cut.smaller_piece()
    }

    fn set_vertex_self_mark(&self, v: u32, mark: Mark, value: bool) {
        if value {
            self.raise_flag(v, self_mark_bit(mark));
        } else {
            self.clear_flag(v, self_mark_bit(mark));
        }
    }

    fn vertex_self_mark(&self, v: u32, mark: Mark) -> bool {
        self.flag(v, self_mark_bit(mark))
    }

    fn mark_path_upward(&self, v: u32, mark: Mark) {
        // No aggregates to raise (module docs): the self mark alone makes
        // the vertex visible to `visit_marked_vertices`' full-piece walk.
        // RMW, so it is lock-free-safe against concurrent writer flag ops.
        self.raise_flag(v, self_mark_bit(mark));
    }

    /// Parent-tracking DFS over the spanning-tree adjacency from the apex's
    /// vertex, calling `f` for self-marked vertices. No aggregate pruning —
    /// the whole piece is enumerated (module docs). The adjacency was
    /// already severed by `prepare_cut`, so inside a window the walk stays
    /// within `root`'s piece.
    fn visit_marked_vertices(
        &self,
        root: u32,
        mark: Mark,
        f: &mut dyn FnMut(u32) -> ControlFlow<()>,
    ) {
        let bit = self_mark_bit(mark);
        let mut stack = DFS_STACK.with(|s| s.take());
        stack.clear();
        stack.push((root, NONE));
        while let Some((x, parent)) = stack.pop() {
            if self.flag(x, bit) && f(x).is_break() {
                break;
            }
            let _ = self.nbrs.for_each_edge(0, x, |y| {
                if y != parent {
                    stack.push((y, x));
                }
                ControlFlow::Continue(())
            });
        }
        stack.clear();
        DFS_STACK.with(|s| s.set(stack));
    }

    fn for_each_tree_edge(&self, f: &mut dyn FnMut(u32, u32)) {
        self.nbrs.for_each_entry(|_, vertex, nbr| {
            if vertex < nbr {
                f(vertex, nbr);
            }
        });
    }

    fn set_read_hints(&self, enabled: bool) {
        self.hints_override
            .store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
        if let Some(hints) = self.hints.get() {
            hints.set_enabled(enabled);
        }
    }

    fn read_hints_enabled(&self) -> bool {
        self.hints_enabled()
    }

    fn read_hint_stats(&self) -> (u64, u64) {
        match self.hints.get() {
            Some(hints) => (hints.hits(), hints.misses()),
            None => (0, 0),
        }
    }

    fn hints_materialized(&self) -> bool {
        self.hints.get().is_some()
    }

    fn hint_valid(&self, v: u32) -> bool {
        match self.hints.get().map(|h| HintCache::decode(h.raw(v))) {
            Some(Some((root, ver32))) => self.version_of_vertex(root) as u32 == ver32,
            _ => false,
        }
    }

    fn set_interleaved_reads(&self, enabled: bool) {
        self.interleaved.store(enabled, Ordering::Relaxed);
    }

    fn interleaved_reads_enabled(&self) -> bool {
        self.interleaved.load(Ordering::Relaxed)
    }

    fn set_interleave_width(&self, width: usize) {
        let clamped = width.clamp(1, crate::forest::MAX_INTERLEAVE_WIDTH) as u8;
        self.interleave_width.store(clamped, Ordering::Relaxed);
    }

    fn interleave_width(&self) -> usize {
        self.interleave_width.load(Ordering::Relaxed) as usize
    }

    fn validate(&self) {
        LctForest::validate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_cut_connected_basics() {
        let f = LctForest::new(8);
        assert!(!f.connected(0, 3));
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        f.validate();
        assert!(f.connected(0, 3));
        assert_eq!(DynamicForest::num_tree_edges(&f), 3);
        assert_eq!(DynamicForest::component_size(&f, 0), 4);
        let _ = f.cut(1, 2);
        f.validate();
        assert!(!f.connected(0, 3));
        assert!(f.connected(0, 1));
        assert!(f.connected(2, 3));
        assert_eq!(DynamicForest::component_size(&f, 3), 2);
    }

    #[test]
    fn cut_any_edge_of_a_star_and_a_path() {
        // Paths and stars exercise both deep splay chains and wide virtual
        // fans.
        let f = LctForest::new(16);
        for i in 1..16 {
            f.link(0, i);
        }
        f.validate();
        assert_eq!(DynamicForest::component_size(&f, 0), 16);
        let _ = f.cut(0, 7);
        f.validate();
        assert!(!f.connected(3, 7));
        assert_eq!(DynamicForest::component_size(&f, 7), 1);

        let p = LctForest::new(16);
        for i in 0..15 {
            p.link(i, i + 1);
        }
        p.validate();
        assert!(p.connected(0, 15));
        let _ = p.cut(7, 8);
        p.validate();
        assert!(p.connected(0, 7));
        assert!(p.connected(8, 15));
        assert!(!p.connected(0, 15));
    }

    #[test]
    fn prepared_window_reads_one_component_until_commit() {
        let f = LctForest::new(6);
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        let cut = f.prepare_cut(1, 2);
        // Physically split, logically whole: readers still see one
        // component through the stale apex word.
        assert!(f.connected(0, 3));
        assert_eq!(cut.retained_size + cut.detached_size, 4);
        // Writer-side sees two pieces.
        assert_ne!(f.writer_root(0), f.writer_root(3));
        f.commit_cut(&cut);
        assert!(!f.connected(0, 3));
        f.validate();
    }

    #[test]
    fn replacement_link_inside_a_window_closes_it() {
        let f = LctForest::new(6);
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        let cut = f.prepare_cut(1, 2);
        // Replacement found in either orientation: link across the window.
        f.link(0, 3);
        f.retire_cut_nodes(&cut);
        f.validate();
        assert!(f.connected(1, 2));
        assert_eq!(DynamicForest::component_size(&f, 0), 4);

        // The other orientation: detached-side endpoint second.
        let g = LctForest::new(6);
        g.link(0, 1);
        g.link(1, 2);
        g.link(2, 3);
        let cut = g.prepare_cut(1, 2);
        g.link(3, 0);
        g.retire_cut_nodes(&cut);
        g.validate();
        assert!(g.connected(1, 2));
    }

    #[test]
    fn randomized_against_a_naive_forest() {
        // Deterministic SplitMix64 walk over link/cut/connected against a
        // recomputing oracle.
        struct Oracle {
            edges: Vec<(u32, u32)>,
            n: u32,
        }
        impl Oracle {
            fn connected(&self, u: u32, v: u32) -> bool {
                let mut stack = vec![u];
                let mut seen = vec![false; self.n as usize];
                seen[u as usize] = true;
                while let Some(x) = stack.pop() {
                    if x == v {
                        return true;
                    }
                    for &(a, b) in &self.edges {
                        let y = if a == x {
                            b
                        } else if b == x {
                            a
                        } else {
                            continue;
                        };
                        if !seen[y as usize] {
                            seen[y as usize] = true;
                            stack.push(y);
                        }
                    }
                }
                false
            }
        }
        let n = 24u32;
        let f = LctForest::new(n as usize);
        let mut oracle = Oracle {
            edges: Vec::new(),
            n,
        };
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for step in 0..4000 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u == v {
                continue;
            }
            match next() % 3 {
                0 => {
                    if !oracle.connected(u, v) {
                        f.link(u, v);
                        oracle.edges.push((u.min(v), u.max(v)));
                    }
                }
                1 => {
                    if oracle.edges.contains(&(u.min(v), u.max(v))) {
                        let _ = f.cut(u, v);
                        oracle.edges.retain(|&e| e != (u.min(v), u.max(v)));
                    }
                }
                _ => {
                    assert_eq!(
                        f.connected(u, v),
                        oracle.connected(u, v),
                        "step {step}: connected({u}, {v}) diverged"
                    );
                }
            }
            if step % 512 == 0 {
                f.validate();
            }
        }
        f.validate();
    }

    #[test]
    fn marks_and_visits() {
        let f = LctForest::new(8);
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        DynamicForest::mark_path_upward(&f, 2, Mark::NonSpanning);
        let root = DynamicForest::component_root(&f, 0);
        let mut seen = Vec::new();
        DynamicForest::visit_marked_vertices(&f, root, Mark::NonSpanning, &mut |v| {
            seen.push(v);
            ControlFlow::Continue(())
        });
        assert_eq!(seen, vec![2]);
        DynamicForest::set_vertex_self_mark(&f, 2, Mark::NonSpanning, false);
        seen.clear();
        DynamicForest::visit_marked_vertices(&f, root, Mark::NonSpanning, &mut |v| {
            seen.push(v);
            ControlFlow::Continue(())
        });
        assert!(seen.is_empty());
    }

    #[test]
    fn tree_edge_enumeration_is_normalized() {
        let f = LctForest::new(6);
        f.link(3, 1);
        f.link(1, 4);
        let mut edges = Vec::new();
        DynamicForest::for_each_tree_edge(&f, &mut |u, v| edges.push((u, v)));
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 3), (1, 4)]);
        assert!(DynamicForest::has_tree_edge(&f, 1, 3));
        assert!(DynamicForest::has_tree_edge(&f, 3, 1));
        assert!(!DynamicForest::has_tree_edge(&f, 3, 4));
    }
}
