//! The version-validated root-hint cache behind O(1)-amortized reads.
//!
//! Every `connected(u, v)` of the baseline protocol pays two full O(depth)
//! parent-pointer climbs, each hop a dependent cache miss.  On components
//! that are not being restructured — the overwhelming majority of traffic in
//! query-dominated workloads — those climbs rediscover the same root over
//! and over.  The [`HintCache`] short-circuits them: one atomic `u64` slot
//! per vertex packs a `(root_vertex, version)` claim
//!
//! ```text
//!   bits 63..32: low 32 bits of the root's version at snapshot time
//!   bits 31..0:  vertex id of the snapshotted component root
//! ```
//!
//! A hint is a *time-independent claim*: "there was an instant at which
//! vertex `v`'s component root was `root_vertex` **and** that root's version
//! was `version`".  Readers install hints only from snapshots validated by
//! the paper's Listing-1 retry protocol (see
//! [`crate::forest::EulerForest::connected`]), so every published claim is
//! true.  Validation is then a single load: because writers bump a root's
//! version *before* any structural change to its component and versions are
//! monotone, "the hinted root's current version still equals the recorded
//! one" implies the component is unchanged since the snapshot instant — so
//! the hinted root is *still* `v`'s root, with no tree traversal at all.
//! The full safety argument, including the linearizability sandwich for
//! two-vertex queries and the 32-bit wraparound caveat, lives in
//! `DESIGN.md` §8.
//!
//! The cache is strictly an accelerator: a miss (empty slot, stale version,
//! or a disabled cache) falls back to the climb, and any thread may
//! overwrite any slot at any time without affecting correctness.  Slots are
//! CAS-filled — a reader only replaces the exact value it observed, so a
//! slow reader cannot clobber a fresher hint installed while it climbed.
//!
//! Hit/miss counters are striped across padded cache lines (readers on
//! different threads must not serialize on a shared counter word) and are
//! surfaced per-structure through `dynconn::StatsSnapshot`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of padded counter stripes (power of two; threads hash onto them).
const COUNTER_STRIPES: usize = 16;

/// Empty-slot sentinel. A valid encoding can only collide with it for
/// `root_vertex == u32::MAX` *and* `version ≡ u32::MAX (mod 2³²)`; installs
/// that would encode to the sentinel are simply skipped (the vertex keeps
/// climbing — correctness is unaffected).
const EMPTY: u64 = u64::MAX;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The calling thread's counter stripe, assigned round-robin on first
    /// use so bench worker pools spread evenly.
    static STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (COUNTER_STRIPES - 1);
}

/// Process-wide default for whether new forests enable their hint cache
/// (benchmarks flip this around structure construction to measure the read
/// path with hints on and off; both settings are correct).
static DEFAULT_ENABLED: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default consulted when a forest materializes its
/// (lazy) hint cache. Forests that already materialized theirs are
/// unaffected; a never-yet-queried forest adopts the default in effect at
/// its first query. To pin a specific forest regardless of the default, use
/// [`HintCache::set_enabled`] through `EulerForest::set_read_hints`.
pub fn set_default_read_hints(enabled: bool) {
    DEFAULT_ENABLED.store(enabled, Ordering::Relaxed);
}

/// The current process-wide default (see [`set_default_read_hints`]).
pub fn default_read_hints() -> bool {
    DEFAULT_ENABLED.load(Ordering::Relaxed)
}

/// A padded counter stripe: hit and miss words sharing one 128-byte line,
/// but no line with any *other* stripe (or with the hint slots).
#[repr(align(128))]
#[derive(Default)]
struct CounterStripe {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The per-vertex root-hint table; see the module documentation.
pub struct HintCache {
    slots: Box<[AtomicU64]>,
    counters: Box<[CounterStripe]>,
    enabled: AtomicBool,
}

impl HintCache {
    /// Creates an all-empty cache for `n` vertices, enabled per the
    /// process-wide default.
    pub fn new(n: usize) -> Self {
        HintCache {
            slots: (0..n).map(|_| AtomicU64::new(EMPTY)).collect(),
            counters: (0..COUNTER_STRIPES)
                .map(|_| CounterStripe::default())
                .collect(),
            enabled: AtomicBool::new(default_read_hints()),
        }
    }

    /// Whether the fast path consults this cache at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the fast path (hints already installed are kept;
    /// they resume validating when re-enabled).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Reads vertex `v`'s raw slot (the value to pass back to
    /// [`HintCache::install`] as `observed`).
    #[inline]
    pub fn raw(&self, v: u32) -> u64 {
        // Relaxed: the slot value is a self-contained claim whose truth does
        // not depend on when it is read; validation against the root's
        // (Acquire-loaded) version word does all the ordering work.
        self.slots[v as usize].load(Ordering::Relaxed)
    }

    /// Decodes a raw slot into `(root_vertex, version_lo32)`.
    #[inline]
    pub fn decode(raw: u64) -> Option<(u32, u32)> {
        if raw == EMPTY {
            None
        } else {
            Some((raw as u32, (raw >> 32) as u32))
        }
    }

    /// Installs the claim "`v` roots at `root` while `version` is current",
    /// replacing exactly the previously observed raw value (losing the race
    /// to a concurrent — necessarily at-least-as-fresh — install is fine).
    #[inline]
    pub fn install(&self, v: u32, observed: u64, root: u32, version: u64) {
        let encoded = ((version as u32 as u64) << 32) | root as u64;
        if encoded == EMPTY {
            return; // would collide with the empty sentinel; skip
        }
        // Relaxed CAS: claims are self-contained (see `raw`), and failure
        // just means someone installed a fresher claim first.
        let _ = self.slots[v as usize].compare_exchange(
            observed,
            encoded,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Hints the CPU to pull vertex `v`'s slot line into cache ahead of the
    /// [`HintCache::raw`] load — the bulk read path issues these a batch
    /// ahead so a run of slot loads overlaps its misses instead of paying
    /// them serially. Pure hint: no architectural effect (see
    /// `dc_sync::prefetch`).
    #[inline]
    pub fn prefetch_slot(&self, v: u32) {
        if let Some(slot) = self.slots.get(v as usize) {
            dc_sync::prefetch_read(slot as *const AtomicU64);
        }
    }

    /// Records an endpoint resolution answered from a validated hint.
    #[inline]
    pub fn record_hit(&self) {
        self.record_hits_n(1);
    }

    /// Records an endpoint resolution that fell back to a climb.
    #[inline]
    pub fn record_miss(&self) {
        self.record_misses_n(1);
    }

    /// Records `n` hint hits at once (the bulk validation pass counts a
    /// whole run with one thread-local lookup and one atomic add).
    #[inline]
    pub fn record_hits_n(&self, n: u64) {
        if n > 0 {
            STRIPE.with(|&s| self.counters[s].hits.fetch_add(n, Ordering::Relaxed));
            dc_obs::counter_add(dc_obs::Counter::HintHits, n);
        }
    }

    /// Records `n` hint misses at once (see [`HintCache::record_hits_n`]).
    #[inline]
    pub fn record_misses_n(&self, n: u64) {
        if n > 0 {
            STRIPE.with(|&s| self.counters[s].misses.fetch_add(n, Ordering::Relaxed));
            dc_obs::counter_add(dc_obs::Counter::HintMisses, n);
        }
    }

    /// Total endpoint resolutions answered from validated hints.
    pub fn hits(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Total endpoint resolutions that fell back to a climb.
    pub fn misses(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.misses.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for HintCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HintCache")
            .field("vertices", &self.slots.len())
            .field("enabled", &self.is_enabled())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_decodes_to_none() {
        let cache = HintCache::new(4);
        assert_eq!(HintCache::decode(cache.raw(0)), None);
        assert_eq!(HintCache::decode(cache.raw(3)), None);
    }

    #[test]
    fn install_roundtrips_root_and_truncated_version() {
        let cache = HintCache::new(2);
        let observed = cache.raw(1);
        cache.install(1, observed, 7, 0x1_2345_6789); // version > 32 bits
        assert_eq!(HintCache::decode(cache.raw(1)), Some((7, 0x2345_6789)));
    }

    #[test]
    fn install_only_replaces_the_observed_value() {
        let cache = HintCache::new(1);
        let stale = cache.raw(0);
        cache.install(0, stale, 3, 10); // wins
        cache.install(0, stale, 4, 11); // CAS fails: slot moved on
        assert_eq!(HintCache::decode(cache.raw(0)), Some((3, 10)));
    }

    #[test]
    fn sentinel_collision_is_skipped() {
        let cache = HintCache::new(1);
        cache.install(0, cache.raw(0), u32::MAX, u64::from(u32::MAX));
        assert_eq!(HintCache::decode(cache.raw(0)), None);
    }

    #[test]
    fn counters_accumulate_across_stripes() {
        let cache = HintCache::new(1);
        cache.record_hit();
        cache.record_hit();
        cache.record_miss();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| cache.record_hit());
            }
        });
        assert_eq!(cache.hits(), 6);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn default_toggle_controls_new_caches() {
        // Restore the default even if an assert below fails: tests in this
        // binary run in parallel, and a leaked `false` would silently
        // disable hints on structures other tests construct.
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_default_read_hints(true);
            }
        }
        let _restore = Restore;
        assert!(default_read_hints());
        set_default_read_hints(false);
        let off = HintCache::new(1);
        assert!(!off.is_enabled());
        set_default_read_hints(true);
        let on = HintCache::new(1);
        assert!(on.is_enabled());
        off.set_enabled(true);
        assert!(off.is_enabled());
    }
}
