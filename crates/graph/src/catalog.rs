//! A catalog mirroring Table 1 (small graphs) and Table 2 (large graphs) of
//! the paper at a configurable scale factor.
//!
//! The paper's small graphs range from 20k to 435k vertices and its large
//! graphs from 2.1M to 23.9M vertices; benchmark hosts for this reproduction
//! are far smaller than the authors' 144-thread server, so every dataset is
//! exposed through a [`ScaledCatalog`] that shrinks vertex counts while
//! preserving each dataset's *density regime* and component structure — the
//! two properties the evaluation's conclusions hinge on.

use crate::generators;
use crate::types::Graph;

/// Identifies one of the datasets used in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphSpec {
    /// "USA roads" (Colorado): sparse planar road network, one component.
    UsaRoads,
    /// "Twitter": dense power-law social graph.
    Twitter,
    /// "Stanford web": dense power-law web graph.
    StanfordWeb,
    /// "Random, |E| = |V|": sparse Erdős–Rényi graph.
    RandomSparse,
    /// "Random, |E| = 2|V|": sparse Erdős–Rényi graph.
    RandomMedium,
    /// "Random, |E| = |V| log |V|": dense Erdős–Rényi graph.
    RandomDense,
    /// "Random, |E| = |V| sqrt |V|": very dense Erdős–Rényi graph.
    RandomHighDensity,
    /// "Random, 10 components": dense Erdős–Rényi graph in 10 blocks.
    RandomTenComponents,
    /// "Full USA roads" (large): road network, Table 2.
    FullUsaRoads,
    /// "LiveJournal" (large): power-law social graph, Table 2.
    LiveJournal,
    /// "Kron" (large): Kronecker/RMAT graph, Table 2.
    Kronecker,
    /// "Random" (large): Erdős–Rényi graph, Table 2.
    RandomLarge,
}

impl GraphSpec {
    /// All small graphs of Table 1, in the paper's order.
    pub fn table1() -> &'static [GraphSpec] {
        &[
            GraphSpec::UsaRoads,
            GraphSpec::Twitter,
            GraphSpec::StanfordWeb,
            GraphSpec::RandomSparse,
            GraphSpec::RandomMedium,
            GraphSpec::RandomDense,
            GraphSpec::RandomHighDensity,
            GraphSpec::RandomTenComponents,
        ]
    }

    /// All large graphs of Table 2, in the paper's order.
    pub fn table2() -> &'static [GraphSpec] {
        &[
            GraphSpec::FullUsaRoads,
            GraphSpec::LiveJournal,
            GraphSpec::Kronecker,
            GraphSpec::RandomLarge,
        ]
    }

    /// Human-readable name matching the paper's tables and figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            GraphSpec::UsaRoads => "USA roads",
            GraphSpec::Twitter => "Twitter",
            GraphSpec::StanfordWeb => "Stanford web",
            GraphSpec::RandomSparse => "Random, |E| = |V|",
            GraphSpec::RandomMedium => "Random, |E| = 2|V|",
            GraphSpec::RandomDense => "Random, |E| = |V| log |V|",
            GraphSpec::RandomHighDensity => "Random, |E| = |V| sqrt |V|",
            GraphSpec::RandomTenComponents => "Random, 10 components",
            GraphSpec::FullUsaRoads => "Full USA roads",
            GraphSpec::LiveJournal => "LiveJournal",
            GraphSpec::Kronecker => "Kronecker",
            GraphSpec::RandomLarge => "Random",
        }
    }

    /// The vertex / edge counts reported in the paper's Table 1 / Table 2,
    /// before any scaling. Used for documentation output of the `tables`
    /// binary (paper column) next to our generated counts.
    pub fn paper_size(&self) -> (usize, usize) {
        match self {
            GraphSpec::UsaRoads => (435_666, 521_200),
            GraphSpec::Twitter => (81_306, 1_342_296),
            GraphSpec::StanfordWeb => (281_903, 1_992_636),
            GraphSpec::RandomSparse => (400_000, 400_000),
            GraphSpec::RandomMedium => (300_000, 600_000),
            GraphSpec::RandomDense => (100_000, 1_600_000),
            GraphSpec::RandomHighDensity => (20_000, 1_600_000),
            GraphSpec::RandomTenComponents => (100_000, 1_600_000),
            GraphSpec::FullUsaRoads => (23_900_000, 28_900_000),
            GraphSpec::LiveJournal => (4_800_000, 42_900_000),
            GraphSpec::Kronecker => (2_100_000, 91_000_000),
            GraphSpec::RandomLarge => (4_200_000, 48_000_000),
        }
    }

    /// Whether this dataset belongs to the "large graphs" table (Table 2).
    pub fn is_large(&self) -> bool {
        matches!(
            self,
            GraphSpec::FullUsaRoads
                | GraphSpec::LiveJournal
                | GraphSpec::Kronecker
                | GraphSpec::RandomLarge
        )
    }
}

/// Generates scaled versions of the paper's datasets.
///
/// `small_vertices` is the target vertex count for Table 1 graphs and
/// `large_vertices` for Table 2 graphs; each dataset keeps its own density
/// regime relative to that budget.
#[derive(Clone, Copy, Debug)]
pub struct ScaledCatalog {
    /// Approximate vertex budget for the small (Table 1) graphs.
    pub small_vertices: usize,
    /// Approximate vertex budget for the large (Table 2) graphs.
    pub large_vertices: usize,
    /// RNG seed shared by all generators (each dataset perturbs it).
    pub seed: u64,
}

impl Default for ScaledCatalog {
    fn default() -> Self {
        ScaledCatalog {
            small_vertices: 20_000,
            large_vertices: 100_000,
            seed: 0xDC0DE,
        }
    }
}

impl ScaledCatalog {
    /// A tiny catalog for unit/integration tests.
    pub fn tiny() -> Self {
        ScaledCatalog {
            small_vertices: 1_000,
            large_vertices: 4_000,
            seed: 0xDC0DE,
        }
    }

    /// Builds the scaled graph for `spec`.
    pub fn build(&self, spec: GraphSpec) -> Graph {
        let n_small = self.small_vertices.max(64);
        let n_large = self.large_vertices.max(256);
        let seed = self.seed ^ (spec as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match spec {
            GraphSpec::UsaRoads => {
                let side = (n_small as f64).sqrt().ceil() as usize;
                generators::road_network(side, side, 0.35, true, seed)
            }
            GraphSpec::FullUsaRoads => {
                let side = (n_large as f64).sqrt().ceil() as usize;
                generators::road_network(side, side, 0.35, true, seed)
            }
            GraphSpec::Twitter => {
                // Paper density ~16.5 edges/vertex.
                generators::preferential_attachment(n_small, 16, seed)
            }
            GraphSpec::StanfordWeb => {
                // Paper density ~7 edges/vertex.
                generators::preferential_attachment(n_small, 7, seed)
            }
            GraphSpec::LiveJournal => {
                // Paper density ~9 edges/vertex.
                generators::preferential_attachment(n_large, 9, seed)
            }
            GraphSpec::RandomSparse => generators::erdos_renyi_nm(n_small, n_small, seed),
            GraphSpec::RandomMedium => {
                let n = (n_small * 3) / 4;
                generators::erdos_renyi_nm(n, 2 * n, seed)
            }
            GraphSpec::RandomDense => {
                let n = n_small / 2;
                let m = (n as f64 * (n as f64).log2()).round() as usize;
                generators::erdos_renyi_nm(n, m, seed)
            }
            GraphSpec::RandomHighDensity => {
                let n = n_small / 4;
                let m = (n as f64 * (n as f64).sqrt()).round() as usize;
                let m = m.min(n * (n - 1) / 2);
                generators::erdos_renyi_nm(n, m, seed)
            }
            GraphSpec::RandomTenComponents => {
                let n = n_small / 2;
                let m = (n as f64 * (n as f64).log2()).round() as usize;
                generators::random_components(n, m, 10, seed)
            }
            GraphSpec::Kronecker => {
                let scale = (n_large as f64).log2().ceil() as u32;
                generators::kronecker(scale, 16, seed)
            }
            GraphSpec::RandomLarge => {
                let m = n_large * 11;
                generators::erdos_renyi_nm(n_large, m, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_entries_in_paper_order() {
        let t1 = GraphSpec::table1();
        assert_eq!(t1.len(), 8);
        assert_eq!(t1[0].name(), "USA roads");
        assert_eq!(t1[7].name(), "Random, 10 components");
        assert!(t1.iter().all(|s| !s.is_large()));
    }

    #[test]
    fn table2_has_four_large_entries() {
        let t2 = GraphSpec::table2();
        assert_eq!(t2.len(), 4);
        assert!(t2.iter().all(|s| s.is_large()));
    }

    #[test]
    fn catalog_builds_every_small_graph_with_expected_regime() {
        let cat = ScaledCatalog::tiny();
        for &spec in GraphSpec::table1() {
            let g = cat.build(spec);
            assert!(g.num_vertices() > 0 && g.num_edges() > 0, "{:?}", spec);
        }
        // Density regimes: road < sparse random < dense random < high density.
        let road = cat.build(GraphSpec::UsaRoads).density();
        let dense = cat.build(GraphSpec::RandomDense).density();
        let high = cat.build(GraphSpec::RandomHighDensity).density();
        assert!(road < dense && dense < high);
    }

    #[test]
    fn ten_component_graph_has_at_least_ten_components() {
        let cat = ScaledCatalog::tiny();
        let g = cat.build(GraphSpec::RandomTenComponents);
        assert!(g.connected_components() >= 10);
    }

    #[test]
    fn road_graph_is_single_component() {
        let cat = ScaledCatalog::tiny();
        assert_eq!(cat.build(GraphSpec::UsaRoads).connected_components(), 1);
    }

    #[test]
    fn paper_sizes_match_tables() {
        assert_eq!(GraphSpec::Twitter.paper_size(), (81_306, 1_342_296));
        assert_eq!(GraphSpec::Kronecker.paper_size(), (2_100_000, 91_000_000));
    }

    #[test]
    fn catalog_is_deterministic() {
        let cat = ScaledCatalog::tiny();
        let a = cat.build(GraphSpec::Twitter);
        let b = cat.build(GraphSpec::Twitter);
        assert_eq!(a.edges(), b.edges());
    }
}
