//! Core graph types: vertices, normalized undirected edges and the static
//! edge-list [`Graph`] container that workloads are generated from.

use std::collections::HashSet;
use std::fmt;

/// A vertex identifier. Vertices are dense integers in `0..n`.
pub type VertexId = u32;

/// An undirected edge, stored in normalized form (`u <= v`).
///
/// Dynamic connectivity treats the graph as undirected and without
/// multi-edges, so normalizing at construction time makes edges directly
/// usable as hash-map keys and removes an entire class of "same edge written
/// two ways" bugs from the concurrent edge-status machinery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates a normalized edge between `u` and `v`.
    ///
    /// # Panics
    /// Panics if `u == v`; self-loops never affect connectivity and the paper
    /// removes them from every dataset, so constructing one is a logic error.
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        assert_ne!(u, v, "self-loops are not supported");
        if u <= v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(&self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(&self) -> VertexId {
        self.v
    }

    /// Both endpoints as a tuple `(u, v)` with `u <= v`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Returns `true` if `x` is one of the endpoints.
    #[inline]
    pub fn touches(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.u, self.v)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((u, v): (VertexId, VertexId)) -> Self {
        Edge::new(u, v)
    }
}

/// A static undirected graph stored as a deduplicated edge list.
///
/// The benchmarks and workload generators only need the vertex count and an
/// indexable list of unique edges; adjacency structure is built lazily where
/// needed (e.g. for the BFS oracle).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    vertices: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph with `vertices` vertices and no edges.
    pub fn empty(vertices: usize) -> Self {
        Graph {
            vertices,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an iterator of `(u, v)` pairs.
    ///
    /// Self-loops are dropped and duplicate edges (in either orientation) are
    /// deduplicated, mirroring the paper's preprocessing ("we remove loops and
    /// multi-edges from the graphs").
    pub fn from_edges<I>(vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut seen = HashSet::new();
        let mut list = Vec::new();
        for (u, v) in edges {
            if u == v {
                continue;
            }
            assert!(
                (u as usize) < vertices && (v as usize) < vertices,
                "edge ({u}, {v}) out of range for {vertices} vertices"
            );
            let e = Edge::new(u, v);
            if seen.insert(e) {
                list.push(e);
            }
        }
        Graph {
            vertices,
            edges: list,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices
    }

    /// Number of (unique, undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns edge `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> Edge {
        self.edges[i]
    }

    /// Average density `|E| / |V|` (the quantity the paper uses to separate
    /// "sparse" road-like graphs from "dense" social graphs).
    pub fn density(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.vertices as f64
        }
    }

    /// Builds an adjacency-list view of the graph.
    pub fn adjacency(&self) -> Vec<Vec<VertexId>> {
        let mut adj = vec![Vec::new(); self.vertices];
        for e in &self.edges {
            adj[e.u() as usize].push(e.v());
            adj[e.v() as usize].push(e.u());
        }
        adj
    }

    /// Number of connected components (computed by BFS; intended for tests,
    /// dataset descriptions and the Table 3 statistics, not for hot paths).
    pub fn connected_components(&self) -> usize {
        let adj = self.adjacency();
        let mut visited = vec![false; self.vertices];
        let mut components = 0;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.vertices {
            if visited[start] {
                continue;
            }
            components += 1;
            visited[start] = true;
            queue.push_back(start as VertexId);
            while let Some(x) = queue.pop_front() {
                for &y in &adj[x as usize] {
                    if !visited[y as usize] {
                        visited[y as usize] = true;
                        queue.push_back(y);
                    }
                }
            }
        }
        components
    }

    /// Size of the largest connected component, as a fraction of `|V|`.
    pub fn largest_component_fraction(&self) -> f64 {
        if self.vertices == 0 {
            return 0.0;
        }
        let adj = self.adjacency();
        let mut visited = vec![false; self.vertices];
        let mut best = 0usize;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.vertices {
            if visited[start] {
                continue;
            }
            let mut size = 1usize;
            visited[start] = true;
            queue.push_back(start as VertexId);
            while let Some(x) = queue.pop_front() {
                for &y in &adj[x as usize] {
                    if !visited[y as usize] {
                        visited[y as usize] = true;
                        size += 1;
                        queue.push_back(y);
                    }
                }
            }
            best = best.max(size);
        }
        best as f64 / self.vertices as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_normalized() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(1, 3).endpoints(), (1, 3));
        assert_eq!(Edge::new(3, 1).u(), 1);
        assert_eq!(Edge::new(3, 1).v(), 3);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let _ = Edge::new(2, 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(4, 9);
        assert_eq!(e.other(4), 9);
        assert_eq!(e.other(9), 4);
        assert!(e.touches(4) && e.touches(9) && !e.touches(5));
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        let _ = Edge::new(4, 9).other(5);
    }

    #[test]
    fn graph_dedup_and_loops() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 0), (2, 2), (1, 2), (1, 2)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.connected_components(), 2); // {0,1,2} and {3}
    }

    #[test]
    fn graph_component_stats() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.connected_components(), 3);
        let frac = g.largest_component_fraction();
        assert!((frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn graph_density() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.density() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(3, vec![(0, 5)]);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let adj = g.adjacency();
        assert!(adj[0].contains(&1) && adj[1].contains(&0));
        assert!(adj[3].contains(&4) && adj[4].contains(&3));
        assert!(adj[2].len() == 1);
    }
}
