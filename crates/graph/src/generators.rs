//! Synthetic graph generators.
//!
//! The paper evaluates on real graphs (USA roads, Twitter, Stanford web,
//! LiveJournal) plus Erdős–Rényi and Kronecker graphs.  The real datasets are
//! multi-hundred-megabyte downloads that are not available in this
//! environment, so this module provides generators that reproduce their
//! *structural regimes* (see `DESIGN.md`, substitution table):
//!
//! * [`road_network`] — a jittered 2-D grid with a small fraction of removed
//!   edges: sparse (`|E| ≈ 1.2 |V|`), planar, single connected component,
//!   large diameter. Stand-in for the Colorado / full-USA road graphs.
//! * [`preferential_attachment`] — a Barabási–Albert power-law graph: dense,
//!   heavy-tailed degrees, one giant component. Stand-in for the Twitter,
//!   Stanford-web and LiveJournal graphs.
//! * [`erdos_renyi_nm`] — uniform random graph with an exact edge budget, used
//!   for the paper's `|E| = |V|`, `2|V|`, `|V| log |V|`, `|V| sqrt |V|`
//!   density points.
//! * [`random_components`] — an Erdős–Rényi graph partitioned into `k`
//!   equally-sized components ("Random, 10 components").
//! * [`rmat`] — an RMAT/Kronecker-style recursive-matrix graph ("Kron").
//!
//! Beyond the paper's catalog, the workload subsystem (`dc_workloads`)
//! layers its parameterized topologies on three additional primitives:
//!
//! * [`ring_of_cliques`] — dense cliques joined by critical bridge edges,
//!   the adversarial shape for replacement searches;
//! * [`grid`] — an exact 2-D grid (deterministic, path-like spanning trees);
//! * [`star_forest`] — disjoint stars: maximal degree skew, hub contention,
//!   no replacement edges.

use crate::types::{Edge, Graph, VertexId};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates an Erdős–Rényi style random graph with exactly `m` distinct
/// edges over `n` vertices (the G(n, m) model used by the paper's
/// "Random, |E| = …" graphs).
///
/// # Panics
/// Panics if `m` exceeds the number of distinct vertex pairs.
pub fn erdos_renyi_nm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n * (n - 1) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} distinct pairs exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(0, n as VertexId);
    let mut seen = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = dist.sample(&mut rng);
        let v = dist.sample(&mut rng);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        if seen.insert(e) {
            edges.push((e.u(), e.v()));
        }
    }
    Graph::from_edges(n, edges)
}

/// Generates a random graph consisting of `k` disjoint Erdős–Rényi components
/// of (roughly) equal size, with `m` edges in total
/// (the paper's "Random, 10 components" dataset).
pub fn random_components(n: usize, m: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut rng = StdRng::seed_from_u64(seed);
    let comp_size = n / k;
    let mut seen = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(64).max(1_000_000);
    while edges.len() < m && attempts < max_attempts {
        attempts += 1;
        // Pick a component, then two vertices within it. The final component
        // may be slightly larger if k does not divide n.
        let c = rng.gen_range(0..k);
        let lo = c * comp_size;
        let hi = if c + 1 == k { n } else { lo + comp_size };
        if hi - lo < 2 {
            continue;
        }
        let u = rng.gen_range(lo..hi) as VertexId;
        let v = rng.gen_range(lo..hi) as VertexId;
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        if seen.insert(e) {
            edges.push((e.u(), e.v()));
        }
    }
    Graph::from_edges(n, edges)
}

/// Generates a road-network-like graph: a `rows x cols` 2-D grid where each
/// grid edge is kept with probability `keep_prob`, plus a spanning backbone
/// that keeps the graph connected when `connected` is requested.
///
/// Road networks are sparse (≈1.2 edges per vertex for Colorado), planar and
/// have a huge diameter; removing a few random edges disconnects them quickly,
/// which is the property the paper highlights for the fine-grained variants.
pub fn road_network(rows: usize, cols: usize, keep_prob: f64, connected: bool, seed: u64) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen_bool(keep_prob) {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows && rng.gen_bool(keep_prob) {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    if connected {
        // A "highway" backbone: every row fully connected horizontally plus a
        // vertical spine along the first column, so the graph has a single
        // component like the USA-roads dataset while staying planar and
        // sparse.
        for r in 0..rows {
            for c in 0..cols.saturating_sub(1) {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, 0), id(r + 1, 0)));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// Generates a Barabási–Albert preferential-attachment graph: each new vertex
/// attaches to `m_per_vertex` existing vertices chosen proportionally to their
/// degree. Produces a power-law degree distribution and a single giant
/// component, the regime of the paper's social/web graphs.
pub fn preferential_attachment(n: usize, m_per_vertex: usize, seed: u64) -> Graph {
    assert!(n >= 2 && m_per_vertex >= 1);
    let m0 = (m_per_vertex + 1).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint so sampling uniformly from
    // it is sampling proportional to degree.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m_per_vertex);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_per_vertex);
    // Seed clique over the first m0 vertices.
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            edges.push((u as VertexId, v as VertexId));
            targets.push(u as VertexId);
            targets.push(v as VertexId);
        }
    }
    for u in m0..n {
        // A Vec keeps attachment order deterministic for a fixed seed (a
        // HashSet would make the generated edge order depend on hasher state).
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m_per_vertex);
        let mut guard = 0;
        while chosen.len() < m_per_vertex && guard < 16 * m_per_vertex {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if t as usize != u && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((u as VertexId, t));
            targets.push(u as VertexId);
            targets.push(t);
        }
    }
    Graph::from_edges(n, edges)
}

/// Generates a forest of `communities` *disjoint* preferential-attachment
/// clusters of `community_n` vertices each (community `c` owns the vertex
/// range `c * community_n ..`), every cluster an independent power-law
/// graph drawn with its own seed.
///
/// This is the multi-tenant service shape: power-law degree skew *within*
/// a community, no edges between communities. For dynamic connectivity it
/// isolates structural churn — a spanning change in one community never
/// touches the others — which is exactly the regime where per-component
/// state (component locks, root versions, root hints) pays off, as opposed
/// to the single giant component of [`preferential_attachment`] where any
/// structural change is global. `n = communities * community_n`.
pub fn power_law_communities(
    communities: usize,
    community_n: usize,
    m_per_vertex: usize,
    seed: u64,
) -> Graph {
    assert!(communities >= 1 && community_n >= 2);
    let n = communities * community_n;
    let mut edges: Vec<(VertexId, VertexId)> =
        Vec::with_capacity(communities * community_n * m_per_vertex);
    for c in 0..communities {
        let base = (c * community_n) as VertexId;
        let cluster = preferential_attachment(
            community_n,
            m_per_vertex,
            seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        edges.extend(cluster.edges().iter().map(|e| (base + e.u(), base + e.v())));
    }
    Graph::from_edges(n, edges)
}

/// Generates an RMAT (recursive-matrix) graph, the generator behind the
/// Graph500/Kronecker datasets ("Kron" in Table 2). `scale` gives
/// `n = 2^scale` vertices and `m` is the target edge count; `(a, b, c)` are
/// the usual quadrant probabilities (the fourth is `1 - a - b - c`).
pub fn rmat(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(
        a + b + c < 1.0 + 1e-9,
        "quadrant probabilities must sum to <= 1"
    );
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(32).max(1_000_000);
    while edges.len() < m && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v || u >= n || v >= n {
            continue;
        }
        let e = Edge::new(u as VertexId, v as VertexId);
        if seen.insert(e) {
            edges.push((e.u(), e.v()));
        }
    }
    Graph::from_edges(n, edges)
}

/// A convenience RMAT parameterization with the standard Graph500 quadrant
/// probabilities (0.57, 0.19, 0.19).
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    rmat(scale, n * edge_factor, 0.57, 0.19, 0.19, seed)
}

/// Generates a ring of `k` cliques of `clique_size` vertices each: every
/// clique is complete internally and consecutive cliques are joined by a
/// single bridge edge (the last clique bridges back to the first, closing
/// the ring).
///
/// This is the classic adversarial shape for dynamic connectivity: almost
/// every edge is redundant inside its clique (removals find a replacement
/// immediately), while the `k` bridges are all critical — removing one
/// forces a full replacement search that fails, and the component splits.
/// `extra_bridges` additional random inter-clique edges can soften that
/// criticality.
pub fn ring_of_cliques(k: usize, clique_size: usize, extra_bridges: usize, seed: u64) -> Graph {
    assert!(
        k >= 2 && clique_size >= 2,
        "need k >= 2 and clique_size >= 2"
    );
    let n = k * clique_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> =
        Vec::with_capacity(k * clique_size * (clique_size - 1) / 2 + k + extra_bridges);
    for c in 0..k {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                edges.push(((base + i) as VertexId, (base + j) as VertexId));
            }
        }
        // Bridge to the next clique (wrapping), connecting "diagonal"
        // members so bridges never collide with clique-internal edges.
        let next = ((c + 1) % k) * clique_size;
        edges.push(((base + clique_size - 1) as VertexId, next as VertexId));
    }
    for _ in 0..extra_bridges {
        let ca = rng.gen_range(0..k);
        let cb = rng.gen_range(0..k);
        if ca == cb {
            continue;
        }
        let u = (ca * clique_size + rng.gen_range(0..clique_size)) as VertexId;
        let v = (cb * clique_size + rng.gen_range(0..clique_size)) as VertexId;
        edges.push((u, v));
    }
    Graph::from_edges(n, edges)
}

/// Generates an exact (unjittered) `rows x cols` 2-D grid graph: every
/// vertex connects to its right and down neighbor.
///
/// Unlike [`road_network`] there is no randomness: the grid is the
/// deterministic worst case for tree diameter (the spanning tree the HDT
/// structure maintains is a long path), which maximizes Euler-tour sizes
/// and replacement-search depth.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// Generates a forest of `stars` disjoint star graphs with `leaves` leaves
/// each (vertex `0` of each star is its hub).
///
/// Stars are the degree-skew extreme: every edge is a hub edge, so all
/// contention lands on `stars` hot vertices, and every removal disconnects
/// a leaf (no replacement ever exists). `n = stars * (leaves + 1)`.
pub fn star_forest(stars: usize, leaves: usize) -> Graph {
    assert!(stars >= 1 && leaves >= 1);
    let per = leaves + 1;
    let n = stars * per;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(stars * leaves);
    for s in 0..stars {
        let hub = (s * per) as VertexId;
        for l in 1..=leaves {
            edges.push((hub, (s * per + l) as VertexId));
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_communities_are_disjoint_and_power_law() {
        let communities = 8;
        let community_n = 64;
        let g = power_law_communities(communities, community_n, 3, 5);
        assert_eq!(g.num_vertices(), communities * community_n);
        assert_eq!(g.connected_components(), communities);
        for e in g.edges() {
            assert_eq!(
                e.u() as usize / community_n,
                e.v() as usize / community_n,
                "edge {e:?} crosses communities"
            );
        }
        // Deterministic per seed, different across seeds.
        assert_eq!(
            power_law_communities(4, 32, 2, 9).edges(),
            power_law_communities(4, 32, 2, 9).edges()
        );
        assert_ne!(
            power_law_communities(4, 32, 2, 9).edges(),
            power_law_communities(4, 32, 2, 10).edges()
        );
    }

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = erdos_renyi_nm(1000, 2000, 42);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 2000);
    }

    #[test]
    fn erdos_renyi_deterministic_for_seed() {
        let a = erdos_renyi_nm(500, 800, 7);
        let b = erdos_renyi_nm(500, 800, 7);
        assert_eq!(a.edges(), b.edges());
        let c = erdos_renyi_nm(500, 800, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    #[should_panic]
    fn erdos_renyi_rejects_impossible_density() {
        let _ = erdos_renyi_nm(4, 100, 1);
    }

    #[test]
    fn random_components_has_k_or_more_components() {
        let g = random_components(1000, 3000, 10, 3);
        // Components can only split further (isolated vertices), never merge
        // across the k blocks.
        assert!(g.connected_components() >= 10);
        // No edge crosses a block boundary.
        let block = |x: VertexId| (x as usize) / 100;
        for e in g.edges() {
            assert_eq!(block(e.u()), block(e.v()));
        }
    }

    #[test]
    fn road_network_is_sparse_and_connected() {
        let g = road_network(50, 50, 0.4, true, 11);
        assert_eq!(g.num_vertices(), 2500);
        assert_eq!(g.connected_components(), 1);
        assert!(g.density() < 2.5, "road networks must stay sparse");
    }

    #[test]
    fn road_network_disconnected_variant() {
        let g = road_network(30, 30, 0.3, false, 11);
        assert!(g.connected_components() > 1);
    }

    #[test]
    fn preferential_attachment_is_dense_and_giant() {
        let g = preferential_attachment(2000, 8, 5);
        assert!(g.density() > 4.0);
        assert!(g.largest_component_fraction() > 0.99);
        // Power-law-ish: the max degree should far exceed the average.
        let adj = g.adjacency();
        let max_deg = adj.iter().map(|a| a.len()).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_deg as f64 > 4.0 * avg);
    }

    #[test]
    fn rmat_generates_requested_scale() {
        let g = kronecker(10, 8, 17);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 4000);
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(10, 5, 0, 3);
        assert_eq!(g.num_vertices(), 50);
        // 10 cliques of C(5,2)=10 edges plus 10 bridges.
        assert_eq!(g.num_edges(), 110);
        assert_eq!(g.connected_components(), 1);
        let h = ring_of_cliques(10, 5, 20, 3);
        assert!(h.num_edges() > g.num_edges());
        assert_eq!(h.connected_components(), 1);
    }

    #[test]
    fn grid_is_exact_and_connected() {
        let g = grid(8, 12);
        assert_eq!(g.num_vertices(), 96);
        // rows*(cols-1) horizontal + (rows-1)*cols vertical edges.
        assert_eq!(g.num_edges(), 8 * 11 + 7 * 12);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn star_forest_components_and_degrees() {
        let g = star_forest(7, 9);
        assert_eq!(g.num_vertices(), 70);
        assert_eq!(g.num_edges(), 63);
        assert_eq!(g.connected_components(), 7);
        let adj = g.adjacency();
        let max_deg = adj.iter().map(|a| a.len()).max().unwrap();
        assert_eq!(max_deg, 9);
    }

    #[test]
    fn rmat_degree_skew() {
        let g = kronecker(11, 16, 17);
        let adj = g.adjacency();
        let max_deg = adj.iter().map(|a| a.len()).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "Kronecker graphs should have heavily skewed degrees (max {max_deg}, avg {avg})"
        );
    }
}
