//! Loaders and writers for the on-disk graph formats used by the paper's
//! datasets: plain whitespace edge lists (SNAP) and the DIMACS shortest-path
//! challenge format (USA roads).
//!
//! The reproduction's benchmarks default to the synthetic catalog, but every
//! benchmark binary accepts a `--graph-file` argument so the original
//! datasets can be dropped in unchanged when they are available.

use crate::types::{Graph, VertexId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced while parsing a graph file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and contents.
    Malformed { line: usize, content: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// First-seen dense interner for the raw (sparse, 64-bit) vertex ids of
/// edge-list files — the id normalization shared by the one-shot parser
/// below and the streaming [`crate::stream::EdgeBatchReader`].
#[derive(Default)]
pub(crate) struct DenseInterner {
    map: HashMap<u64, VertexId>,
}

impl DenseInterner {
    /// Returns the dense id of `raw`, assigning the next one on first sight.
    pub(crate) fn intern(&mut self, raw: u64) -> VertexId {
        let next = self.map.len() as VertexId;
        *self.map.entry(raw).or_insert(next)
    }

    /// Number of distinct raw ids interned so far.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

/// Tokenizes one SNAP edge-list line: `Ok(None)` for blank / `#` / `%`
/// comment lines, `Ok(Some((a, b)))` for a raw id pair (extra columns are
/// ignored), `Err(())` when malformed. Shared by both edge-list parsers so
/// the format rules cannot diverge.
pub(crate) fn split_edge_line(line: &str) -> Result<Option<(u64, u64)>, ()> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    match (
        parts.next().and_then(|s| s.parse::<u64>().ok()),
        parts.next().and_then(|s| s.parse::<u64>().ok()),
    ) {
        (Some(a), Some(b)) => Ok(Some((a, b))),
        _ => Err(()),
    }
}

/// Parses a SNAP-style whitespace edge list.
///
/// * Lines starting with `#` or `%` are comments.
/// * Each remaining line holds two vertex identifiers; identifiers are
///   arbitrary integers and are remapped to a dense `0..n` range.
/// * Self-loops and duplicate edges are removed (the paper's preprocessing).
pub fn parse_edge_list<R: Read>(reader: R) -> Result<Graph, ParseError> {
    let reader = BufReader::new(reader);
    let mut interner = DenseInterner::default();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        match split_edge_line(&line) {
            Ok(None) => {}
            Ok(Some((a, b))) => {
                let u = interner.intern(a);
                let v = interner.intern(b);
                if u != v {
                    edges.push((u, v));
                }
            }
            Err(()) => {
                return Err(ParseError::Malformed {
                    line: idx + 1,
                    content: line.clone(),
                })
            }
        }
    }
    Ok(Graph::from_edges(interner.len(), edges))
}

/// Parses the DIMACS shortest-path challenge format used by the USA-roads
/// datasets: `c` comment lines, one `p sp <n> <m>` problem line and `a <u>
/// <v> <w>` arc lines (1-based vertex ids, weights ignored).
pub fn parse_dimacs<R: Read>(reader: R) -> Result<Graph, ParseError> {
    let reader = BufReader::new(reader);
    let mut n = 0usize;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("p") => {
                // "p sp <n> <m>"
                let _kind = parts.next();
                n = parts
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| ParseError::Malformed {
                        line: idx + 1,
                        content: line.clone(),
                    })?;
            }
            Some("a") | Some("e") => {
                let u = parts.next().and_then(|s| s.parse::<u64>().ok());
                let v = parts.next().and_then(|s| s.parse::<u64>().ok());
                match (u, v) {
                    (Some(u), Some(v)) if u >= 1 && v >= 1 => {
                        if u != v {
                            edges.push(((u - 1) as VertexId, (v - 1) as VertexId));
                        }
                    }
                    _ => {
                        return Err(ParseError::Malformed {
                            line: idx + 1,
                            content: line.clone(),
                        })
                    }
                }
            }
            _ => {
                return Err(ParseError::Malformed {
                    line: idx + 1,
                    content: line.clone(),
                })
            }
        }
    }
    let max_seen = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    Ok(Graph::from_edges(n.max(max_seen), edges))
}

/// Loads a graph from a file, choosing the parser from the extension:
/// `.gr` / `.dimacs` use [`parse_dimacs`], everything else uses
/// [`parse_edge_list`].
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, ParseError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("gr") | Some("dimacs") => parse_dimacs(file),
        _ => parse_edge_list(file),
    }
}

/// Writes a graph as a whitespace edge list (one `u v` pair per line).
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# vertices: {} edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_edge_list() {
        let input = "# a comment\n0 1\n1 2\n\n2 0\n";
        let g = parse_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parse_edge_list_remaps_sparse_ids() {
        let input = "1000 2000\n2000 500000\n";
        let g = parse_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_edge_list_drops_self_loops_and_duplicates() {
        let input = "0 0\n0 1\n1 0\n";
        let g = parse_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_edge_list_rejects_garbage() {
        let input = "0 1\nnot an edge\n";
        assert!(parse_edge_list(input.as_bytes()).is_err());
    }

    #[test]
    fn parse_dimacs_roads_format() {
        let input = "c USA roads sample\np sp 4 3\na 1 2 100\na 2 3 50\na 3 4 10\n";
        let g = parse_dimacs(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn parse_dimacs_dedups_reverse_arcs() {
        // DIMACS road files list both arc directions; they must collapse to
        // one undirected edge.
        let input = "p sp 2 2\na 1 2 5\na 2 1 5\n";
        let g = parse_dimacs(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = crate::generators::erdos_renyi_nm(100, 200, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        // Isolated vertices do not survive an edge-list round trip.
        assert!(g2.num_vertices() <= g.num_vertices());
        assert_eq!(g2.connected_components(), g2.connected_components());
    }

    #[test]
    fn roundtrip_is_exact_after_one_normalization_pass() {
        // The first parse remaps raw ids to first-seen dense order; from then
        // on parse(write(g)) must reproduce the graph *exactly* (same vertex
        // ids, same edges in the same order), because write emits edges in
        // first-seen order and parse interns by first appearance.
        let g = crate::generators::erdos_renyi_nm(60, 150, 42);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(buf.as_slice()).unwrap();
        let mut buf2 = Vec::new();
        write_edge_list(&g2, &mut buf2).unwrap();
        let g3 = parse_edge_list(buf2.as_slice()).unwrap();
        assert_eq!(g3.num_vertices(), g2.num_vertices());
        assert_eq!(
            g3.edges(),
            g2.edges(),
            "normalized round trip must be exact"
        );
        assert_eq!(g3.connected_components(), g2.connected_components());
    }

    #[test]
    fn roundtrip_preserves_structure_across_formats() {
        // DIMACS in, edge-list out, edge-list back in: same structure.
        let input = "c roads\np sp 6 5\na 1 2 9\na 2 3 9\na 3 1 9\na 4 5 9\na 5 6 9\n";
        let g = parse_dimacs(input.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = parse_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.connected_components(), 2);
    }

    #[test]
    fn parse_edge_list_rejects_a_lone_vertex() {
        let err = parse_edge_list("0 1\n42\n".as_bytes()).unwrap_err();
        match err {
            ParseError::Malformed { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "42");
            }
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn parse_edge_list_rejects_non_numeric_endpoint() {
        assert!(parse_edge_list("1 x\n".as_bytes()).is_err());
        assert!(parse_edge_list("x 1\n".as_bytes()).is_err());
    }

    #[test]
    fn parse_dimacs_rejects_malformed_lines() {
        // Bad problem line.
        assert!(parse_dimacs("p sp x 3\n".as_bytes()).is_err());
        // Arc with a missing endpoint.
        assert!(parse_dimacs("p sp 3 1\na 1\n".as_bytes()).is_err());
        // DIMACS vertices are 1-based; 0 is out of range.
        assert!(parse_dimacs("p sp 3 1\na 0 2 5\n".as_bytes()).is_err());
        // Unknown line type.
        assert!(parse_dimacs("q 1 2\n".as_bytes()).is_err());
    }

    #[test]
    fn parse_error_display_names_the_line() {
        let err = parse_edge_list("ok-is-not\n".as_bytes()).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1"), "{msg}");
    }
}
