//! Streaming edge-list reader that yields fixed-size batches without ever
//! materializing the whole graph.
//!
//! The batch engine (`dc_batch`) bulk-loads through
//! `apply_batch`, so the natural loader shape is "give me the next `k`
//! edges", not "parse the file into a [`crate::Graph`]". This reader shares
//! the SNAP edge-list conventions of [`crate::io::parse_edge_list`]
//! (whitespace pairs, `#`/`%` comments, arbitrary integer ids interned to a
//! dense `0..n` range) but holds only the interning table and one batch in
//! memory.
//!
//! Duplicate edges are *not* removed — deduplication would require the full
//! edge set, defeating the streaming point, and the dynamic connectivity
//! structures treat a re-added edge as a no-op anyway. Self-loops are
//! dropped like everywhere else.

use crate::io::{split_edge_line, DenseInterner, ParseError};
use crate::types::Edge;
use std::io::{BufRead, BufReader, Lines, Read};

/// Iterator over fixed-size batches of edges parsed from a streaming
/// edge-list source. See the module documentation.
pub struct EdgeBatchReader<R: Read> {
    lines: Lines<BufReader<R>>,
    batch_size: usize,
    line_no: usize,
    interner: DenseInterner,
    failed: bool,
}

impl<R: Read> EdgeBatchReader<R> {
    /// Creates a reader producing batches of at most `batch_size` edges.
    pub fn new(reader: R, batch_size: usize) -> Self {
        EdgeBatchReader {
            lines: BufReader::new(reader).lines(),
            batch_size: batch_size.max(1),
            line_no: 0,
            interner: DenseInterner::default(),
            failed: false,
        }
    }

    /// Number of distinct vertices interned so far. After the iterator is
    /// exhausted this is the `n` of the streamed graph.
    pub fn num_vertices_seen(&self) -> usize {
        self.interner.len()
    }

    /// One line through the shared SNAP tokenizer + interner of
    /// [`crate::io`] (so the two edge-list parsers cannot diverge).
    fn parse_line(&mut self, line: &str) -> Result<Option<Edge>, ParseError> {
        match split_edge_line(line) {
            Ok(None) => Ok(None),
            Ok(Some((a, b))) => {
                let u = self.interner.intern(a);
                let v = self.interner.intern(b);
                Ok(if u == v { None } else { Some(Edge::new(u, v)) })
            }
            Err(()) => Err(ParseError::Malformed {
                line: self.line_no,
                content: line.to_string(),
            }),
        }
    }
}

impl<R: Read> Iterator for EdgeBatchReader<R> {
    type Item = Result<Vec<Edge>, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut batch = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size {
            match self.lines.next() {
                Some(Ok(line)) => {
                    self.line_no += 1;
                    match self.parse_line(&line) {
                        Ok(Some(edge)) => batch.push(edge),
                        Ok(None) => {}
                        Err(err) => {
                            self.failed = true;
                            return Some(Err(err));
                        }
                    }
                }
                Some(Err(err)) => {
                    self.failed = true;
                    return Some(Err(ParseError::Io(err)));
                }
                None => break,
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(Ok(batch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::io::write_edge_list;

    #[test]
    fn batches_cover_the_stream_in_order() {
        let input = "# header\n0 1\n1 2\n\n2 3\n3 4\n4 5\n";
        let mut reader = EdgeBatchReader::new(input.as_bytes(), 2);
        let batches: Vec<Vec<Edge>> = reader.by_ref().map(|b| b.unwrap()).collect();
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().take(2).all(|b| b.len() == 2));
        assert_eq!(batches[2].len(), 1);
        assert_eq!(reader.num_vertices_seen(), 6);
        let flat: Vec<Edge> = batches.into_iter().flatten().collect();
        assert_eq!(flat[0], Edge::new(0, 1));
        assert_eq!(flat[4], Edge::new(4, 5));
    }

    #[test]
    fn interning_matches_the_one_shot_parser() {
        let g = generators::erdos_renyi_nm(80, 160, 11);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let one_shot = crate::io::parse_edge_list(buf.as_slice()).unwrap();
        let mut reader = EdgeBatchReader::new(buf.as_slice(), 37);
        let streamed: Vec<Edge> = reader.by_ref().flat_map(|b| b.unwrap()).collect();
        assert_eq!(streamed.len(), one_shot.num_edges());
        assert_eq!(reader.num_vertices_seen(), one_shot.num_vertices());
        let mut a: Vec<Edge> = one_shot.edges().to_vec();
        let mut b = streamed;
        a.sort();
        b.sort();
        assert_eq!(a, b, "same interning order, same edges");
    }

    #[test]
    fn self_loops_are_dropped_but_duplicates_stream_through() {
        let input = "5 5\n0 1\n1 0\n0 1\n";
        let batches: Vec<Vec<Edge>> = EdgeBatchReader::new(input.as_bytes(), 10)
            .map(|b| b.unwrap())
            .collect();
        let flat: Vec<Edge> = batches.into_iter().flatten().collect();
        // "5 5" interned vertex id 0 for raw id 5; the loop itself is gone.
        assert_eq!(flat.len(), 3);
        assert!(flat.iter().all(|e| *e == Edge::new(1, 2)));
    }

    #[test]
    fn malformed_line_fails_once_then_stops() {
        let input = "0 1\nnot numbers\n2 3\n";
        let mut reader = EdgeBatchReader::new(input.as_bytes(), 1);
        assert!(reader.next().unwrap().is_ok());
        match reader.next() {
            Some(Err(ParseError::Malformed { line, .. })) => assert_eq!(line, 2),
            other => panic!("expected a malformed-line error, got {other:?}"),
        }
        assert!(reader.next().is_none(), "a failed stream stays terminated");
    }

    #[test]
    fn empty_input_yields_no_batches() {
        let mut reader = EdgeBatchReader::new("# only comments\n\n".as_bytes(), 8);
        assert!(reader.next().is_none());
        assert_eq!(reader.num_vertices_seen(), 0);
    }
}
