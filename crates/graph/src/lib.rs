//! Graph representation, synthetic generators and loaders used by the
//! concurrent dynamic connectivity reproduction.
//!
//! The evaluation of the SPAA '21 paper runs on a mix of real-world graphs
//! (USA roads, Twitter, Stanford web, LiveJournal, …) and synthetic graphs
//! (Erdős–Rényi at several densities, a Kronecker graph, a multi-component
//! random graph).  This crate provides:
//!
//! * a compact, cheap-to-clone [`Graph`] edge-list representation
//!   ([`types`]),
//! * generators that reproduce the *structural regimes* of the paper's
//!   datasets — sparse planar road networks, dense power-law social graphs,
//!   Erdős–Rényi at the paper's density points, RMAT/Kronecker graphs and
//!   multi-component graphs ([`generators`]),
//! * a catalog mirroring Table 1 and Table 2 of the paper at configurable
//!   scale ([`catalog`]),
//! * plain edge-list / DIMACS loaders and writers so the real datasets can be
//!   dropped in when available ([`io`]),
//! * a streaming batch reader that feeds edge-list files to the `dc_batch`
//!   bulk-load path in fixed-size chunks without materializing the whole
//!   graph ([`stream`]).

pub mod catalog;
pub mod generators;
pub mod io;
pub mod stream;
pub mod types;

pub use catalog::{GraphSpec, ScaledCatalog};
pub use stream::EdgeBatchReader;
pub use types::{Edge, Graph, VertexId};
