//! Parameterized topology catalog for workload generation.
//!
//! Every scenario starts from a static *edge universe* — the set of edges
//! operations draw from. [`Topology`] names the structural regimes the
//! connectivity engine should be stressed with, each mapping to a
//! `dc_graph::generators` primitive:
//!
//! | Topology | Regime it stresses |
//! |----------|--------------------|
//! | [`Topology::PowerLaw`] | heavy-tailed degrees: hub contention, deep non-tree levels |
//! | [`Topology::RingOfCliques`] | critical bridges between dense blocks: worst-case replacement searches |
//! | [`Topology::Grid`] | path-like spanning trees: maximal Euler-tour depth |
//! | [`Topology::StarForest`] | all traffic on a few hub vertices, no replacements |
//! | [`Topology::ErdosRenyi`] | the paper's uniform-random baseline |
//! | [`Topology::SlidingWindow`] | a long temporal edge stream replayed through a bounded live window |
//!
//! `SlidingWindow` is special: its graph is the *stream universe* (an
//! Erdős–Rényi edge sequence); the temporal behaviour — insert edge `i`,
//! evict edge `i - window` — lives in the workload generator
//! ([`crate::presets::sliding_window`]), not in the static graph.

use dc_graph::{generators, Graph};

/// A named, parameterized graph topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// Barabási–Albert preferential attachment: `n` vertices, each new
    /// vertex attaching to `m_per_vertex` existing ones.
    PowerLaw {
        /// Number of vertices.
        n: usize,
        /// Edges added per new vertex.
        m_per_vertex: usize,
    },
    /// A forest of disjoint preferential-attachment clusters: power-law
    /// degree skew within each community, no edges between them (the
    /// multi-tenant service shape — structural churn in one community never
    /// invalidates per-component state of another).
    PowerLawCommunities {
        /// Number of disjoint communities.
        communities: usize,
        /// Vertices per community.
        community_n: usize,
        /// Edges added per new vertex within a community.
        m_per_vertex: usize,
    },
    /// `cliques` complete graphs of `clique_size` vertices joined into a
    /// ring by single bridge edges, plus `extra_bridges` random
    /// inter-clique edges.
    RingOfCliques {
        /// Number of cliques.
        cliques: usize,
        /// Vertices per clique.
        clique_size: usize,
        /// Additional random inter-clique edges.
        extra_bridges: usize,
    },
    /// An exact `rows x cols` 2-D grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// `stars` disjoint stars with `leaves` leaves each.
    StarForest {
        /// Number of stars.
        stars: usize,
        /// Leaves per star.
        leaves: usize,
    },
    /// Uniform random graph with exactly `m` edges over `n` vertices.
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Number of edges.
        m: usize,
    },
    /// The edge universe for a temporal sliding-window workload: an
    /// Erdős–Rényi stream of `stream_len` edges over `n` vertices, of which
    /// at most `window` are live at any point during the generated
    /// workload.
    SlidingWindow {
        /// Number of vertices.
        n: usize,
        /// Total edges in the temporal stream.
        stream_len: usize,
        /// Maximum number of live edges.
        window: usize,
    },
}

impl Topology {
    /// Materializes the topology's edge universe with the given seed.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            Topology::PowerLaw { n, m_per_vertex } => {
                generators::preferential_attachment(n, m_per_vertex, seed)
            }
            Topology::PowerLawCommunities {
                communities,
                community_n,
                m_per_vertex,
            } => generators::power_law_communities(communities, community_n, m_per_vertex, seed),
            Topology::RingOfCliques {
                cliques,
                clique_size,
                extra_bridges,
            } => generators::ring_of_cliques(cliques, clique_size, extra_bridges, seed),
            Topology::Grid { rows, cols } => generators::grid(rows, cols),
            Topology::StarForest { stars, leaves } => generators::star_forest(stars, leaves),
            Topology::ErdosRenyi { n, m } => generators::erdos_renyi_nm(n, m, seed),
            Topology::SlidingWindow { n, stream_len, .. } => {
                generators::erdos_renyi_nm(n, stream_len, seed)
            }
        }
    }

    /// A short name for reports and JSON keys.
    pub fn name(&self) -> String {
        match *self {
            Topology::PowerLaw { n, m_per_vertex } => format!("power-law(n={n}, m={m_per_vertex})"),
            Topology::PowerLawCommunities {
                communities,
                community_n,
                m_per_vertex,
            } => format!("power-law-communities({communities}x{community_n}, m={m_per_vertex})"),
            Topology::RingOfCliques {
                cliques,
                clique_size,
                extra_bridges,
            } => format!("ring-of-cliques({cliques}x{clique_size}, +{extra_bridges})"),
            Topology::Grid { rows, cols } => format!("grid({rows}x{cols})"),
            Topology::StarForest { stars, leaves } => format!("star-forest({stars}x{leaves})"),
            Topology::ErdosRenyi { n, m } => format!("erdos-renyi(n={n}, m={m})"),
            Topology::SlidingWindow {
                n,
                stream_len,
                window,
            } => format!("sliding-window(n={n}, stream={stream_len}, window={window})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topology_builds_a_non_empty_graph() {
        let topologies = [
            Topology::PowerLaw {
                n: 200,
                m_per_vertex: 4,
            },
            Topology::RingOfCliques {
                cliques: 8,
                clique_size: 6,
                extra_bridges: 4,
            },
            Topology::Grid { rows: 10, cols: 12 },
            Topology::StarForest {
                stars: 5,
                leaves: 10,
            },
            Topology::ErdosRenyi { n: 100, m: 250 },
            Topology::SlidingWindow {
                n: 100,
                stream_len: 300,
                window: 50,
            },
        ];
        for t in topologies {
            let g = t.build(11);
            assert!(g.num_vertices() > 0, "{}", t.name());
            assert!(g.num_edges() > 0, "{}", t.name());
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let t = Topology::PowerLaw {
            n: 300,
            m_per_vertex: 3,
        };
        assert_eq!(t.build(5).edges(), t.build(5).edges());
    }
}
