//! Compact, seeded binary trace format with record and deterministic replay.
//!
//! A *trace* freezes a generated workload — preload edges plus one
//! operation stream per thread — into a self-describing byte stream, so any
//! bench run or fuzz failure can be replayed byte-for-byte on a different
//! machine, commit or algorithm variant.
//!
//! # Format (version 1)
//!
//! All multi-byte integers are LEB128 varints unless noted; the header's
//! fixed fields are little-endian.
//!
//! ```text
//! magic    b"DCTR"                      (4 bytes)
//! version  u16 LE                       (currently 1)
//! seed     u64 LE                       (the generating seed, for provenance)
//! vertices varint
//! threads  varint
//! preload  varint count, then per edge: varint u, varint v
//! streams  per thread, in thread order:
//!            op records: u8 tag (0 = Add, 1 = Remove, 2 = Query),
//!                        varint u, varint v
//!            0x03 = end-of-thread marker
//! trailer  0x04, varint total_ops, u64 LE FNV-1a checksum of every
//!          preceding byte (magic included)
//! ```
//!
//! The checksum plus the op count make truncation and corruption loud, and
//! give the determinism guarantee teeth: *seed + format version ⇒ identical
//! trace bytes*, and identical trace bytes ⇒ identical replayed operation
//! sequences (reading is a pure function of the bytes).
//!
//! ```
//! use dc_workloads::{presets, Trace};
//! use dc_graph::generators;
//!
//! let graph = generators::erdos_renyi_nm(50, 120, 7);
//! let workload = presets::lifecycle(&graph, 2, 100, 7);
//! let trace = Trace::record(&workload, 7, graph.num_vertices() as u32);
//! let bytes = trace.to_bytes();
//! let replayed = Trace::from_bytes(&bytes).unwrap();
//! assert_eq!(trace, replayed);
//! ```

use crate::phases::{GeneratedWorkload, Op};
use dc_graph::Edge;
use dc_sync::wire::{self, Fnv64};
use std::fmt;
use std::io::{self, Read, Write};

/// Current trace format version.
pub const TRACE_VERSION: u16 = 1;

/// Why reading a trace failed — and, crucially, *which kind* of failure it
/// is. A consumer that owns the byte stream (the durability layer, a replay
/// tool resuming from a partial download) needs to distinguish a stream
/// that simply stops early from one whose bytes are wrong:
///
/// * [`TraceError::TruncatedTail`] — the stream ended mid-record. Every
///   operation decoded *before* the cut is a valid prefix of the original
///   trace; `ops_decoded` reports how many. Recoverable by re-fetching or
///   by accepting the prefix.
/// * [`TraceError::CorruptChecksum`] — all records parsed but the trailer
///   checksum disagrees with the bytes. Some byte in the middle is wrong
///   and there is no way to tell which: fatal, nothing can be trusted.
/// * [`TraceError::Malformed`] — the bytes are structurally not a trace
///   (bad magic, unsupported version, unknown tag, inconsistent counts).
/// * [`TraceError::Io`] — the underlying reader failed for reasons other
///   than a clean end-of-stream.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure (not a clean end-of-stream).
    Io(io::Error),
    /// The stream ended mid-record; the decoded prefix is valid.
    TruncatedTail {
        /// Operations successfully decoded before the stream ended.
        ops_decoded: u64,
    },
    /// Trailer checksum mismatch: the stream is complete but corrupt.
    CorruptChecksum {
        /// Checksum recomputed over the bytes actually read.
        expected: u64,
        /// Checksum the trailer claims.
        found: u64,
    },
    /// Structurally invalid data (bad magic, version, tag or counts).
    Malformed(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::TruncatedTail { ops_decoded } => write!(
                f,
                "trace truncated mid-record ({ops_decoded} ops decoded before the cut)"
            ),
            TraceError::CorruptChecksum { expected, found } => write!(
                f,
                "trace checksum mismatch: computed {expected:#018x}, trailer {found:#018x}"
            ),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(inner) => inner,
            TraceError::TruncatedTail { .. } => {
                io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string())
            }
            _ => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

const MAGIC: [u8; 4] = *b"DCTR";
const TAG_ADD: u8 = 0;
const TAG_REMOVE: u8 = 1;
const TAG_QUERY: u8 = 2;
const TAG_END_THREAD: u8 = 3;
const TAG_TRAILER: u8 = 4;

/// Trace provenance: format version, generating seed, vertex universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Format version the trace was written with.
    pub version: u16,
    /// The seed the recorded workload was generated from.
    pub seed: u64,
    /// Number of vertices of the universe the operations range over.
    pub vertices: u32,
    /// Number of per-thread operation streams.
    pub threads: u32,
}

/// An in-memory trace: metadata, preload edges and per-thread streams.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Provenance metadata.
    pub meta: TraceMeta,
    /// Edges applied before the measured streams.
    pub preload: Vec<Edge>,
    /// One operation stream per thread.
    pub per_thread: Vec<Vec<Op>>,
}

impl Trace {
    /// Records a generated workload (phases flattened in order) under the
    /// given provenance seed.
    pub fn record(workload: &GeneratedWorkload, seed: u64, vertices: u32) -> Trace {
        let per_thread = workload.flat_per_thread();
        Trace {
            meta: TraceMeta {
                version: TRACE_VERSION,
                seed,
                vertices,
                threads: per_thread.len() as u32,
            },
            preload: workload.preload.clone(),
            per_thread,
        }
    }

    /// Total operations across all thread streams.
    pub fn total_operations(&self) -> usize {
        self.per_thread.iter().map(|ops| ops.len()).sum()
    }

    /// Serializes the trace through a [`TraceWriter`].
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<W> {
        let mut tw = TraceWriter::new(
            writer,
            self.meta.seed,
            self.meta.vertices,
            self.per_thread.len() as u32,
            &self.preload,
        )?;
        for ops in &self.per_thread {
            for &op in ops {
                tw.op(op)?;
            }
            tw.end_thread()?;
        }
        tw.finish()
    }

    /// Deserializes a trace through a [`TraceReader`], validating magic,
    /// version, markers, op count and checksum. The error distinguishes a
    /// truncated tail from mid-stream corruption — see [`TraceError`].
    pub fn read_from<R: Read>(reader: R) -> Result<Trace, TraceError> {
        TraceReader::new(reader)?.read_trace()
    }

    /// Serializes to a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.write_to(Vec::new())
            .expect("writing to a Vec cannot fail")
    }

    /// Deserializes from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        Self::read_from(bytes)
    }
}

/// Streaming trace serializer. Construct with the header data, feed each
/// thread's operations with [`TraceWriter::op`] terminated by
/// [`TraceWriter::end_thread`], then call [`TraceWriter::finish`].
pub struct TraceWriter<W: Write> {
    inner: W,
    hash: Fnv64,
    threads: u32,
    threads_ended: u32,
    ops_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header (magic, version, seed, universe, preload).
    pub fn new(
        inner: W,
        seed: u64,
        vertices: u32,
        threads: u32,
        preload: &[Edge],
    ) -> io::Result<Self> {
        let mut writer = TraceWriter {
            inner,
            hash: Fnv64::new(),
            threads,
            threads_ended: 0,
            ops_written: 0,
        };
        writer.raw(&MAGIC)?;
        writer.raw(&TRACE_VERSION.to_le_bytes())?;
        writer.raw(&seed.to_le_bytes())?;
        writer.varint(vertices as u64)?;
        writer.varint(threads as u64)?;
        writer.varint(preload.len() as u64)?;
        for e in preload {
            writer.varint(e.u() as u64)?;
            writer.varint(e.v() as u64)?;
        }
        Ok(writer)
    }

    /// Appends one operation to the current thread's stream.
    pub fn op(&mut self, op: Op) -> io::Result<()> {
        assert!(
            self.threads_ended < self.threads,
            "all {} thread streams already ended",
            self.threads
        );
        let (tag, u, v) = match op {
            Op::Add(u, v) => (TAG_ADD, u, v),
            Op::Remove(u, v) => (TAG_REMOVE, u, v),
            Op::Query(u, v) => (TAG_QUERY, u, v),
        };
        self.raw(&[tag])?;
        self.varint(u as u64)?;
        self.varint(v as u64)?;
        self.ops_written += 1;
        Ok(())
    }

    /// Ends the current thread's stream.
    pub fn end_thread(&mut self) -> io::Result<()> {
        assert!(
            self.threads_ended < self.threads,
            "more end_thread calls than declared threads"
        );
        self.raw(&[TAG_END_THREAD])?;
        self.threads_ended += 1;
        Ok(())
    }

    /// Writes the trailer (op count + checksum) and returns the inner
    /// writer.
    ///
    /// # Panics
    /// Panics if fewer thread streams were ended than the header declared.
    pub fn finish(mut self) -> io::Result<W> {
        assert_eq!(
            self.threads_ended, self.threads,
            "finish called with {} of {} thread streams ended",
            self.threads_ended, self.threads
        );
        self.raw(&[TAG_TRAILER])?;
        let ops = self.ops_written;
        self.varint(ops)?;
        let checksum = self.hash.value();
        self.inner.write_all(&checksum.to_le_bytes())?;
        Ok(self.inner)
    }

    fn raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    fn varint(&mut self, value: u64) -> io::Result<()> {
        let (buf, len) = wire::varint_encode(value);
        self.raw(&buf[..len])
    }
}

/// Streaming trace deserializer: parses and validates the header on
/// construction, then yields the full trace via
/// [`TraceReader::read_trace`].
pub struct TraceReader<R: Read> {
    inner: R,
    hash: Fnv64,
    meta: TraceMeta,
    preload: Vec<Edge>,
    ops_read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header (magic, version, preload section).
    pub fn new(inner: R) -> Result<Self, TraceError> {
        let mut reader = TraceReader {
            inner,
            hash: Fnv64::new(),
            meta: TraceMeta {
                version: 0,
                seed: 0,
                vertices: 0,
                threads: 0,
            },
            preload: Vec::new(),
            ops_read: 0,
        };
        let mut magic = [0u8; 4];
        reader.raw(&mut magic)?;
        if magic != MAGIC {
            return Err(bad("not a dc_workloads trace (bad magic)"));
        }
        let mut version = [0u8; 2];
        reader.raw(&mut version)?;
        let version = u16::from_le_bytes(version);
        if version != TRACE_VERSION {
            return Err(bad(&format!(
                "unsupported trace version {version} (supported: {TRACE_VERSION})"
            )));
        }
        let mut seed = [0u8; 8];
        reader.raw(&mut seed)?;
        let seed = u64::from_le_bytes(seed);
        let vertices = reader.varint()? as u32;
        let threads = reader.varint()? as u32;
        let preload_len = reader.varint()? as usize;
        let mut preload = Vec::with_capacity(preload_len.min(1 << 20));
        for _ in 0..preload_len {
            let (u, v) = (reader.varint()? as u32, reader.varint()? as u32);
            if u == v {
                return Err(bad("preload contains a self-loop"));
            }
            preload.push(Edge::new(u, v));
        }
        reader.meta = TraceMeta {
            version,
            seed,
            vertices,
            threads,
        };
        reader.preload = preload;
        Ok(reader)
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Reads the thread streams and trailer, validating the end-of-thread
    /// markers, the total op count and the checksum.
    pub fn read_trace(mut self) -> Result<Trace, TraceError> {
        let mut per_thread: Vec<Vec<Op>> = Vec::with_capacity(self.meta.threads as usize);
        for _ in 0..self.meta.threads {
            let mut ops = Vec::new();
            loop {
                let tag = self.byte()?;
                let op = match tag {
                    TAG_END_THREAD => break,
                    TAG_ADD | TAG_REMOVE | TAG_QUERY => {
                        let (u, v) = (self.varint()? as u32, self.varint()? as u32);
                        match tag {
                            TAG_ADD => Op::Add(u, v),
                            TAG_REMOVE => Op::Remove(u, v),
                            _ => Op::Query(u, v),
                        }
                    }
                    other => return Err(bad(&format!("unexpected record tag {other}"))),
                };
                self.ops_read += 1;
                ops.push(op);
            }
            per_thread.push(ops);
        }
        let tag = self.byte()?;
        if tag != TAG_TRAILER {
            return Err(bad(&format!("expected trailer, found tag {tag}")));
        }
        let declared_ops = self.varint()?;
        if declared_ops != self.ops_read {
            return Err(bad(&format!(
                "trailer declares {declared_ops} ops but {} were read",
                self.ops_read
            )));
        }
        let expected = self.hash.value();
        let mut checksum = [0u8; 8];
        self.inner
            .read_exact(&mut checksum)
            .map_err(|e| self.classify(e))?;
        let found = u64::from_le_bytes(checksum);
        if found != expected {
            return Err(TraceError::CorruptChecksum { expected, found });
        }
        Ok(Trace {
            meta: self.meta,
            preload: self.preload,
            per_thread,
        })
    }

    /// A clean end-of-stream mid-record is a recoverable truncation (the
    /// prefix decoded so far is intact); anything else is a hard I/O error.
    fn classify(&self, e: io::Error) -> TraceError {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::TruncatedTail {
                ops_decoded: self.ops_read,
            }
        } else {
            TraceError::Io(e)
        }
    }

    fn raw(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        self.inner.read_exact(buf).map_err(|e| self.classify(e))?;
        self.hash.update(buf);
        Ok(())
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        let mut b = [0u8; 1];
        self.raw(&mut b)?;
        Ok(b[0])
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let inner = &mut self.inner;
        let hash = &mut self.hash;
        let decoded = wire::varint_decode(|| {
            let mut b = [0u8; 1];
            inner.read_exact(&mut b)?;
            hash.update(&b);
            Ok(b[0])
        });
        decoded.map_err(|e| {
            if e.kind() == io::ErrorKind::InvalidData {
                TraceError::Malformed(e.to_string())
            } else {
                self.classify(e)
            }
        })
    }
}

fn bad(message: &str) -> TraceError {
    TraceError::Malformed(message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{Phase, WorkloadSpec};
    use crate::presets;
    use dc_graph::generators;

    fn sample_trace() -> Trace {
        let graph = generators::ring_of_cliques(4, 5, 2, 9);
        let workload = WorkloadSpec::new(3, 9)
            .preload(0.4)
            .phase(Phase::new("churn", 200).mix(30, 40, 30).zipf(0.7))
            .phase(Phase::new("storm", 100).mix(100, 0, 0).zipf(1.1))
            .generate(&graph);
        Trace::record(&workload, 9, graph.num_vertices() as u32)
    }

    #[test]
    fn round_trip_is_identical() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.meta.version, TRACE_VERSION);
        assert_eq!(back.meta.seed, 9);
        assert_eq!(back.per_thread.len(), 3);
        assert_eq!(back.total_operations(), 900);
    }

    #[test]
    fn reading_twice_yields_identical_sequences() {
        let bytes = sample_trace().to_bytes();
        let a = Trace::from_bytes(&bytes).unwrap();
        let b = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_bytes() {
        assert_eq!(sample_trace().to_bytes(), sample_trace().to_bytes());
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let bytes = sample_trace().to_bytes();
        // Truncation anywhere fails.
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Trace::from_bytes(&bytes[..10]).is_err());
        // A flipped payload byte fails the checksum (or the structure).
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(Trace::from_bytes(&corrupt).is_err());
        // Bad magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Trace::from_bytes(&bad_magic).is_err());
        // Unsupported version.
        let mut bad_version = bytes;
        bad_version[4] = 0xFF;
        assert!(Trace::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn truncated_tail_is_typed_and_reports_decoded_prefix() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        let total = trace.total_operations() as u64;
        // Cut the stream a few bytes into the op records: the reader must
        // report a recoverable truncation with a non-trivial decoded prefix.
        let cut = bytes.len() * 2 / 3;
        match Trace::from_bytes(&bytes[..cut]) {
            Err(TraceError::TruncatedTail { ops_decoded }) => {
                assert!(ops_decoded > 0, "expected some ops before the cut");
                assert!(ops_decoded < total, "cut stream cannot hold all ops");
            }
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
        // Truncating inside the trailer checksum is still a truncation.
        match Trace::from_bytes(&bytes[..bytes.len() - 3]) {
            Err(TraceError::TruncatedTail { ops_decoded }) => {
                assert_eq!(ops_decoded, total);
            }
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_is_typed_and_fatal() {
        let bytes = sample_trace().to_bytes();
        // Flip a bit in the stored trailer checksum itself: structure parses,
        // but the recomputed hash disagrees with the trailer.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        match Trace::from_bytes(&corrupt) {
            Err(TraceError::CorruptChecksum { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected CorruptChecksum, got {other:?}"),
        }
    }

    #[test]
    fn trace_error_converts_to_io_error_kinds() {
        let truncated = TraceError::TruncatedTail { ops_decoded: 7 };
        assert_eq!(
            io::Error::from(truncated).kind(),
            io::ErrorKind::UnexpectedEof
        );
        let corrupt = TraceError::CorruptChecksum {
            expected: 1,
            found: 2,
        };
        assert_eq!(io::Error::from(corrupt).kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_streams_round_trip() {
        let trace = Trace {
            meta: TraceMeta {
                version: TRACE_VERSION,
                seed: 1,
                vertices: 4,
                threads: 2,
            },
            preload: vec![Edge::new(0, 1)],
            per_thread: vec![Vec::new(), vec![Op::Query(0, 1)]],
        };
        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn record_flattens_preset_phases() {
        let graph = generators::grid(6, 6);
        let workload = presets::lifecycle(&graph, 2, 50, 3);
        let trace = Trace::record(&workload, 3, graph.num_vertices() as u32);
        assert_eq!(trace.per_thread.len(), 2);
        assert_eq!(trace.total_operations(), workload.total_operations());
        assert_eq!(trace.per_thread, workload.flat_per_thread());
    }
}
