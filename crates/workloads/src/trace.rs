//! Compact, seeded binary trace format with record and deterministic replay.
//!
//! A *trace* freezes a generated workload — preload edges plus one
//! operation stream per thread — into a self-describing byte stream, so any
//! bench run or fuzz failure can be replayed byte-for-byte on a different
//! machine, commit or algorithm variant.
//!
//! # Format (version 1)
//!
//! All multi-byte integers are LEB128 varints unless noted; the header's
//! fixed fields are little-endian.
//!
//! ```text
//! magic    b"DCTR"                      (4 bytes)
//! version  u16 LE                       (currently 1)
//! seed     u64 LE                       (the generating seed, for provenance)
//! vertices varint
//! threads  varint
//! preload  varint count, then per edge: varint u, varint v
//! streams  per thread, in thread order:
//!            op records: u8 tag (0 = Add, 1 = Remove, 2 = Query),
//!                        varint u, varint v
//!            0x03 = end-of-thread marker
//! trailer  0x04, varint total_ops, u64 LE FNV-1a checksum of every
//!          preceding byte (magic included)
//! ```
//!
//! The checksum plus the op count make truncation and corruption loud, and
//! give the determinism guarantee teeth: *seed + format version ⇒ identical
//! trace bytes*, and identical trace bytes ⇒ identical replayed operation
//! sequences (reading is a pure function of the bytes).
//!
//! ```
//! use dc_workloads::{presets, Trace};
//! use dc_graph::generators;
//!
//! let graph = generators::erdos_renyi_nm(50, 120, 7);
//! let workload = presets::lifecycle(&graph, 2, 100, 7);
//! let trace = Trace::record(&workload, 7, graph.num_vertices() as u32);
//! let bytes = trace.to_bytes();
//! let replayed = Trace::from_bytes(&bytes).unwrap();
//! assert_eq!(trace, replayed);
//! ```

use crate::phases::{GeneratedWorkload, Op};
use dc_graph::Edge;
use std::io::{self, Read, Write};

/// Current trace format version.
pub const TRACE_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"DCTR";
const TAG_ADD: u8 = 0;
const TAG_REMOVE: u8 = 1;
const TAG_QUERY: u8 = 2;
const TAG_END_THREAD: u8 = 3;
const TAG_TRAILER: u8 = 4;

/// Trace provenance: format version, generating seed, vertex universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Format version the trace was written with.
    pub version: u16,
    /// The seed the recorded workload was generated from.
    pub seed: u64,
    /// Number of vertices of the universe the operations range over.
    pub vertices: u32,
    /// Number of per-thread operation streams.
    pub threads: u32,
}

/// An in-memory trace: metadata, preload edges and per-thread streams.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Provenance metadata.
    pub meta: TraceMeta,
    /// Edges applied before the measured streams.
    pub preload: Vec<Edge>,
    /// One operation stream per thread.
    pub per_thread: Vec<Vec<Op>>,
}

impl Trace {
    /// Records a generated workload (phases flattened in order) under the
    /// given provenance seed.
    pub fn record(workload: &GeneratedWorkload, seed: u64, vertices: u32) -> Trace {
        let per_thread = workload.flat_per_thread();
        Trace {
            meta: TraceMeta {
                version: TRACE_VERSION,
                seed,
                vertices,
                threads: per_thread.len() as u32,
            },
            preload: workload.preload.clone(),
            per_thread,
        }
    }

    /// Total operations across all thread streams.
    pub fn total_operations(&self) -> usize {
        self.per_thread.iter().map(|ops| ops.len()).sum()
    }

    /// Serializes the trace through a [`TraceWriter`].
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<W> {
        let mut tw = TraceWriter::new(
            writer,
            self.meta.seed,
            self.meta.vertices,
            self.per_thread.len() as u32,
            &self.preload,
        )?;
        for ops in &self.per_thread {
            for &op in ops {
                tw.op(op)?;
            }
            tw.end_thread()?;
        }
        tw.finish()
    }

    /// Deserializes a trace through a [`TraceReader`], validating magic,
    /// version, markers, op count and checksum.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Trace> {
        TraceReader::new(reader)?.read_trace()
    }

    /// Serializes to a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.write_to(Vec::new())
            .expect("writing to a Vec cannot fail")
    }

    /// Deserializes from bytes.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Trace> {
        Self::read_from(bytes)
    }
}

/// FNV-1a over a running byte stream.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    #[inline]
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01B3);
        }
    }
}

/// Streaming trace serializer. Construct with the header data, feed each
/// thread's operations with [`TraceWriter::op`] terminated by
/// [`TraceWriter::end_thread`], then call [`TraceWriter::finish`].
pub struct TraceWriter<W: Write> {
    inner: W,
    hash: Fnv,
    threads: u32,
    threads_ended: u32,
    ops_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header (magic, version, seed, universe, preload).
    pub fn new(
        inner: W,
        seed: u64,
        vertices: u32,
        threads: u32,
        preload: &[Edge],
    ) -> io::Result<Self> {
        let mut writer = TraceWriter {
            inner,
            hash: Fnv::new(),
            threads,
            threads_ended: 0,
            ops_written: 0,
        };
        writer.raw(&MAGIC)?;
        writer.raw(&TRACE_VERSION.to_le_bytes())?;
        writer.raw(&seed.to_le_bytes())?;
        writer.varint(vertices as u64)?;
        writer.varint(threads as u64)?;
        writer.varint(preload.len() as u64)?;
        for e in preload {
            writer.varint(e.u() as u64)?;
            writer.varint(e.v() as u64)?;
        }
        Ok(writer)
    }

    /// Appends one operation to the current thread's stream.
    pub fn op(&mut self, op: Op) -> io::Result<()> {
        assert!(
            self.threads_ended < self.threads,
            "all {} thread streams already ended",
            self.threads
        );
        let (tag, u, v) = match op {
            Op::Add(u, v) => (TAG_ADD, u, v),
            Op::Remove(u, v) => (TAG_REMOVE, u, v),
            Op::Query(u, v) => (TAG_QUERY, u, v),
        };
        self.raw(&[tag])?;
        self.varint(u as u64)?;
        self.varint(v as u64)?;
        self.ops_written += 1;
        Ok(())
    }

    /// Ends the current thread's stream.
    pub fn end_thread(&mut self) -> io::Result<()> {
        assert!(
            self.threads_ended < self.threads,
            "more end_thread calls than declared threads"
        );
        self.raw(&[TAG_END_THREAD])?;
        self.threads_ended += 1;
        Ok(())
    }

    /// Writes the trailer (op count + checksum) and returns the inner
    /// writer.
    ///
    /// # Panics
    /// Panics if fewer thread streams were ended than the header declared.
    pub fn finish(mut self) -> io::Result<W> {
        assert_eq!(
            self.threads_ended, self.threads,
            "finish called with {} of {} thread streams ended",
            self.threads_ended, self.threads
        );
        self.raw(&[TAG_TRAILER])?;
        let ops = self.ops_written;
        self.varint(ops)?;
        let checksum = self.hash.0;
        self.inner.write_all(&checksum.to_le_bytes())?;
        Ok(self.inner)
    }

    fn raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    fn varint(&mut self, mut value: u64) -> io::Result<()> {
        loop {
            let byte = (value & 0x7F) as u8;
            value >>= 7;
            if value == 0 {
                return self.raw(&[byte]);
            }
            self.raw(&[byte | 0x80])?;
        }
    }
}

/// Streaming trace deserializer: parses and validates the header on
/// construction, then yields the full trace via
/// [`TraceReader::read_trace`].
pub struct TraceReader<R: Read> {
    inner: R,
    hash: Fnv,
    meta: TraceMeta,
    preload: Vec<Edge>,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header (magic, version, preload section).
    pub fn new(inner: R) -> io::Result<Self> {
        let mut reader = TraceReader {
            inner,
            hash: Fnv::new(),
            meta: TraceMeta {
                version: 0,
                seed: 0,
                vertices: 0,
                threads: 0,
            },
            preload: Vec::new(),
        };
        let mut magic = [0u8; 4];
        reader.raw(&mut magic)?;
        if magic != MAGIC {
            return Err(bad("not a dc_workloads trace (bad magic)"));
        }
        let mut version = [0u8; 2];
        reader.raw(&mut version)?;
        let version = u16::from_le_bytes(version);
        if version != TRACE_VERSION {
            return Err(bad(&format!(
                "unsupported trace version {version} (supported: {TRACE_VERSION})"
            )));
        }
        let mut seed = [0u8; 8];
        reader.raw(&mut seed)?;
        let seed = u64::from_le_bytes(seed);
        let vertices = reader.varint()? as u32;
        let threads = reader.varint()? as u32;
        let preload_len = reader.varint()? as usize;
        let mut preload = Vec::with_capacity(preload_len.min(1 << 20));
        for _ in 0..preload_len {
            let (u, v) = (reader.varint()? as u32, reader.varint()? as u32);
            if u == v {
                return Err(bad("preload contains a self-loop"));
            }
            preload.push(Edge::new(u, v));
        }
        reader.meta = TraceMeta {
            version,
            seed,
            vertices,
            threads,
        };
        reader.preload = preload;
        Ok(reader)
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Reads the thread streams and trailer, validating the end-of-thread
    /// markers, the total op count and the checksum.
    pub fn read_trace(mut self) -> io::Result<Trace> {
        let mut per_thread: Vec<Vec<Op>> = Vec::with_capacity(self.meta.threads as usize);
        let mut ops_read = 0u64;
        for _ in 0..self.meta.threads {
            let mut ops = Vec::new();
            loop {
                let tag = self.byte()?;
                let op = match tag {
                    TAG_END_THREAD => break,
                    TAG_ADD | TAG_REMOVE | TAG_QUERY => {
                        let (u, v) = (self.varint()? as u32, self.varint()? as u32);
                        match tag {
                            TAG_ADD => Op::Add(u, v),
                            TAG_REMOVE => Op::Remove(u, v),
                            _ => Op::Query(u, v),
                        }
                    }
                    other => return Err(bad(&format!("unexpected record tag {other}"))),
                };
                ops_read += 1;
                ops.push(op);
            }
            per_thread.push(ops);
        }
        let tag = self.byte()?;
        if tag != TAG_TRAILER {
            return Err(bad(&format!("expected trailer, found tag {tag}")));
        }
        let declared_ops = self.varint()?;
        if declared_ops != ops_read {
            return Err(bad(&format!(
                "trailer declares {declared_ops} ops but {ops_read} were read"
            )));
        }
        let expected = self.hash.0;
        let mut checksum = [0u8; 8];
        self.inner.read_exact(&mut checksum)?;
        let checksum = u64::from_le_bytes(checksum);
        if checksum != expected {
            return Err(bad(&format!(
                "checksum mismatch: trailer {checksum:#018x}, computed {expected:#018x}"
            )));
        }
        Ok(Trace {
            meta: self.meta,
            preload: self.preload,
            per_thread,
        })
    }

    fn raw(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }

    fn byte(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.raw(&mut b)?;
        Ok(b[0])
    }

    fn varint(&mut self) -> io::Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            value |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                return Err(bad("varint overflows u64"));
            }
        }
    }
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{Phase, WorkloadSpec};
    use crate::presets;
    use dc_graph::generators;

    fn sample_trace() -> Trace {
        let graph = generators::ring_of_cliques(4, 5, 2, 9);
        let workload = WorkloadSpec::new(3, 9)
            .preload(0.4)
            .phase(Phase::new("churn", 200).mix(30, 40, 30).zipf(0.7))
            .phase(Phase::new("storm", 100).mix(100, 0, 0).zipf(1.1))
            .generate(&graph);
        Trace::record(&workload, 9, graph.num_vertices() as u32)
    }

    #[test]
    fn round_trip_is_identical() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.meta.version, TRACE_VERSION);
        assert_eq!(back.meta.seed, 9);
        assert_eq!(back.per_thread.len(), 3);
        assert_eq!(back.total_operations(), 900);
    }

    #[test]
    fn reading_twice_yields_identical_sequences() {
        let bytes = sample_trace().to_bytes();
        let a = Trace::from_bytes(&bytes).unwrap();
        let b = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_bytes() {
        assert_eq!(sample_trace().to_bytes(), sample_trace().to_bytes());
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let bytes = sample_trace().to_bytes();
        // Truncation anywhere fails.
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Trace::from_bytes(&bytes[..10]).is_err());
        // A flipped payload byte fails the checksum (or the structure).
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(Trace::from_bytes(&corrupt).is_err());
        // Bad magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Trace::from_bytes(&bad_magic).is_err());
        // Unsupported version.
        let mut bad_version = bytes;
        bad_version[4] = 0xFF;
        assert!(Trace::from_bytes(&bad_version).is_err());
    }

    #[test]
    fn empty_streams_round_trip() {
        let trace = Trace {
            meta: TraceMeta {
                version: TRACE_VERSION,
                seed: 1,
                vertices: 4,
                threads: 2,
            },
            preload: vec![Edge::new(0, 1)],
            per_thread: vec![Vec::new(), vec![Op::Query(0, 1)]],
        };
        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn record_flattens_preset_phases() {
        let graph = generators::grid(6, 6);
        let workload = presets::lifecycle(&graph, 2, 50, 3);
        let trace = Trace::record(&workload, 3, graph.num_vertices() as u32);
        assert_eq!(trace.per_thread.len(), 2);
        assert_eq!(trace.total_operations(), workload.total_operations());
        assert_eq!(trace.per_thread, workload.flat_per_thread());
    }
}
