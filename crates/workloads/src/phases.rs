//! The phased operation-mix workload model.
//!
//! A workload is described by a [`WorkloadSpec`]: an optional preload
//! fraction plus an ordered list of [`Phase`]s, each with a per-thread
//! operation budget, a read/add/remove [`OpMix`], and a Zipf skew that
//! concentrates the phase's traffic on a *hot* subset of the edge universe.
//! Generating the spec against a graph yields a [`GeneratedWorkload`]:
//! the preload edge set plus, per phase, one operation stream per thread.
//!
//! Phases model traffic lifecycles the single-mix scenarios of the paper's
//! §5.1 cannot express — e.g. `load → churn-burst → read-storm → teardown`,
//! where the structure is built up, churned under contention, then serves a
//! read-dominated storm before being torn down. Benchmark harnesses run the
//! phases back-to-back with a barrier between them, reporting per-phase
//! throughput.
//!
//! Specs can be built with the fluent API or parsed from a compact textual
//! DSL (see [`WorkloadSpec::parse`]):
//!
//! ```text
//! preload=0.25; load 2000 r0 a100 d0; churn 4000 r10 a45 d45 z0.8;
//! read-storm 4000 r95 a3 d2 z0.99; teardown 2000 r0 a0 d100
//! ```
//!
//! Determinism guarantee: for a fixed spec, graph and seed, generation
//! produces byte-for-byte identical operation streams (all randomness flows
//! through seeded [`rand::rngs::StdRng`] instances; iteration order is
//! positional throughout).

use crate::zipf::Zipf;
use dc_graph::{Edge, Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One workload operation against a dynamic connectivity structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `add_edge(u, v)`.
    Add(VertexId, VertexId),
    /// `remove_edge(u, v)`.
    Remove(VertexId, VertexId),
    /// `connected(u, v)`.
    Query(VertexId, VertexId),
}

/// A read/add/remove percentage split. The three parts must sum to 100.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpMix {
    read: u32,
    add: u32,
    remove: u32,
}

impl OpMix {
    /// Creates a mix from percentages.
    ///
    /// # Panics
    /// Panics unless `read + add + remove == 100`.
    pub fn new(read: u32, add: u32, remove: u32) -> Self {
        assert!(
            read + add + remove == 100,
            "op mix must sum to 100 (got {read}+{add}+{remove})"
        );
        OpMix { read, add, remove }
    }

    /// Percentage of `connected` queries.
    #[inline]
    pub fn read_percent(&self) -> u32 {
        self.read
    }

    /// Percentage of `add_edge` operations.
    #[inline]
    pub fn add_percent(&self) -> u32 {
        self.add
    }

    /// Percentage of `remove_edge` operations.
    #[inline]
    pub fn remove_percent(&self) -> u32 {
        self.remove
    }
}

/// One phase of a workload: a named operation budget with a mix and a skew.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase name, used in reports and JSON keys.
    pub name: String,
    /// Operations each thread executes in this phase.
    pub ops_per_thread: usize,
    /// The read/add/remove split.
    pub mix: OpMix,
    /// Zipf skew of the hot-edge distribution; `0.0` is uniform.
    pub zipf_theta: f64,
}

impl Phase {
    /// Creates a phase with a uniform (theta = 0) all-reads mix; refine with
    /// [`Phase::mix`] and [`Phase::zipf`].
    pub fn new(name: impl Into<String>, ops_per_thread: usize) -> Self {
        Phase {
            name: name.into(),
            ops_per_thread,
            mix: OpMix::new(100, 0, 0),
            zipf_theta: 0.0,
        }
    }

    /// Sets the read/add/remove percentages (must sum to 100).
    pub fn mix(mut self, read: u32, add: u32, remove: u32) -> Self {
        self.mix = OpMix::new(read, add, remove);
        self
    }

    /// Sets the Zipf skew of the hot-edge distribution.
    pub fn zipf(mut self, theta: f64) -> Self {
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf skew must be finite and non-negative"
        );
        self.zipf_theta = theta;
        self
    }
}

/// A complete workload description: preload fraction + phases.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Fraction of the edge universe inserted before measurement.
    pub preload_fraction: f64,
    /// The phases, run in order with a barrier between them.
    pub phases: Vec<Phase>,
    /// Number of concurrent operation streams.
    pub threads: usize,
    /// Master seed; all generation randomness derives from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Creates an empty spec (no preload, no phases).
    pub fn new(threads: usize, seed: u64) -> Self {
        assert!(threads >= 1, "need at least one thread");
        WorkloadSpec {
            preload_fraction: 0.0,
            phases: Vec::new(),
            threads,
            seed,
        }
    }

    /// Sets the preloaded fraction of the edge universe (`0.0..=1.0`).
    pub fn preload(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "preload fraction must be in [0, 1]"
        );
        self.preload_fraction = fraction;
        self
    }

    /// Appends a phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Parses the compact workload DSL.
    ///
    /// Grammar (`;`-separated clauses, whitespace-insensitive):
    ///
    /// ```text
    /// spec   := [ "preload=" FLOAT ";" ] phase { ";" phase }
    /// phase  := NAME OPS "r" INT "a" INT "d" INT [ "z" FLOAT ]
    /// ```
    ///
    /// `OPS` is the per-thread operation count; `rN aN dN` are the
    /// read/add/remove percentages (must sum to 100); `zF` is the optional
    /// Zipf skew (default 0 = uniform).
    ///
    /// ```
    /// use dc_workloads::WorkloadSpec;
    ///
    /// let spec = WorkloadSpec::parse(
    ///     "preload=0.5; churn 1000 r20 a40 d40 z0.99; storm 500 r100 a0 d0",
    ///     4,
    ///     42,
    /// )
    /// .unwrap();
    /// assert_eq!(spec.phases.len(), 2);
    /// assert_eq!(spec.phases[0].name, "churn");
    /// ```
    pub fn parse(dsl: &str, threads: usize, seed: u64) -> Result<WorkloadSpec, String> {
        let mut spec = WorkloadSpec::new(threads, seed);
        for clause in dsl.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(rest) = clause.strip_prefix("preload=") {
                let fraction: f64 = rest
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad preload fraction: {rest:?}"))?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(format!("preload fraction {fraction} outside [0, 1]"));
                }
                spec.preload_fraction = fraction;
                continue;
            }
            let mut parts = clause.split_whitespace();
            let name = parts.next().ok_or("empty phase clause")?;
            let ops: usize = parts
                .next()
                .ok_or_else(|| format!("phase {name:?}: missing op count"))?
                .parse()
                .map_err(|_| format!("phase {name:?}: bad op count"))?;
            let (mut read, mut add, mut remove, mut theta) = (None, None, None, 0.0f64);
            for part in parts {
                // Split after the first *character* (a byte-index split
                // would panic on a multi-byte attribute key).
                let key_len = part.chars().next().map_or(1, |c| c.len_utf8());
                let (key, value) = part.split_at(key_len);
                match key {
                    "r" => read = Some(parse_pct(name, value)?),
                    "a" => add = Some(parse_pct(name, value)?),
                    "d" => remove = Some(parse_pct(name, value)?),
                    "z" => {
                        theta = value
                            .parse()
                            .map_err(|_| format!("phase {name:?}: bad zipf skew {value:?}"))?
                    }
                    _ => return Err(format!("phase {name:?}: unknown attribute {part:?}")),
                }
            }
            let (read, add, remove) = (
                read.ok_or_else(|| format!("phase {name:?}: missing r percentage"))?,
                add.ok_or_else(|| format!("phase {name:?}: missing a percentage"))?,
                remove.ok_or_else(|| format!("phase {name:?}: missing d percentage"))?,
            );
            if read + add + remove != 100 {
                return Err(format!(
                    "phase {name:?}: percentages must sum to 100 (got {read}+{add}+{remove})"
                ));
            }
            if !(theta >= 0.0 && theta.is_finite()) {
                return Err(format!("phase {name:?}: zipf skew must be >= 0"));
            }
            spec.phases
                .push(Phase::new(name, ops).mix(read, add, remove).zipf(theta));
        }
        if spec.phases.is_empty() {
            return Err("workload needs at least one phase".to_string());
        }
        Ok(spec)
    }

    /// Generates the workload against `graph`'s edge universe.
    ///
    /// Each phase gets its own Zipf distribution over a seed-shuffled rank
    /// permutation of the edge list (shared across phases, so "hot" stays
    /// the *same* hot set through the lifecycle), and each `(phase, thread)`
    /// pair gets an independent deterministic RNG stream.
    ///
    /// # Panics
    /// Panics if `graph` has no edges and any phase performs updates.
    pub fn generate(&self, graph: &Graph) -> GeneratedWorkload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let edges = graph.edges();
        // Hot-rank permutation: Zipf rank k maps to edges[perm[k]], so the
        // hot set is a random subset rather than whatever the generator
        // happened to emit first.
        let mut perm: Vec<usize> = (0..edges.len()).collect();
        perm.shuffle(&mut rng);
        let preload_count = (self.preload_fraction * edges.len() as f64).round() as usize;
        let preload: Vec<Edge> = perm
            .iter()
            .take(preload_count.min(edges.len()))
            .map(|&i| edges[i])
            .collect();

        let phases = self
            .phases
            .iter()
            .enumerate()
            .map(|(pi, phase)| {
                assert!(
                    !edges.is_empty() || phase.mix.read_percent() == 100,
                    "phase {:?} needs a non-empty edge universe",
                    phase.name
                );
                let zipf = (!edges.is_empty()).then(|| Zipf::new(edges.len(), phase.zipf_theta));
                let per_thread = (0..self.threads)
                    .map(|t| {
                        let mut trng = StdRng::seed_from_u64(
                            self.seed ^ ((pi as u64 + 1) * 0xC0FFEE) ^ ((t as u64 + 1) * 0x9E37),
                        );
                        (0..phase.ops_per_thread)
                            .map(|_| gen_op(phase, zipf.as_ref(), &perm, graph, &mut trng))
                            .collect()
                    })
                    .collect();
                PhaseStream {
                    name: phase.name.clone(),
                    per_thread,
                }
            })
            .collect();

        GeneratedWorkload { preload, phases }
    }
}

fn parse_pct(phase: &str, value: &str) -> Result<u32, String> {
    let pct: u32 = value
        .parse()
        .map_err(|_| format!("phase {phase:?}: bad percentage {value:?}"))?;
    if pct > 100 {
        return Err(format!("phase {phase:?}: percentage {pct} > 100"));
    }
    Ok(pct)
}

/// Draws one operation for `phase`.
fn gen_op(
    phase: &Phase,
    zipf: Option<&Zipf>,
    perm: &[usize],
    graph: &Graph,
    rng: &mut StdRng,
) -> Op {
    let pick = |rng: &mut StdRng| {
        let zipf = zipf.expect("non-read ops need edges");
        graph.edge(perm[zipf.sample(rng)])
    };
    let roll = rng.gen_range(0..100u32);
    if roll < phase.mix.read_percent() {
        if graph.num_edges() == 0 {
            // Degenerate universe: query arbitrary vertex pairs.
            let n = graph.num_vertices() as VertexId;
            return Op::Query(rng.gen_range(0..n), rng.gen_range(0..n));
        }
        // Queries follow the same hot distribution as updates: endpoints of
        // two (skew-chosen) edges, so read contention is tunable too.
        let a = pick(rng).u();
        let e = pick(rng);
        let b = if e.v() == a { e.u() } else { e.v() };
        Op::Query(a, b)
    } else if roll < phase.mix.read_percent() + phase.mix.add_percent() {
        let e = pick(rng);
        Op::Add(e.u(), e.v())
    } else {
        let e = pick(rng);
        Op::Remove(e.u(), e.v())
    }
}

/// One generated phase: a name plus one operation stream per thread.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStream {
    /// The phase's name (from [`Phase::name`]).
    pub name: String,
    /// One operation stream per thread.
    pub per_thread: Vec<Vec<Op>>,
}

impl PhaseStream {
    /// Total operations across all threads of this phase.
    pub fn total_operations(&self) -> usize {
        self.per_thread.iter().map(|ops| ops.len()).sum()
    }
}

/// A fully generated workload: preload edges plus per-phase, per-thread
/// operation streams.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedWorkload {
    /// Edges inserted before the measured phases start.
    pub preload: Vec<Edge>,
    /// The phases, in execution order.
    pub phases: Vec<PhaseStream>,
}

impl GeneratedWorkload {
    /// The number of threads the workload was generated for.
    pub fn threads(&self) -> usize {
        self.phases.first().map_or(0, |p| p.per_thread.len())
    }

    /// Total operations across all phases and threads (preload excluded).
    pub fn total_operations(&self) -> usize {
        self.phases.iter().map(|p| p.total_operations()).sum()
    }

    /// Flattens the phases into one stream per thread (phase order
    /// preserved). This is the shape single-phase harnesses and the trace
    /// recorder consume.
    pub fn flat_per_thread(&self) -> Vec<Vec<Op>> {
        let threads = self.threads();
        let mut flat: Vec<Vec<Op>> = (0..threads).map(|_| Vec::new()).collect();
        for phase in &self.phases {
            for (t, ops) in phase.per_thread.iter().enumerate() {
                flat[t].extend_from_slice(ops);
            }
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_graph::generators;

    fn graph() -> Graph {
        generators::erdos_renyi_nm(300, 900, 3)
    }

    fn count(ops: &[Op]) -> (usize, usize, usize) {
        let reads = ops.iter().filter(|o| matches!(o, Op::Query(..))).count();
        let adds = ops.iter().filter(|o| matches!(o, Op::Add(..))).count();
        let removes = ops.iter().filter(|o| matches!(o, Op::Remove(..))).count();
        (reads, adds, removes)
    }

    #[test]
    fn phase_ratios_are_respected() {
        let spec = WorkloadSpec::new(4, 11)
            .preload(0.25)
            .phase(Phase::new("churn", 10_000).mix(20, 50, 30).zipf(0.5));
        let w = spec.generate(&graph());
        assert_eq!(w.preload.len(), 225);
        assert_eq!(w.phases.len(), 1);
        let all: Vec<Op> = w.phases[0].per_thread.iter().flatten().copied().collect();
        assert_eq!(all.len(), 40_000);
        let (reads, adds, removes) = count(&all);
        let frac = |c: usize| c as f64 / all.len() as f64;
        assert!((frac(reads) - 0.20).abs() < 0.02, "reads {}", frac(reads));
        assert!((frac(adds) - 0.50).abs() < 0.02, "adds {}", frac(adds));
        assert!(
            (frac(removes) - 0.30).abs() < 0.02,
            "removes {}",
            frac(removes)
        );
    }

    #[test]
    fn zipf_phase_concentrates_updates_on_hot_edges() {
        let g = graph();
        let hot = WorkloadSpec::new(1, 7)
            .phase(Phase::new("hot", 20_000).mix(0, 50, 50).zipf(1.2))
            .generate(&g);
        let uniform = WorkloadSpec::new(1, 7)
            .phase(Phase::new("uniform", 20_000).mix(0, 50, 50))
            .generate(&g);
        // Fraction of operations landing on the 10% most-touched edges.
        let top_decile_mass = |w: &GeneratedWorkload| {
            let mut counts = std::collections::HashMap::new();
            let mut total = 0usize;
            for op in w.phases[0].per_thread[0].iter() {
                if let Op::Add(u, v) | Op::Remove(u, v) = op {
                    *counts.entry((u, v)).or_insert(0usize) += 1;
                    total += 1;
                }
            }
            let mut sorted: Vec<usize> = counts.values().copied().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let top: usize = sorted.iter().take(g.num_edges() / 10).sum();
            top as f64 / total as f64
        };
        // At theta = 1.2 the hottest decile carries most of the traffic;
        // uniformly it carries roughly its share (~10–15% after the
        // most-touched reordering).
        assert!(top_decile_mass(&hot) > 0.5, "{}", top_decile_mass(&hot));
        assert!(
            top_decile_mass(&uniform) < 0.25,
            "{}",
            top_decile_mass(&uniform)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::new(3, 99)
            .preload(0.5)
            .phase(Phase::new("a", 500).mix(30, 40, 30).zipf(0.9))
            .phase(Phase::new("b", 500).mix(90, 5, 5));
        let g = graph();
        assert_eq!(spec.generate(&g), spec.generate(&g));
    }

    #[test]
    fn flat_per_thread_preserves_phase_order() {
        let spec = WorkloadSpec::new(2, 1)
            .phase(Phase::new("a", 10).mix(0, 100, 0))
            .phase(Phase::new("b", 10).mix(100, 0, 0));
        let w = spec.generate(&graph());
        let flat = w.flat_per_thread();
        assert_eq!(flat.len(), 2);
        for stream in &flat {
            assert_eq!(stream.len(), 20);
            assert!(stream[..10].iter().all(|o| matches!(o, Op::Add(..))));
            assert!(stream[10..].iter().all(|o| matches!(o, Op::Query(..))));
        }
    }

    #[test]
    fn dsl_round_trips_the_lifecycle() {
        let spec = WorkloadSpec::parse(
            "preload=0.25; load 2000 r0 a100 d0; churn 4000 r10 a45 d45 z0.8; \
             read-storm 4000 r95 a3 d2 z0.99; teardown 2000 r0 a0 d100",
            8,
            42,
        )
        .unwrap();
        assert_eq!(spec.preload_fraction, 0.25);
        assert_eq!(spec.phases.len(), 4);
        assert_eq!(spec.phases[1].name, "churn");
        assert_eq!(spec.phases[1].mix, OpMix::new(10, 45, 45));
        assert_eq!(spec.phases[2].zipf_theta, 0.99);
        assert_eq!(spec.phases[3].mix.remove_percent(), 100);
    }

    #[test]
    fn dsl_rejects_malformed_clauses() {
        for bad in [
            "",
            "load",
            "load x r0 a100 d0",
            "load 100 r0 a100",
            "load 100 r0 a50 d20",
            "load 100 r0 a100 d0 q5",
            "preload=1.5; load 100 r0 a100 d0",
            "load 100 r0 a100 d0 z-1",
            "load 100 r0 a100 d0 \u{fc}5",
        ] {
            assert!(WorkloadSpec::parse(bad, 1, 0).is_err(), "accepted {bad:?}");
        }
    }
}
