//! Preset workloads.
//!
//! The three scenarios of the paper's evaluation (§5.1) — random-subset,
//! incremental and decremental — live here as preset generators (the
//! `dc_bench::scenario` module is a thin wrapper over them), joined by the
//! presets the phased model opens up: the four-phase
//! `load → churn-burst → read-storm → teardown` lifecycle, the standalone
//! query-dominated [`read_storm`] mix driving the read-path bench tier, and
//! the temporal sliding-window stream.
//!
//! All presets are deterministic per `(graph, parameters, seed)`.

use crate::phases::{GeneratedWorkload, Op, Phase, PhaseStream, WorkloadSpec};
use dc_graph::{Edge, Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The paper's random-subset scenario: half the edge universe is preloaded;
/// threads then run `read_percent`% connectivity queries over random vertex
/// pairs, with additions and removals of random universe edges splitting
/// the remainder evenly (so the live edge count stays roughly constant).
pub fn random_subset(
    graph: &Graph,
    read_percent: u32,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> GeneratedWorkload {
    assert!(threads >= 1);
    assert!(read_percent <= 100);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.shuffle(&mut rng);
    let preload: Vec<Edge> = edges[..edges.len() / 2].to_vec();
    let n = graph.num_vertices() as VertexId;
    let per_thread = (0..threads)
        .map(|t| {
            let mut trng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) * 0x9E37));
            (0..ops_per_thread)
                .map(|_| {
                    let roll = trng.gen_range(0..100u32);
                    if roll < read_percent {
                        let u = trng.gen_range(0..n);
                        let v = trng.gen_range(0..n);
                        Op::Query(u, v.min(n - 1))
                    } else {
                        let e = graph.edge(trng.gen_range(0..graph.num_edges()));
                        if roll % 2 == 0 {
                            Op::Add(e.u(), e.v())
                        } else {
                            Op::Remove(e.u(), e.v())
                        }
                    }
                })
                .collect()
        })
        .collect();
    GeneratedWorkload {
        preload,
        phases: vec![PhaseStream {
            name: format!("random ({read_percent}% reads)"),
            per_thread,
        }],
    }
}

/// The paper's incremental scenario: the whole (shuffled) edge universe is
/// partitioned across the threads and inserted into an empty structure,
/// every edge exactly once.
pub fn incremental(graph: &Graph, threads: usize, seed: u64) -> GeneratedWorkload {
    assert!(threads >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.shuffle(&mut rng);
    let per_thread = partition(&edges, threads)
        .into_iter()
        .map(|chunk| chunk.into_iter().map(|e| Op::Add(e.u(), e.v())).collect())
        .collect();
    GeneratedWorkload {
        preload: Vec::new(),
        phases: vec![PhaseStream {
            name: "incremental".to_string(),
            per_thread,
        }],
    }
}

/// The paper's decremental scenario: the structure starts fully loaded and
/// the threads delete every edge exactly once.
pub fn decremental(graph: &Graph, threads: usize, seed: u64) -> GeneratedWorkload {
    assert!(threads >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.shuffle(&mut rng);
    let per_thread = partition(&edges, threads)
        .into_iter()
        .map(|chunk| {
            chunk
                .into_iter()
                .map(|e| Op::Remove(e.u(), e.v()))
                .collect()
        })
        .collect();
    GeneratedWorkload {
        preload: graph.edges().to_vec(),
        phases: vec![PhaseStream {
            name: "decremental".to_string(),
            per_thread,
        }],
    }
}

/// The four-phase lifecycle: **load** (pure insertion), **churn-burst**
/// (update-heavy traffic on a Zipf-hot edge set), **read-storm**
/// (read-dominated, sharply skewed) and **teardown** (pure removal).
///
/// `ops_per_thread` is the per-thread budget of *each* phase.
pub fn lifecycle(
    graph: &Graph,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> GeneratedWorkload {
    WorkloadSpec::new(threads, seed)
        .phase(Phase::new("load", ops_per_thread).mix(0, 100, 0))
        .phase(
            Phase::new("churn-burst", ops_per_thread)
                .mix(10, 45, 45)
                .zipf(0.8),
        )
        .phase(
            Phase::new("read-storm", ops_per_thread)
                .mix(95, 3, 2)
                .zipf(0.99),
        )
        .phase(Phase::new("teardown", ops_per_thread).mix(0, 0, 100))
        .generate(graph)
}

/// The read-storm preset: the query-dominated regime of the read-path
/// benchmark tier — a single phase of 95% reads / 3% adds / 2% removes over
/// a flash-crowd Zipf (θ = 1.2: the θ > 1 regime, where a bounded hot set
/// absorbs most of the traffic) hot-edge set, with 90% of the edge
/// universe preloaded.
///
/// The high preload makes components large, stable and mostly cyclic: the
/// sparse churn lands overwhelmingly on non-spanning edges, which never
/// restructure the spanning forest — exactly the regime where the
/// version-validated root-hint cache (`DESIGN.md` §8) turns repeat queries
/// into O(1). The canonical driver pairs this preset with disjoint
/// power-law communities (`Topology::PowerLawCommunities`; `dc_bench`'s
/// read tier, `BENCH_reads.json`), so a structural change only invalidates
/// its own community's hints.
pub fn read_storm(
    graph: &Graph,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> GeneratedWorkload {
    WorkloadSpec::new(threads, seed)
        .preload(0.9)
        .phase(
            Phase::new("read-storm", ops_per_thread)
                .mix(95, 3, 2)
                .zipf(1.2),
        )
        .generate(graph)
}

/// The temporal sliding-window workload: each thread streams its partition
/// of the (shuffled) edge universe in order, inserting edge `i` and
/// removing edge `i - window` so at most `window` of its edges are ever
/// live; `query_percent`% extra queries over recent-window endpoints are
/// interleaved. The trailing window is torn down at the end of the stream,
/// so the workload is a complete build-up/steady-state/drain cycle.
///
/// This is the monitoring-pipeline regime (connectivity over "the last N
/// link events") that neither the random-subset nor the pure
/// incremental/decremental scenarios cover: every edge is eventually both
/// added and removed, but the live set stays small and *recency-biased*.
pub fn sliding_window(
    graph: &Graph,
    window: usize,
    query_percent: u32,
    threads: usize,
    seed: u64,
) -> GeneratedWorkload {
    assert!(threads >= 1);
    assert!(window >= 1);
    assert!(query_percent <= 100);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = graph.edges().to_vec();
    edges.shuffle(&mut rng);
    let per_thread = partition(&edges, threads)
        .into_iter()
        .enumerate()
        .map(|(t, stream)| {
            let mut trng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) * 0x51D1));
            let mut ops = Vec::with_capacity(stream.len() * 2);
            for (i, e) in stream.iter().enumerate() {
                // Evict the expiring edge first so the live set never
                // exceeds `window`.
                if i >= window {
                    let old = stream[i - window];
                    ops.push(Op::Remove(old.u(), old.v()));
                }
                ops.push(Op::Add(e.u(), e.v()));
                if trng.gen_range(0..100u32) < query_percent {
                    // Probe two endpoints of the recent window.
                    let lo = i.saturating_sub(window.saturating_sub(1));
                    let a = stream[trng.gen_range(lo..i + 1)];
                    let b = stream[trng.gen_range(lo..i + 1)];
                    ops.push(Op::Query(a.u(), b.v()));
                }
            }
            // Drain the trailing window.
            let tail = stream.len().saturating_sub(window);
            for e in &stream[tail..] {
                ops.push(Op::Remove(e.u(), e.v()));
            }
            ops
        })
        .collect();
    GeneratedWorkload {
        preload: Vec::new(),
        phases: vec![PhaseStream {
            name: format!("sliding-window (w={window})"),
            per_thread,
        }],
    }
}

fn partition(edges: &[Edge], threads: usize) -> Vec<Vec<Edge>> {
    let mut chunks = vec![Vec::new(); threads];
    for (i, &e) in edges.iter().enumerate() {
        chunks[i % threads].push(e);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_graph::generators;

    fn graph() -> Graph {
        generators::erdos_renyi_nm(200, 500, 3)
    }

    #[test]
    fn incremental_and_decremental_cover_every_edge_once() {
        let g = graph();
        for (w, adds) in [
            (incremental(&g, 3, 1), true),
            (decremental(&g, 3, 1), false),
        ] {
            assert_eq!(w.total_operations(), g.num_edges());
            let mut seen = std::collections::HashSet::new();
            for op in w.phases[0].per_thread.iter().flatten() {
                match (op, adds) {
                    (Op::Add(u, v), true) | (Op::Remove(u, v), false) => {
                        assert!(seen.insert(Edge::new(*u, *v)))
                    }
                    _ => panic!("unexpected op {op:?}"),
                }
            }
            assert_eq!(seen.len(), g.num_edges());
        }
    }

    #[test]
    fn lifecycle_has_four_phases_with_expected_shapes() {
        let w = lifecycle(&graph(), 2, 1_000, 9);
        let names: Vec<&str> = w.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["load", "churn-burst", "read-storm", "teardown"]);
        assert!(w.phases[0]
            .per_thread
            .iter()
            .flatten()
            .all(|o| matches!(o, Op::Add(..))));
        assert!(w.phases[3]
            .per_thread
            .iter()
            .flatten()
            .all(|o| matches!(o, Op::Remove(..))));
        let storm = &w.phases[2];
        let reads = storm
            .per_thread
            .iter()
            .flatten()
            .filter(|o| matches!(o, Op::Query(..)))
            .count();
        let frac = reads as f64 / storm.total_operations() as f64;
        assert!(
            (frac - 0.95).abs() < 0.03,
            "read-storm read fraction {frac}"
        );
    }

    #[test]
    fn sliding_window_keeps_live_set_bounded_and_drains() {
        let g = graph();
        let window = 25;
        let w = sliding_window(&g, window, 30, 4, 17);
        for stream in &w.phases[0].per_thread {
            let mut live = std::collections::HashSet::new();
            let mut peak = 0usize;
            for op in stream {
                match op {
                    Op::Add(u, v) => {
                        assert!(live.insert(Edge::new(*u, *v)), "double add");
                        peak = peak.max(live.len());
                    }
                    Op::Remove(u, v) => {
                        assert!(live.remove(&Edge::new(*u, *v)), "removing dead edge");
                    }
                    Op::Query(..) => {}
                }
            }
            assert!(
                peak <= window,
                "live set peaked at {peak} > window {window}"
            );
            assert!(live.is_empty(), "stream did not drain: {} live", live.len());
        }
    }

    #[test]
    fn read_storm_is_read_dominated_and_preloaded() {
        let g = graph();
        let w = read_storm(&g, 3, 2_000, 11);
        assert_eq!(w.phases.len(), 1);
        assert_eq!(w.phases[0].name, "read-storm");
        assert_eq!(w.preload.len(), (g.num_edges() as f64 * 0.9) as usize);
        let total = w.phases[0].total_operations();
        let count = |pred: fn(&Op) -> bool| {
            w.phases[0]
                .per_thread
                .iter()
                .flatten()
                .filter(|o| pred(o))
                .count() as f64
                / total as f64
        };
        let reads = count(|o| matches!(o, Op::Query(..)));
        let adds = count(|o| matches!(o, Op::Add(..)));
        let removes = count(|o| matches!(o, Op::Remove(..)));
        assert!((reads - 0.95).abs() < 0.02, "read fraction {reads}");
        assert!((adds - 0.03).abs() < 0.02, "add fraction {adds}");
        assert!((removes - 0.02).abs() < 0.02, "remove fraction {removes}");
    }

    #[test]
    fn presets_are_deterministic() {
        let g = graph();
        assert_eq!(
            random_subset(&g, 70, 2, 400, 5),
            random_subset(&g, 70, 2, 400, 5)
        );
        assert_eq!(
            sliding_window(&g, 10, 20, 2, 5),
            sliding_window(&g, 10, 20, 2, 5)
        );
        assert_eq!(lifecycle(&g, 2, 100, 5), lifecycle(&g, 2, 100, 5));
    }
}
