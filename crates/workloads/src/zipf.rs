//! A deterministic Zipf (power-law) sampler over `0..n`.
//!
//! The workload model uses Zipf ranks to concentrate traffic on a *hot
//! set*: with skew `theta`, rank `k` is drawn with probability proportional
//! to `1 / (k + 1)^theta`. `theta = 0` degenerates to the uniform
//! distribution; `theta ≈ 1` is the classic web/social skew where a few
//! percent of the edges receive most of the operations; larger values
//! sharpen the hot set further.
//!
//! The sampler precomputes the normalized cumulative distribution once
//! (`O(n)` setup, `O(log n)` per sample via binary search), which keeps the
//! per-sample cost flat across skews and — unlike rejection-based samplers —
//! consumes exactly one RNG draw per sample, so generated operation streams
//! stay reproducible under any change to the sampling order around them.

use rand::Rng;
use rand::RngCore;

/// A precomputed Zipf distribution over the ranks `0..n`.
///
/// ```
/// use dc_workloads::Zipf;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    /// `cdf[k]` is the probability that a sample is `<= k`; the final entry
    /// is exactly `1.0`.
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Builds the distribution over `0..n` with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf skew must be finite and non-negative (got {theta})"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point round-off at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, theta }
    }

    /// The number of ranks.
    #[inline]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always `false`: the domain is non-empty by construction (`n > 0` is
    /// asserted in [`Zipf::new`]). Provided to pair with [`Zipf::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The skew parameter the distribution was built with.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..len()`, consuming exactly one RNG value.
    #[inline]
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_at_theta_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "uniform bucket at {frac}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let hits_in_top_10 = (0..50_000).filter(|_| zipf.sample(&mut rng) < 10).count();
        let frac = hits_in_top_10 as f64 / 50_000.0;
        // At theta = 0.99 over 1000 ranks, the top-10 mass is ~39%; a
        // uniform draw would put 1% there.
        assert!(frac > 0.3, "top-10 mass {frac} too small for theta=0.99");
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = Zipf::new(500, 0.5);
        let sharp = Zipf::new(500, 1.5);
        let mass = |z: &Zipf| {
            let mut rng = StdRng::seed_from_u64(3);
            (0..20_000).filter(|_| z.sample(&mut rng) == 0).count()
        };
        assert!(mass(&sharp) > 2 * mass(&mild));
    }

    #[test]
    fn deterministic_per_seed_and_covers_domain() {
        let zipf = Zipf::new(64, 0.8);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..256).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..256).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| r < 64));
    }

    #[test]
    fn single_rank_domain_always_zero() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
