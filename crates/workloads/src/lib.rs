//! Scenario subsystem for the concurrent dynamic connectivity engine:
//! parameterized topologies, phased operation-mix workloads with tunable
//! Zipf contention, and a binary trace format for byte-for-byte
//! reproducible replay.
//!
//! The paper's evaluation (§5.1) stresses the structure with exactly three
//! uniform-random scenarios. This crate generalizes that into a workload
//! *model* with three orthogonal axes:
//!
//! * **Topology** ([`topology`]) — *which* graph the operations range over:
//!   power-law, ring-of-cliques, grid, star-forest, Erdős–Rényi, or a
//!   temporal sliding-window stream, each stressing a different structural
//!   regime of the HDT hierarchy.
//! * **Phases** ([`phases`]) — *how the traffic evolves*: an ordered list
//!   of phases, each with per-thread operation budgets, a read/add/remove
//!   mix and a Zipf hot-edge skew, built fluently or parsed from a compact
//!   DSL (`"load 2000 r0 a100 d0; churn 4000 r10 a45 d45 z0.8"`). The
//!   paper's three scenarios are [`presets`] of this model, next to the
//!   four-phase lifecycle and sliding-window presets.
//! * **Traces** ([`trace`]) — *replayability*: any generated workload can
//!   be frozen into a compact checksummed binary trace
//!   ([`TraceWriter`]/[`TraceReader`]) and replayed deterministically
//!   against any algorithm variant, machine or commit.
//!
//! Everything is deterministic per seed: seed + format version ⇒ identical
//! trace bytes ⇒ identical replayed operation sequences (see `DESIGN.md`
//! §7 for the full argument).
//!
//! ```
//! use dc_workloads::{presets, Topology, Trace};
//!
//! // 1. Pick a topology and materialize its edge universe.
//! let topo = Topology::RingOfCliques { cliques: 6, clique_size: 5, extra_bridges: 2 };
//! let graph = topo.build(42);
//!
//! // 2. Generate a phased workload over it.
//! let workload = presets::lifecycle(&graph, 2, 500, 42);
//! assert_eq!(workload.phases.len(), 4);
//!
//! // 3. Freeze it into a trace and replay it, byte-for-byte identical.
//! let trace = Trace::record(&workload, 42, graph.num_vertices() as u32);
//! let replay = Trace::from_bytes(&trace.to_bytes()).unwrap();
//! assert_eq!(trace, replay);
//! ```

pub mod phases;
pub mod presets;
pub mod topology;
pub mod trace;
pub mod zipf;

pub use phases::{GeneratedWorkload, Op, OpMix, Phase, PhaseStream, WorkloadSpec};
pub use topology::Topology;
pub use trace::{Trace, TraceError, TraceMeta, TraceReader, TraceWriter, TRACE_VERSION};
pub use zipf::Zipf;
