//! Integration tests for the trace format and the phase model: file-level
//! round trips, phase-ratio accuracy across the full preset catalog, and a
//! sequential oracle replay of a recorded trace.

use dc_workloads::{presets, Op, Phase, Topology, Trace, TraceReader, TraceWriter, WorkloadSpec};
use dynconn::{DynamicConnectivity, RecomputeOracle, Variant};

#[test]
fn trace_survives_a_file_round_trip() {
    let graph = Topology::PowerLaw {
        n: 120,
        m_per_vertex: 3,
    }
    .build(5);
    let workload = presets::lifecycle(&graph, 2, 150, 5);
    let trace = Trace::record(&workload, 5, graph.num_vertices() as u32);

    let dir = std::env::temp_dir().join(format!("dc_workloads_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lifecycle.dctr");
    trace
        .write_to(std::io::BufWriter::new(
            std::fs::File::create(&path).unwrap(),
        ))
        .unwrap();
    let back =
        Trace::read_from(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(trace, back, "write -> read must yield identical ops");
    assert_eq!(back.meta.seed, 5);
    assert_eq!(back.meta.threads, 2);
}

#[test]
fn streaming_writer_and_reader_agree_with_the_bulk_api() {
    let graph = Topology::Grid { rows: 7, cols: 7 }.build(0);
    let workload = WorkloadSpec::new(3, 21)
        .preload(0.2)
        .phase(Phase::new("mix", 200).mix(40, 30, 30).zipf(0.6))
        .generate(&graph);
    let trace = Trace::record(&workload, 21, graph.num_vertices() as u32);

    // Streaming writer, op by op.
    let mut writer = TraceWriter::new(
        Vec::new(),
        trace.meta.seed,
        trace.meta.vertices,
        trace.meta.threads,
        &trace.preload,
    )
    .unwrap();
    for stream in &trace.per_thread {
        for &op in stream {
            writer.op(op).unwrap();
        }
        writer.end_thread().unwrap();
    }
    let streamed = writer.finish().unwrap();
    assert_eq!(streamed, trace.to_bytes(), "streaming == bulk bytes");

    // Streaming reader: header first, then the body.
    let reader = TraceReader::new(streamed.as_slice()).unwrap();
    assert_eq!(reader.meta().threads, 3);
    assert_eq!(reader.read_trace().unwrap(), trace);
}

#[test]
fn phase_ratios_hold_across_the_preset_catalog() {
    let graph = Topology::ErdosRenyi { n: 400, m: 1200 }.build(9);
    let ratios = |ops: &[Op]| {
        let total = ops.len() as f64;
        let frac = |pred: fn(&Op) -> bool| ops.iter().filter(|o| pred(o)).count() as f64 / total;
        (
            frac(|o| matches!(o, Op::Query(..))),
            frac(|o| matches!(o, Op::Add(..))),
            frac(|o| matches!(o, Op::Remove(..))),
        )
    };

    // random_subset: reads at the requested rate, add/remove balanced.
    let w = presets::random_subset(&graph, 60, 4, 5_000, 2);
    let all: Vec<Op> = w.phases[0].per_thread.iter().flatten().copied().collect();
    let (r, a, d) = ratios(&all);
    assert!((r - 0.60).abs() < 0.02, "reads {r}");
    assert!(
        (a - 0.20).abs() < 0.02 && (d - 0.20).abs() < 0.02,
        "{a}/{d}"
    );

    // lifecycle churn-burst: 10/45/45.
    let w = presets::lifecycle(&graph, 4, 5_000, 2);
    let churn: Vec<Op> = w.phases[1].per_thread.iter().flatten().copied().collect();
    let (r, a, d) = ratios(&churn);
    assert!((r - 0.10).abs() < 0.02, "reads {r}");
    assert!(
        (a - 0.45).abs() < 0.02 && (d - 0.45).abs() < 0.02,
        "{a}/{d}"
    );
}

#[test]
fn recorded_trace_replays_sequentially_against_the_oracle() {
    let graph = Topology::RingOfCliques {
        cliques: 6,
        clique_size: 4,
        extra_bridges: 3,
    }
    .build(17);
    let workload = WorkloadSpec::new(1, 17)
        .preload(0.4)
        .phase(Phase::new("churn", 1_000).mix(30, 35, 35).zipf(0.9))
        .generate(&graph);
    let trace = Trace::record(&workload, 17, graph.num_vertices() as u32);

    let dc = Variant::OurAlgorithm.build(graph.num_vertices());
    let oracle = RecomputeOracle::new(graph.num_vertices());
    for e in &trace.preload {
        dc.add_edge(e.u(), e.v());
        oracle.add_edge(e.u(), e.v());
    }
    for op in &trace.per_thread[0] {
        match *op {
            Op::Add(u, v) => {
                dc.add_edge(u, v);
                oracle.add_edge(u, v);
            }
            Op::Remove(u, v) => {
                dc.remove_edge(u, v);
                oracle.remove_edge(u, v);
            }
            Op::Query(u, v) => assert_eq!(dc.connected(u, v), oracle.connected(u, v)),
        }
    }
}
