//! A lightweight stall watchdog: periodic probes over progress counters,
//! surfacing "active but not advancing" conditions as `dc_obs` metrics and
//! flight events.
//!
//! A probe is a closure returning `Option<u64>`:
//!
//! * `None` — the probed subsystem is idle (nothing to watch); any
//!   previously flagged stall is cleared.
//! * `Some(progress)` — the subsystem is *active*; if `progress` stays
//!   bit-identical for the configured number of consecutive ticks the
//!   probe is flagged as stalled ([`dc_obs::Counter::WatchdogStalls`] is
//!   bumped, [`dc_obs::Gauge::WatchdogStalledProbes`] raised, an
//!   [`dc_obs::EventKind::WatchdogStall`] event recorded). The flag clears
//!   — gauge lowered, clearing event recorded — the moment progress moves
//!   or the subsystem goes idle.
//!
//! The canonical probes are built by `dc_batch::BatchEngine::spawn_watchdog`:
//! "leader lock held but the drained-batches counter is frozen" (a stuck or
//! panicked-without-poisoning leader) and "nodes are retired but the
//! reclamation epoch never advances" (a leaked pin). The watchdog only
//! *observes* — recovery is the poison/rebuild path's job — so a false
//! positive costs a metric, never a wedge.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One named progress probe.
pub struct Probe {
    /// Shown nowhere hot: used for debugging and the flight event payload
    /// is the probe's spawn-order index, not this string.
    pub name: &'static str,
    /// Returns `Some(progress)` while the subsystem is active, `None` while
    /// idle. Called from the watchdog thread only.
    pub probe: Box<dyn Fn() -> Option<u64> + Send>,
}

impl Probe {
    /// Convenience constructor.
    pub fn new(name: &'static str, probe: impl Fn() -> Option<u64> + Send + 'static) -> Probe {
        Probe {
            name,
            probe: Box::new(probe),
        }
    }
}

/// Builder for a watchdog thread.
pub struct Watchdog {
    interval: Duration,
    stall_ticks: u32,
    probes: Vec<Probe>,
}

impl Watchdog {
    /// A watchdog ticking every `interval`; a probe unchanged-while-active
    /// for `stall_ticks` consecutive ticks is flagged as stalled.
    pub fn new(interval: Duration, stall_ticks: u32) -> Watchdog {
        Watchdog {
            interval,
            stall_ticks: stall_ticks.max(1),
            probes: Vec::new(),
        }
    }

    /// Adds a probe (builder-style).
    pub fn probe(mut self, probe: Probe) -> Watchdog {
        self.probes.push(probe);
        self
    }

    /// Spawns the watchdog thread and returns its handle. The thread exits
    /// when the handle is stopped or dropped.
    pub fn spawn(self) -> WatchdogHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stall_events = Arc::new(AtomicU64::new(0));
        let stalled_now = Arc::new(AtomicUsize::new(0));
        let join = {
            let stop = Arc::clone(&stop);
            let stall_events = Arc::clone(&stall_events);
            let stalled_now = Arc::clone(&stalled_now);
            std::thread::Builder::new()
                .name("dc-watchdog".into())
                .spawn(move || {
                    run(
                        self.interval,
                        self.stall_ticks,
                        self.probes,
                        &stop,
                        &stall_events,
                        &stalled_now,
                    )
                })
                .expect("spawning the watchdog thread failed")
        };
        WatchdogHandle {
            stop,
            join: Some(join),
            stall_events,
            stalled_now,
        }
    }
}

struct ProbeState {
    last: Option<u64>,
    unchanged_ticks: u32,
    flagged: bool,
}

fn run(
    interval: Duration,
    stall_ticks: u32,
    probes: Vec<Probe>,
    stop: &AtomicBool,
    stall_events: &AtomicU64,
    stalled_now: &AtomicUsize,
) {
    let mut states: Vec<ProbeState> = probes
        .iter()
        .map(|_| ProbeState {
            last: None,
            unchanged_ticks: 0,
            flagged: false,
        })
        .collect();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval);
        if stop.load(Ordering::Relaxed) {
            break;
        }
        for (idx, (probe, state)) in probes.iter().zip(states.iter_mut()).enumerate() {
            let now = (probe.probe)();
            let stalled = match (now, state.last) {
                (Some(v), Some(prev)) if v == prev => {
                    state.unchanged_ticks = state.unchanged_ticks.saturating_add(1);
                    state.unchanged_ticks >= stall_ticks
                }
                _ => {
                    state.unchanged_ticks = 0;
                    false
                }
            };
            state.last = now;
            if stalled && !state.flagged {
                state.flagged = true;
                stall_events.fetch_add(1, Ordering::Relaxed);
                let n = stalled_now.fetch_add(1, Ordering::Relaxed) + 1;
                dc_obs::counter_add(dc_obs::Counter::WatchdogStalls, 1);
                dc_obs::gauge_set(dc_obs::Gauge::WatchdogStalledProbes, n as u64);
                dc_obs::event(dc_obs::EventKind::WatchdogStall, idx as u64, 1);
            } else if !stalled && state.flagged {
                state.flagged = false;
                let n = stalled_now.fetch_sub(1, Ordering::Relaxed) - 1;
                dc_obs::gauge_set(dc_obs::Gauge::WatchdogStalledProbes, n as u64);
                dc_obs::event(dc_obs::EventKind::WatchdogStall, idx as u64, 0);
            }
        }
    }
    // Leave the gauge clean: this watchdog's flags die with it.
    let still = states.iter().filter(|s| s.flagged).count();
    if still > 0 {
        let n = stalled_now.fetch_sub(still, Ordering::Relaxed) - still;
        dc_obs::gauge_set(dc_obs::Gauge::WatchdogStalledProbes, n as u64);
    }
}

/// Handle to a running watchdog; stopping (or dropping) it joins the
/// thread.
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    stall_events: Arc<AtomicU64>,
    stalled_now: Arc<AtomicUsize>,
}

impl WatchdogHandle {
    /// Total stall *onsets* observed (a probe stalling, recovering and
    /// stalling again counts twice).
    pub fn stall_count(&self) -> u64 {
        self.stall_events.load(Ordering::Relaxed)
    }

    /// Probes currently flagged as stalled.
    pub fn currently_stalled(&self) -> usize {
        self.stalled_now.load(Ordering::Relaxed)
    }

    /// Stops the watchdog and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_active_probe_is_flagged_then_cleared() {
        let progress = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicBool::new(true));
        let handle = {
            let progress = Arc::clone(&progress);
            let active = Arc::clone(&active);
            Watchdog::new(Duration::from_millis(1), 3)
                .probe(Probe::new("test", move || {
                    active
                        .load(Ordering::Relaxed)
                        .then(|| progress.load(Ordering::Relaxed))
                }))
                .spawn()
        };
        // Active + frozen: must flag within a few ticks.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.stall_count() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "watchdog never flagged a frozen active probe"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.currently_stalled(), 1);
        // Progress resumes: the flag must clear.
        progress.fetch_add(1, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.currently_stalled() != 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "watchdog never cleared after progress"
            );
            progress.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(handle.stall_count(), 1);
        handle.stop();
    }

    #[test]
    fn idle_probe_never_flags() {
        let handle = Watchdog::new(Duration::from_millis(1), 2)
            .probe(Probe::new("idle", || None))
            .spawn();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(handle.stall_count(), 0);
        assert_eq!(handle.currently_stalled(), 0);
        handle.stop();
    }

    #[test]
    fn moving_progress_never_flags() {
        let ticks = Arc::new(AtomicU64::new(0));
        let handle = {
            let ticks = Arc::clone(&ticks);
            Watchdog::new(Duration::from_millis(1), 2)
                .probe(Probe::new("moving", move || {
                    Some(ticks.fetch_add(1, Ordering::Relaxed))
                }))
                .spawn()
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(handle.stall_count(), 0);
        handle.stop();
    }
}
