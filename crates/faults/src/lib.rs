//! Cross-layer chaos harness: deterministic, seed-driven fault injection
//! points plus a lightweight stall watchdog.
//!
//! `dc_durable::fault` proved the pattern for disks: a deterministic
//! schedule decides, per I/O call, whether to fail it, and the differential
//! suite replays recovery against an oracle. This crate generalizes that
//! idea to the *in-process* failure surface — leader panics, allocation
//! failure, stalled threads, delayed reclamation — so the engine layers
//! above `dc_durable` can be soaked the same way (see `DESIGN.md` §13).
//!
//! **Zero-cost when disabled.** Instrumented sites call
//! [`should_inject`] / [`maybe_stall`], which are one relaxed atomic load
//! and a predictable branch while no schedule is installed — the exact
//! discipline `dc_obs::metrics_enabled()` established. Production binaries
//! compile the probes in and never notice them; the chaos soak installs a
//! [`ChaosSchedule`] and the same binary starts failing on schedule.
//!
//! **Determinism.** A schedule is fully determined by its
//! [`ChaosConfig`]: for every [`InjectionPoint`] the config's seed draws a
//! sorted set of *check ordinals* (the Nth time that point is consulted)
//! at which the point fires. Same seed, same workload interleaving → same
//! faults, which is what lets the soak assert exact differential agreement
//! after every recovery.
//!
//! **Global install.** Exactly one schedule is active per process (the
//! instrumented sites are free functions — threading a handle through
//! every arena and engine would put a pointer chase on hot paths that are
//! otherwise a single load). Tests that install schedules must serialize
//! through [`test_guard`].

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod watchdog;

pub use watchdog::{Probe, Watchdog, WatchdogHandle};

/// Where a fault can be injected. Discriminants are stable: they are the
/// `a` payload of [`dc_obs::EventKind::ChaosInject`] flight events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum InjectionPoint {
    /// Panic the batch leader after draining the intake but before any
    /// structural update is applied (the batch must be lost in full).
    LeaderPanicBeforeApply = 0,
    /// Panic the batch leader after the commit hook ran (the batch must be
    /// durable: recovery replays it).
    LeaderPanicAfterCommit = 1,
    /// Fail the next arena `try_alloc` with `ArenaExhausted`.
    ArenaAlloc = 2,
    /// Stall an intake publisher for the schedule's stall duration before
    /// its operation is published.
    IntakeStall = 3,
    /// Delay an epoch-reclamation advance by the stall duration.
    EpochAdvanceDelay = 4,
}

impl InjectionPoint {
    /// Number of injection points.
    pub const COUNT: usize = 5;

    /// Every point, in discriminant order.
    pub const ALL: [InjectionPoint; Self::COUNT] = [
        InjectionPoint::LeaderPanicBeforeApply,
        InjectionPoint::LeaderPanicAfterCommit,
        InjectionPoint::ArenaAlloc,
        InjectionPoint::IntakeStall,
        InjectionPoint::EpochAdvanceDelay,
    ];

    /// Stable snake_case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            InjectionPoint::LeaderPanicBeforeApply => "leader_panic_before_apply",
            InjectionPoint::LeaderPanicAfterCommit => "leader_panic_after_commit",
            InjectionPoint::ArenaAlloc => "arena_alloc",
            InjectionPoint::IntakeStall => "intake_stall",
            InjectionPoint::EpochAdvanceDelay => "epoch_advance_delay",
        }
    }
}

/// Deterministic recipe for a [`ChaosSchedule`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the ordinal draws; everything else equal, the same seed
    /// produces the same schedule.
    pub seed: u64,
    /// Check-ordinal window per point: fire ordinals are drawn uniformly
    /// from `[0, horizon)`. Checks past the horizon never fire.
    pub horizon: u64,
    /// How many times each point fires within the horizon.
    pub faults_per_point: [u32; InjectionPoint::COUNT],
    /// Sleep applied by stall-type points ([`InjectionPoint::IntakeStall`],
    /// [`InjectionPoint::EpochAdvanceDelay`]) when they fire.
    pub stall: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x5eed_c4a0_5dad_beef,
            horizon: 1_000,
            faults_per_point: [1; InjectionPoint::COUNT],
            stall: Duration::from_millis(2),
        }
    }
}

/// xorshift64* — the same tiny deterministic generator the durable fault
/// harness uses; no external RNG needed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A compiled chaos schedule: per-point sorted fire ordinals plus per-point
/// check/fire tallies. Install with [`install`]; consult with
/// [`should_inject`] / [`maybe_stall`].
pub struct ChaosSchedule {
    config: ChaosConfig,
    /// Sorted, deduplicated check ordinals at which each point fires.
    hits: [Vec<u64>; InjectionPoint::COUNT],
    /// How many times each point has been consulted.
    checks: [AtomicU64; InjectionPoint::COUNT],
    /// How many times each point has fired.
    fired: [AtomicU64; InjectionPoint::COUNT],
}

impl ChaosSchedule {
    /// Compiles `config` into a schedule. Duplicate draws are collapsed, so
    /// a point may fire slightly fewer than `faults_per_point` times when
    /// the horizon is small relative to the request; [`ChaosSchedule::fired`] reports the
    /// truth.
    pub fn from_config(config: ChaosConfig) -> ChaosSchedule {
        // Spread adjacent seeds apart (splitmix-style multiply) and keep
        // the xorshift state nonzero.
        let mut state = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x5eed);
        if state == 0 {
            state = 1;
        }
        let hits = InjectionPoint::ALL.map(|p| {
            let mut ords: Vec<u64> = (0..config.faults_per_point[p as usize])
                .map(|_| xorshift(&mut state) % config.horizon.max(1))
                .collect();
            ords.sort_unstable();
            ords.dedup();
            ords
        });
        ChaosSchedule {
            config,
            hits,
            checks: [const { AtomicU64::new(0) }; InjectionPoint::COUNT],
            fired: [const { AtomicU64::new(0) }; InjectionPoint::COUNT],
        }
    }

    /// The recipe this schedule was compiled from.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Consults the schedule for one check of `point`: assigns the next
    /// check ordinal and reports whether this one fires.
    fn check(&self, point: InjectionPoint) -> bool {
        let ord = self.checks[point as usize].fetch_add(1, Ordering::Relaxed);
        if self.hits[point as usize].binary_search(&ord).is_err() {
            return false;
        }
        let n = self.fired[point as usize].fetch_add(1, Ordering::Relaxed) + 1;
        dc_obs::counter_add(dc_obs::Counter::ChaosInjections, 1);
        dc_obs::event(dc_obs::EventKind::ChaosInject, point as u64, n);
        true
    }

    /// How many times `point` has been consulted.
    pub fn checks(&self, point: InjectionPoint) -> u64 {
        self.checks[point as usize].load(Ordering::Relaxed)
    }

    /// How many times `point` has fired.
    pub fn fired(&self, point: InjectionPoint) -> u64 {
        self.fired[point as usize].load(Ordering::Relaxed)
    }

    /// Total faults injected across every point.
    pub fn total_fired(&self) -> u64 {
        InjectionPoint::ALL.iter().map(|&p| self.fired(p)).sum()
    }

    /// How many fire ordinals `point` carries (the most it can ever fire).
    pub fn planned(&self, point: InjectionPoint) -> u64 {
        self.hits[point as usize].len() as u64
    }
}

static CHAOS_ENABLED: AtomicBool = AtomicBool::new(false);
static SCHEDULE: Mutex<Option<Arc<ChaosSchedule>>> = Mutex::new(None);

/// Installs `schedule` as the process-wide chaos schedule, replacing any
/// previous one. Instrumented sites start consulting it immediately.
pub fn install(schedule: Arc<ChaosSchedule>) {
    *SCHEDULE.lock() = Some(schedule);
    CHAOS_ENABLED.store(true, Ordering::Release);
}

/// Removes the active schedule; every probe reverts to the one-relaxed-load
/// fast path.
pub fn uninstall() {
    CHAOS_ENABLED.store(false, Ordering::Release);
    *SCHEDULE.lock() = None;
}

/// The currently installed schedule, if any.
pub fn active() -> Option<Arc<ChaosSchedule>> {
    if !CHAOS_ENABLED.load(Ordering::Acquire) {
        return None;
    }
    SCHEDULE.lock().clone()
}

/// Consults the active schedule (if any) for one check of `point`. This is
/// the probe instrumented sites embed: one relaxed load and a never-taken
/// branch while chaos is off.
#[inline]
pub fn should_inject(point: InjectionPoint) -> bool {
    if !CHAOS_ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    should_inject_slow(point)
}

#[inline(never)]
fn should_inject_slow(point: InjectionPoint) -> bool {
    match active() {
        Some(schedule) => schedule.check(point),
        None => false,
    }
}

/// Stall-type probe: if `point` fires, sleeps for the schedule's stall
/// duration and returns `true`. Same disabled cost as [`should_inject`].
#[inline]
pub fn maybe_stall(point: InjectionPoint) -> bool {
    if !CHAOS_ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    maybe_stall_slow(point)
}

#[inline(never)]
fn maybe_stall_slow(point: InjectionPoint) -> bool {
    let Some(schedule) = active() else {
        return false;
    };
    if !schedule.check(point) {
        return false;
    }
    std::thread::sleep(schedule.config.stall);
    true
}

static TEST_GUARD: Mutex<()> = Mutex::new(());

/// Serializes tests (and soaks) that install process-wide chaos schedules;
/// hold the guard across `install` … `uninstall`.
pub fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    TEST_GUARD.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert() {
        let _g = test_guard();
        uninstall();
        for p in InjectionPoint::ALL {
            assert!(!should_inject(p));
            assert!(!maybe_stall(p));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig {
            seed: 42,
            horizon: 100,
            faults_per_point: [3; InjectionPoint::COUNT],
            stall: Duration::from_micros(1),
        };
        let a = ChaosSchedule::from_config(cfg);
        let b = ChaosSchedule::from_config(cfg);
        for p in InjectionPoint::ALL {
            assert_eq!(a.hits[p as usize], b.hits[p as usize]);
            assert!(a.planned(p) >= 1);
        }
        // Different seed moves at least one point's ordinals.
        let c = ChaosSchedule::from_config(ChaosConfig { seed: 43, ..cfg });
        assert!(
            InjectionPoint::ALL
                .iter()
                .any(|&p| a.hits[p as usize] != c.hits[p as usize]),
            "seed change produced an identical schedule"
        );
    }

    #[test]
    fn installed_schedule_fires_exactly_on_its_ordinals() {
        let _g = test_guard();
        let schedule = Arc::new(ChaosSchedule::from_config(ChaosConfig {
            seed: 7,
            horizon: 50,
            faults_per_point: [5, 0, 0, 0, 0],
            stall: Duration::from_micros(1),
        }));
        let expected = schedule.hits[0].clone();
        install(schedule.clone());
        let mut fired_at = Vec::new();
        for ord in 0..60u64 {
            if should_inject(InjectionPoint::LeaderPanicBeforeApply) {
                fired_at.push(ord);
            }
        }
        uninstall();
        assert_eq!(fired_at, expected);
        assert_eq!(
            schedule.fired(InjectionPoint::LeaderPanicBeforeApply),
            expected.len() as u64
        );
        assert_eq!(schedule.total_fired(), expected.len() as u64);
        assert_eq!(schedule.checks(InjectionPoint::LeaderPanicBeforeApply), 60);
        // Points with zero planned faults never fire.
        assert!(!should_inject(InjectionPoint::ArenaAlloc));
    }

    #[test]
    fn maybe_stall_sleeps_only_when_fired() {
        let _g = test_guard();
        let schedule = Arc::new(ChaosSchedule::from_config(ChaosConfig {
            seed: 9,
            horizon: 1,
            faults_per_point: [0, 0, 0, 1, 0],
            stall: Duration::from_millis(1),
        }));
        install(schedule.clone());
        // Ordinal 0 is the only possible hit (horizon 1).
        assert!(maybe_stall(InjectionPoint::IntakeStall));
        assert!(!maybe_stall(InjectionPoint::IntakeStall));
        uninstall();
        assert_eq!(schedule.fired(InjectionPoint::IntakeStall), 1);
    }
}
