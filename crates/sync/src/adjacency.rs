//! A flat, lazy, allocation-free adjacency store for the HDT level structure.
//!
//! The HDT core keeps, for every `(level, vertex)` pair, a small multiset of
//! adjacent edges (one store for non-spanning edges, one for exact-level
//! spanning edges).  The original layout — `Vec<Vec<ConcurrentMultiSet>>`,
//! one mutex-wrapped `HashMap` per pair — allocates `n × (⌈log₂ n⌉ + 2)`
//! hashmaps up front and clones a snapshot `Vec` on every replacement-search
//! visit.  Both costs sit directly on the paper's hot paths, so this store
//! replaces them with:
//!
//! * **one flat slab** indexed by `level * n + vertex`, split into fixed
//!   pages whose pointers live in a single eagerly-allocated spine —
//!   constructing the store performs exactly **two heap allocations** (the
//!   spine and the lock stripes) regardless of `n`;
//! * **lazy page materialization** — a page is allocated by CAS on first
//!   write, so resident memory scales with the number of *touched*
//!   `(level, vertex)` pairs rather than with `n log n`;
//! * an **inline small-set representation** — most vertices hold 0–4
//!   adjacent edges per level, which are stored in place; a slot spills into
//!   a private open-addressed table only past [`INLINE_CAP`] distinct
//!   elements (and stays spilled: a vertex that was once high-degree is
//!   likely to be again);
//! * **striped spinlocks** ([`crate::spinlock::RawSpinLock`]) instead of one
//!   `Mutex` per slot — a slot's stripe is picked by hashing its flat index,
//!   and every slot operation is a handful of instructions under the stripe;
//! * an **allocation-free visitor API** — [`AdjacencyStore::for_each_edge`]
//!   iterates through a fixed stack buffer in chunks (releasing the stripe
//!   between chunks so callbacks may freely touch *other* slots of the same
//!   store), and [`AdjacencyStore::pop`] / [`AdjacencyStore::retain`] cover
//!   the drain-style loops, so the replacement search never clones a
//!   snapshot `Vec`.
//!
//! # Iteration semantics
//!
//! `for_each_edge` visits distinct elements best-effort, exactly like
//! iterating a concurrent collection on the JVM (which is what the paper's
//! implementation does): elements present for the whole iteration are
//! visited at least once, elements added or removed concurrently may or may
//! not appear, and an element may be visited more than once if the slot is
//! reorganized mid-iteration (the slot version is checked per chunk and the
//! cursor restarts on reorganization, so a concurrent rehash can never cause
//! a stable element to be *missed* — the failure mode that would silently
//! break the replacement search).  All HDT visitors are idempotent per
//! element, so re-visits are harmless.
//!
//! # Deadlock discipline
//!
//! `for_each_edge` and `pop` run their callbacks / return **without** the
//! stripe held, so callbacks may call back into this store (including the
//! very slot being iterated).  [`AdjacencyStore::retain`] is the one
//! exception: its predicate runs under the stripe lock and therefore must
//! not touch *this* store (other structures are fine).

use crate::hash::{fx_hash_u64, FxBuildHasher};
use crate::spinlock::RawSpinLock;
use std::cell::UnsafeCell;
use std::hash::{BuildHasher, Hash};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

/// Distinct elements a slot holds in place before spilling to a table.
pub const INLINE_CAP: usize = 4;
/// Slots per lazily-materialized page.
const PAGE_SLOTS: usize = 64;
/// Elements copied out per locked section during iteration.
const CHUNK: usize = 32;
/// Default number of lock stripes (rounded up to a power of two).
const DEFAULT_STRIPES: usize = 512;
/// Initial open-addressed table capacity after a spill.
const TABLE_MIN_CAP: usize = 16;
/// Version-restart budget of the chunked visitor before it falls back to a
/// single locked copy of the slot.
const MAX_RESTARTS: u32 = 8;

/// One open-addressed table cell.
enum Cell<T> {
    Empty,
    Tomb,
    Full(T, u32),
}

/// The spilled representation: linear-probing, tombstone-based open
/// addressing. Tombstones keep cell indices stable under removal, which the
/// chunked iterator relies on; only growth rehashes (and bumps the slot
/// version).
struct Table<T> {
    cells: Box<[Cell<T>]>,
    /// Occupancy bitmap, one bit per cell (set = `Full`). Lets the chunked
    /// visitor and `pop` jump between live cells instead of scanning every
    /// cell of a half-empty table.
    bits: Box<[u64]>,
    /// Occupied cells.
    live: usize,
    /// Occupied plus tombstoned cells (probe-chain length driver).
    used: usize,
}

impl<T: Copy + Eq + Hash> Table<T> {
    fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(TABLE_MIN_CAP);
        Table {
            cells: (0..cap).map(|_| Cell::Empty).collect(),
            bits: vec![0u64; cap.div_ceil(64)].into_boxed_slice(),
            live: 0,
            used: 0,
        }
    }

    #[inline]
    fn set_bit(&mut self, i: usize) {
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    fn clear_bit(&mut self, i: usize) {
        self.bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Smallest occupied cell index `>= from`, if any.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let cap = self.cells.len();
        if from >= cap {
            return None;
        }
        let mut word_i = from / 64;
        let mut word = self.bits[word_i] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(word_i * 64 + word.trailing_zeros() as usize);
            }
            word_i += 1;
            if word_i * 64 >= cap {
                return None;
            }
            word = self.bits[word_i];
        }
    }

    #[inline]
    fn hash_index(value: &T, mask: usize) -> usize {
        (FxBuildHasher::default().hash_one(value) as usize) & mask
    }

    /// Index of the cell holding `value`, if present.
    fn find(&self, value: &T) -> Option<usize> {
        let mask = self.cells.len() - 1;
        let mut i = Self::hash_index(value, mask);
        loop {
            match &self.cells[i] {
                Cell::Empty => return None,
                Cell::Full(v, _) if v == value => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Adds one copy of `value`. Returns `true` if the table was rehashed.
    fn add(&mut self, value: T) -> bool {
        // Probe first: a duplicate add is a pure count bump and must never
        // trigger a rehash (which would force concurrent visitors of this
        // slot to restart). The growth check runs only when a new cell is
        // actually about to be consumed; its target lands the post-rehash
        // load factor just under 1/2, keeping probes cheap without making
        // the chunked visitor scan mostly-empty cells. Insertion keeps
        // `used <= 3/4 * capacity`, so an `Empty` cell always exists and
        // the probe loop terminates.
        let mask = self.cells.len() - 1;
        let mut i = Self::hash_index(&value, mask);
        let mut first_tomb = None;
        loop {
            match &mut self.cells[i] {
                Cell::Full(v, count) if *v == value => {
                    *count += 1;
                    return false;
                }
                Cell::Tomb => {
                    if first_tomb.is_none() {
                        first_tomb = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                Cell::Empty => {
                    if first_tomb.is_none() && (self.used + 1) * 4 > self.cells.len() * 3 {
                        self.rehash((self.live + 1) * 2);
                        self.insert_new(value, 1);
                        return true;
                    }
                    let target = match first_tomb {
                        Some(t) => t,
                        None => {
                            self.used += 1;
                            i
                        }
                    };
                    self.cells[target] = Cell::Full(value, 1);
                    self.set_bit(target);
                    self.live += 1;
                    return false;
                }
                Cell::Full(..) => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts `value` with an explicit multiplicity.
    ///
    /// The caller guarantees `value` is absent, so the first tombstone or
    /// empty cell on the probe chain is a valid target (used by the
    /// inline-to-table spill; growth cannot trigger at spill sizes).
    fn insert_new(&mut self, value: T, count: u32) {
        debug_assert!(self.find(&value).is_none(), "insert_new of present value");
        let mask = self.cells.len() - 1;
        let mut i = Self::hash_index(&value, mask);
        while matches!(self.cells[i], Cell::Full(..)) {
            i = (i + 1) & mask;
        }
        if matches!(self.cells[i], Cell::Empty) {
            self.used += 1;
        }
        self.cells[i] = Cell::Full(value, count);
        self.set_bit(i);
        self.live += 1;
    }

    /// Removes one copy of `value`; the cell becomes a tombstone when the
    /// last copy goes. Returns `true` if a copy was present.
    fn remove(&mut self, value: &T) -> bool {
        match self.find(value) {
            Some(i) => {
                if let Cell::Full(_, count) = &mut self.cells[i] {
                    *count -= 1;
                    if *count == 0 {
                        self.cells[i] = Cell::Tomb;
                        self.clear_bit(i);
                        self.live -= 1;
                    }
                }
                true
            }
            None => false,
        }
    }

    fn rehash(&mut self, target: usize) {
        let new_cap = target.next_power_of_two().max(TABLE_MIN_CAP);
        let old = std::mem::replace(&mut self.cells, (0..new_cap).map(|_| Cell::Empty).collect());
        self.bits = vec![0u64; new_cap.div_ceil(64)].into_boxed_slice();
        self.used = self.live;
        let mask = new_cap - 1;
        for cell in old.into_vec() {
            if let Cell::Full(v, count) = cell {
                let mut i = Self::hash_index(&v, mask);
                while !matches!(self.cells[i], Cell::Empty) {
                    i = (i + 1) & mask;
                }
                self.cells[i] = Cell::Full(v, count);
                self.set_bit(i);
            }
        }
    }
}

/// Per-slot payload: inline array first, open-addressed table after a spill.
enum SlotData<T> {
    Inline {
        len: u8,
        entries: [Option<(T, u32)>; INLINE_CAP],
    },
    Spilled(Table<T>),
}

/// One `(level, vertex)` slot.
struct Slot<T> {
    /// Bumped on any reorganization that can move an element to a smaller
    /// index (inline compaction, spill, table growth); the chunked iterator
    /// restarts when it observes a bump, so stable elements are never
    /// skipped.
    version: u32,
    /// Whether this slot has ever held an element (feeds the
    /// `materialized_slots` counter exactly once).
    touched: bool,
    data: SlotData<T>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot {
            version: 0,
            touched: false,
            data: SlotData::Inline {
                len: 0,
                entries: [None, None, None, None],
            },
        }
    }
}

impl<T: Copy + Eq + Hash> Slot<T> {
    fn add(&mut self, value: T) {
        match &mut self.data {
            SlotData::Inline { len, entries } => {
                for (v, count) in entries.iter_mut().take(*len as usize).flatten() {
                    if *v == value {
                        *count += 1;
                        return;
                    }
                }
                if (*len as usize) < INLINE_CAP {
                    entries[*len as usize] = Some((value, 1));
                    *len += 1;
                    return;
                }
                // Spill: move the inline entries into a fresh table. The
                // new value is known distinct from all of them (the inline
                // scan above missed), so every insertion is an insert-new.
                let mut table = Table::with_capacity(TABLE_MIN_CAP);
                for entry in entries.iter().flatten() {
                    let (v, count) = *entry;
                    table.insert_new(v, count);
                }
                table.insert_new(value, 1);
                self.data = SlotData::Spilled(table);
                self.version = self.version.wrapping_add(1);
            }
            SlotData::Spilled(table) => {
                if table.add(value) {
                    self.version = self.version.wrapping_add(1);
                }
            }
        }
    }

    fn remove(&mut self, value: &T) -> bool {
        match &mut self.data {
            SlotData::Inline { len, entries } => {
                for i in 0..*len as usize {
                    if let Some((v, count)) = &mut entries[i] {
                        if v == value {
                            *count -= 1;
                            if *count == 0 {
                                // Swap-remove compacts the array, which can
                                // move the last entry below an iterator's
                                // cursor — bump the version so it restarts.
                                entries[i] = entries[*len as usize - 1].take();
                                *len -= 1;
                                self.version = self.version.wrapping_add(1);
                            }
                            return true;
                        }
                    }
                }
                false
            }
            SlotData::Spilled(table) => table.remove(value),
        }
    }

    fn count(&self, value: &T) -> u32 {
        match &self.data {
            SlotData::Inline { len, entries } => entries
                .iter()
                .take(*len as usize)
                .flatten()
                .find(|(v, _)| v == value)
                .map(|(_, c)| *c)
                .unwrap_or(0),
            SlotData::Spilled(table) => match table.find(value) {
                Some(i) => match &table.cells[i] {
                    Cell::Full(_, c) => *c,
                    _ => 0,
                },
                None => 0,
            },
        }
    }

    fn len(&self) -> usize {
        match &self.data {
            SlotData::Inline { len, entries } => entries
                .iter()
                .take(*len as usize)
                .flatten()
                .map(|(_, c)| *c as usize)
                .sum(),
            SlotData::Spilled(table) => table
                .cells
                .iter()
                .map(|cell| match cell {
                    Cell::Full(_, c) => *c as usize,
                    _ => 0,
                })
                .sum(),
        }
    }

    fn distinct_len(&self) -> usize {
        match &self.data {
            SlotData::Inline { len, .. } => *len as usize,
            SlotData::Spilled(table) => table.live,
        }
    }

    fn pop(&mut self) -> Option<T> {
        match &mut self.data {
            SlotData::Inline { len, entries } => {
                if *len == 0 {
                    return None;
                }
                let (value, count) = entries[0].as_mut().expect("inline entry below len");
                let value = *value;
                *count -= 1;
                if *count == 0 {
                    entries[0] = entries[*len as usize - 1].take();
                    *len -= 1;
                    self.version = self.version.wrapping_add(1);
                }
                Some(value)
            }
            SlotData::Spilled(table) => {
                let i = table.next_occupied(0)?;
                let Cell::Full(v, count) = &mut table.cells[i] else {
                    unreachable!("occupancy bit set on a non-full cell");
                };
                let value = *v;
                *count -= 1;
                if *count == 0 {
                    table.cells[i] = Cell::Tomb;
                    table.clear_bit(i);
                    table.live -= 1;
                }
                Some(value)
            }
        }
    }

    fn retain(&mut self, mut keep: impl FnMut(&T, u32) -> bool) {
        match &mut self.data {
            SlotData::Inline { len, entries } => {
                let mut i = 0;
                while i < *len as usize {
                    let (v, count) = entries[i].as_ref().expect("inline entry below len");
                    if keep(v, *count) {
                        i += 1;
                    } else {
                        entries[i] = entries[*len as usize - 1].take();
                        *len -= 1;
                        self.version = self.version.wrapping_add(1);
                    }
                }
            }
            SlotData::Spilled(table) => {
                for i in 0..table.cells.len() {
                    if let Cell::Full(v, count) = &table.cells[i] {
                        if !keep(v, *count) {
                            table.cells[i] = Cell::Tomb;
                            table.clear_bit(i);
                            table.live -= 1;
                        }
                    }
                }
            }
        }
    }

    /// Copies up to `CHUNK` distinct elements starting at entry index
    /// `cursor` into `buf`; returns `(copied, next_cursor, exhausted)`.
    fn fill_chunk(&self, cursor: usize, buf: &mut [Option<T>; CHUNK]) -> (usize, usize, bool) {
        let mut copied = 0;
        match &self.data {
            SlotData::Inline { len, entries } => {
                let len = *len as usize;
                let mut i = cursor.min(len);
                while i < len && copied < CHUNK {
                    buf[copied] = entries[i].as_ref().map(|(v, _)| *v);
                    copied += 1;
                    i += 1;
                }
                (copied, i, i >= len)
            }
            SlotData::Spilled(table) => {
                // Walk the occupancy bitmap word by word: one load per 64
                // cells plus one trailing_zeros per live element, instead of
                // inspecting every cell of a half-empty table.
                let cap = table.cells.len();
                let mut i = cursor.min(cap);
                if i < cap {
                    let mut word_i = i / 64;
                    let mut word = table.bits[word_i] & (!0u64 << (i % 64));
                    'chunk: while copied < CHUNK {
                        while word == 0 {
                            word_i += 1;
                            if word_i * 64 >= cap {
                                i = cap;
                                break 'chunk;
                            }
                            word = table.bits[word_i];
                        }
                        let idx = word_i * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let Cell::Full(v, _) = &table.cells[idx] else {
                            unreachable!("occupancy bit set on a non-full cell");
                        };
                        buf[copied] = Some(*v);
                        copied += 1;
                        i = idx + 1;
                    }
                }
                (copied, i, i >= cap)
            }
        }
    }

    fn is_spilled(&self) -> bool {
        matches!(self.data, SlotData::Spilled(_))
    }
}

/// A page of slots, materialized lazily. Slots are only accessed under
/// their stripe lock.
struct Page<T> {
    slots: [UnsafeCell<Slot<T>>; PAGE_SLOTS],
}

impl<T> Page<T> {
    fn boxed() -> Box<Self> {
        Box::new(Page {
            slots: std::array::from_fn(|_| UnsafeCell::new(Slot::default())),
        })
    }
}

/// The flat, lazy, striped adjacency store; see the module documentation.
pub struct AdjacencyStore<T> {
    levels: usize,
    n: usize,
    /// Page spine: `ceil(levels * n / PAGE_SLOTS)` pointers, null until the
    /// page is materialized. This is the only per-capacity allocation.
    pages: Box<[AtomicPtr<Page<T>>]>,
    stripes: Box<[RawSpinLock]>,
    stripe_mask: usize,
    materialized_pages: AtomicUsize,
    materialized_slots: AtomicUsize,
}

// Slots hold plain data behind UnsafeCell; all access is serialized by the
// stripe spinlocks (and pages are only published by a successful CAS).
unsafe impl<T: Send> Send for AdjacencyStore<T> {}
unsafe impl<T: Send> Sync for AdjacencyStore<T> {}

impl<T: Copy + Eq + Hash> AdjacencyStore<T> {
    /// Creates a store for `levels × n` slots with the default stripe count.
    ///
    /// Performs exactly two heap allocations regardless of `levels * n`.
    pub fn new(levels: usize, n: usize) -> Self {
        Self::with_stripes(levels, n, DEFAULT_STRIPES)
    }

    /// Creates a store with an explicit stripe count (rounded up to a power
    /// of two).
    pub fn with_stripes(levels: usize, n: usize, stripes: usize) -> Self {
        let total = levels
            .checked_mul(n)
            .expect("adjacency store dimensions overflow");
        let num_pages = total.div_ceil(PAGE_SLOTS);
        let stripe_count = stripes.next_power_of_two().max(1);
        AdjacencyStore {
            levels,
            n,
            pages: (0..num_pages)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            stripes: (0..stripe_count).map(|_| RawSpinLock::new()).collect(),
            stripe_mask: stripe_count - 1,
            materialized_pages: AtomicUsize::new(0),
            materialized_slots: AtomicUsize::new(0),
        }
    }

    /// Number of levels this store was sized for.
    pub fn num_levels(&self) -> usize {
        self.levels
    }

    /// Number of vertices per level.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of `(level, vertex)` slots that have ever held an element.
    /// `Hdt::new` must leave this at zero: adjacency memory is supposed to
    /// scale with *touched* pairs, not with `n log n`.
    pub fn materialized_slots(&self) -> usize {
        self.materialized_slots.load(Ordering::Relaxed)
    }

    /// Number of pages currently backed by real memory.
    pub fn materialized_pages(&self) -> usize {
        self.materialized_pages.load(Ordering::Relaxed)
    }

    /// Number of slots that have spilled out of the inline representation
    /// (diagnostic; quiescent reads only).
    pub fn spilled_slots(&self) -> usize {
        let mut spilled = 0;
        for (pi, page) in self.pages.iter().enumerate() {
            let ptr = page.load(Ordering::Acquire);
            if ptr.is_null() {
                continue;
            }
            let page = unsafe { &*ptr };
            for si in 0..PAGE_SLOTS {
                let flat = pi * PAGE_SLOTS + si;
                if flat >= self.levels * self.n {
                    break;
                }
                let lock = self.stripe(flat);
                lock.lock();
                let slot = unsafe { &*page.slots[si].get() };
                if slot.is_spilled() {
                    spilled += 1;
                }
                lock.unlock();
            }
        }
        spilled
    }

    #[inline]
    fn flat(&self, level: usize, vertex: u32) -> usize {
        // Hard asserts: with a flat index, an out-of-range vertex would
        // otherwise silently alias another level's slot in release builds
        // (the replaced Vec-of-Vecs layout panicked on the same misuse).
        assert!(level < self.levels, "level {level} out of range");
        assert!((vertex as usize) < self.n, "vertex {vertex} out of range");
        level * self.n + vertex as usize
    }

    #[inline]
    fn stripe(&self, flat: usize) -> &RawSpinLock {
        &self.stripes[(fx_hash_u64(flat as u64) as usize) & self.stripe_mask]
    }

    /// The page for `flat`, if materialized.
    #[inline]
    fn page(&self, flat: usize) -> Option<&Page<T>> {
        let ptr = self.pages[flat / PAGE_SLOTS].load(Ordering::Acquire);
        if ptr.is_null() {
            None
        } else {
            Some(unsafe { &*ptr })
        }
    }

    /// The page for `flat`, materializing it if needed. Lock-free: pages are
    /// shared by slots of different stripes, so publication races through a
    /// CAS (the loser frees its allocation).
    fn materialize(&self, flat: usize) -> &Page<T> {
        let entry = &self.pages[flat / PAGE_SLOTS];
        let ptr = entry.load(Ordering::Acquire);
        if !ptr.is_null() {
            return unsafe { &*ptr };
        }
        let fresh = Box::into_raw(Page::boxed());
        match entry.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                self.materialized_pages.fetch_add(1, Ordering::Relaxed);
                unsafe { &*fresh }
            }
            Err(won) => {
                drop(unsafe { Box::from_raw(fresh) });
                unsafe { &*won }
            }
        }
    }

    /// Runs `f` on the slot for `flat` under its stripe lock, materializing
    /// the page first.
    #[inline]
    fn with_slot_mut<R>(&self, flat: usize, f: impl FnOnce(&mut Slot<T>) -> R) -> R {
        let lock = self.stripe(flat);
        lock.lock();
        let page = self.materialize(flat);
        let slot = unsafe { &mut *page.slots[flat % PAGE_SLOTS].get() };
        let out = f(slot);
        lock.unlock();
        out
    }

    /// Runs `f` on the slot for `flat` under its stripe lock, or returns
    /// `default` if the page is not materialized (the slot is empty).
    #[inline]
    fn with_slot<R>(&self, flat: usize, default: R, f: impl FnOnce(&mut Slot<T>) -> R) -> R {
        let Some(page) = self.page(flat) else {
            return default;
        };
        let lock = self.stripe(flat);
        lock.lock();
        let slot = unsafe { &mut *page.slots[flat % PAGE_SLOTS].get() };
        let out = f(slot);
        lock.unlock();
        out
    }

    /// Adds one copy of `value` to slot `(level, vertex)`.
    pub fn add(&self, level: usize, vertex: u32, value: T) {
        let flat = self.flat(level, vertex);
        let newly_touched = self.with_slot_mut(flat, |slot| {
            let first = !slot.touched;
            slot.touched = true;
            slot.add(value);
            first
        });
        if newly_touched {
            self.materialized_slots.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes one copy of `value` from slot `(level, vertex)`.
    /// Returns `true` if a copy was present.
    pub fn remove(&self, level: usize, vertex: u32, value: &T) -> bool {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, false, |slot| slot.remove(value))
    }

    /// Returns `true` if at least one copy of `value` is in the slot.
    pub fn contains(&self, level: usize, vertex: u32, value: &T) -> bool {
        self.count(level, vertex, value) > 0
    }

    /// Number of copies of `value` in the slot.
    pub fn count(&self, level: usize, vertex: u32, value: &T) -> u32 {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, 0, |slot| slot.count(value))
    }

    /// Total number of copies in the slot.
    pub fn len(&self, level: usize, vertex: u32) -> usize {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, 0, |slot| slot.len())
    }

    /// Number of distinct elements in the slot.
    pub fn distinct_len(&self, level: usize, vertex: u32) -> usize {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, 0, |slot| slot.distinct_len())
    }

    /// Returns `true` if the slot holds no elements.
    pub fn is_empty(&self, level: usize, vertex: u32) -> bool {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, true, |slot| slot.distinct_len() == 0)
    }

    /// Removes and returns one copy of an arbitrary element of the slot.
    pub fn pop(&self, level: usize, vertex: u32) -> Option<T> {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, None, |slot| slot.pop())
    }

    /// Keeps only the distinct elements for which `keep` returns `true`
    /// (dropping all copies of the others).
    ///
    /// The predicate runs **under the stripe lock**: it must not call back
    /// into this store (other structures are fine).
    pub fn retain(&self, level: usize, vertex: u32, keep: impl FnMut(&T, u32) -> bool) {
        let flat = self.flat(level, vertex);
        self.with_slot(flat, (), |slot| slot.retain(keep));
    }

    /// Visits the distinct elements of the slot without allocating: elements
    /// are copied into a fixed stack buffer in chunks, and `f` runs with the
    /// stripe lock *released* (so it may freely mutate this store, including
    /// the slot being visited).
    ///
    /// Returns `ControlFlow::Break(())` if `f` broke out early. See the
    /// module documentation for the exact iteration guarantees.
    pub fn for_each_edge(
        &self,
        level: usize,
        vertex: u32,
        mut f: impl FnMut(T) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let flat = self.flat(level, vertex);
        let Some(page) = self.page(flat) else {
            return ControlFlow::Continue(());
        };
        let lock = self.stripe(flat);
        let cell = &page.slots[flat % PAGE_SLOTS];
        let mut buf: [Option<T>; CHUNK] = [None; CHUNK];
        let mut cursor = 0usize;
        let mut version: Option<u32> = None;
        let mut restarts = 0u32;
        loop {
            lock.lock();
            let slot = unsafe { &*cell.get() };
            if version != Some(slot.version) {
                // The slot was reorganized (or this is the first chunk):
                // restart so no stable element hides below the cursor.
                if version.is_some() {
                    restarts += 1;
                    if restarts > MAX_RESTARTS {
                        // Pathological churn: concurrent writers keep
                        // reorganizing the slot faster than the chunked walk
                        // finishes. Fall back to one locked full copy — the
                        // only situation in which this visitor allocates.
                        let mut all = Vec::with_capacity(slot.distinct_len());
                        let mut at = 0;
                        loop {
                            let (copied, next, exhausted) = slot.fill_chunk(at, &mut buf);
                            all.extend(buf.iter().take(copied).map(|v| v.expect("chunk hole")));
                            if exhausted {
                                break;
                            }
                            at = next;
                        }
                        lock.unlock();
                        for value in all {
                            f(value)?;
                        }
                        return ControlFlow::Continue(());
                    }
                }
                cursor = 0;
                version = Some(slot.version);
            }
            let (copied, next_cursor, exhausted) = slot.fill_chunk(cursor, &mut buf);
            lock.unlock();
            for value in buf.iter().take(copied) {
                let value = value.expect("fill_chunk copied a hole");
                f(value)?;
            }
            if exhausted {
                return ControlFlow::Continue(());
            }
            cursor = next_cursor;
        }
    }

    /// Visits every distinct element of every materialized slot as
    /// `(level, vertex, element)` — the checkpoint serialization walker.
    ///
    /// Pages are walked in flat-index order; each slot is copied out under
    /// its stripe lock and `f` runs with the lock released. The walk is a
    /// *consistent snapshot only when the store is quiescent* (single-writer
    /// discipline: the caller holds whatever synchronization stops
    /// structural mutation — for the durable checkpoint path, the batch
    /// engine's leader lock). Under concurrent mutation it degrades to the
    /// same best-effort guarantees as [`AdjacencyStore::for_each_edge`],
    /// which is not good enough to serialize from.
    pub fn for_each_entry(&self, mut f: impl FnMut(usize, u32, T)) {
        let mut copies: Vec<T> = Vec::new();
        let total = self.levels * self.n;
        for (pi, page) in self.pages.iter().enumerate() {
            let ptr = page.load(Ordering::Acquire);
            if ptr.is_null() {
                continue;
            }
            let page = unsafe { &*ptr };
            for si in 0..PAGE_SLOTS {
                let flat = pi * PAGE_SLOTS + si;
                if flat >= total {
                    break;
                }
                copies.clear();
                let lock = self.stripe(flat);
                lock.lock();
                let slot = unsafe { &*page.slots[si].get() };
                let mut buf: [Option<T>; CHUNK] = [None; CHUNK];
                let mut cursor = 0;
                loop {
                    let (copied, next, exhausted) = slot.fill_chunk(cursor, &mut buf);
                    copies.extend(buf.iter().take(copied).map(|v| v.expect("chunk hole")));
                    if exhausted {
                        break;
                    }
                    cursor = next;
                }
                lock.unlock();
                let level = flat / self.n;
                let vertex = (flat % self.n) as u32;
                for &value in &copies {
                    f(level, vertex, value);
                }
            }
        }
    }
}

impl<T> Drop for AdjacencyStore<T> {
    fn drop(&mut self) {
        for page in self.pages.iter() {
            let ptr = page.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl<T: Copy + Eq + Hash> std::fmt::Debug for AdjacencyStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdjacencyStore")
            .field("levels", &self.levels)
            .field("n", &self.n)
            .field("materialized_pages", &self.materialized_pages())
            .field("materialized_slots", &self.materialized_slots())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn construction_materializes_nothing() {
        let store: AdjacencyStore<u64> = AdjacencyStore::new(21, 1_000_000);
        assert_eq!(store.materialized_slots(), 0);
        assert_eq!(store.materialized_pages(), 0);
        assert!(store.is_empty(20, 999_999));
        assert_eq!(store.len(0, 0), 0);
        assert!(!store.contains(3, 17, &42));
        assert_eq!(store.pop(3, 17), None);
        // Probing empty slots must not materialize pages either.
        assert_eq!(store.materialized_pages(), 0);
    }

    #[test]
    fn add_remove_count_multiset_semantics() {
        let store: AdjacencyStore<u32> = AdjacencyStore::new(2, 16);
        store.add(0, 3, 7);
        store.add(0, 3, 7);
        store.add(0, 3, 9);
        assert_eq!(store.count(0, 3, &7), 2);
        assert_eq!(store.len(0, 3), 3);
        assert_eq!(store.distinct_len(0, 3), 2);
        assert!(store.remove(0, 3, &7));
        assert_eq!(store.count(0, 3, &7), 1);
        assert!(store.remove(0, 3, &7));
        assert!(!store.contains(0, 3, &7));
        assert!(!store.remove(0, 3, &7));
        assert!(store.contains(0, 3, &9));
        // The sibling slot at another level is untouched.
        assert!(store.is_empty(1, 3));
        assert_eq!(store.materialized_slots(), 1);
    }

    #[test]
    fn spill_to_table_and_back_pressure() {
        let store: AdjacencyStore<u64> = AdjacencyStore::new(1, 4);
        let many = 200u64;
        for i in 0..many {
            store.add(0, 1, i);
        }
        assert_eq!(store.distinct_len(0, 1), many as usize);
        assert_eq!(store.spilled_slots(), 1);
        for i in 0..many {
            assert!(store.contains(0, 1, &i), "lost {i} after spill");
        }
        for i in 0..many {
            assert!(store.remove(0, 1, &i));
        }
        assert!(store.is_empty(0, 1));
        // Everything can be re-added after a full drain.
        for i in 0..many {
            store.add(0, 1, i);
        }
        assert_eq!(store.distinct_len(0, 1), many as usize);
    }

    #[test]
    fn for_each_edge_visits_every_stable_element() {
        let store: AdjacencyStore<u64> = AdjacencyStore::new(1, 2);
        for count in [1usize, 3, INLINE_CAP, INLINE_CAP + 1, 50, 500] {
            let mut expect = std::collections::HashSet::new();
            for i in 0..count as u64 {
                store.add(0, 0, i);
                expect.insert(i);
            }
            let mut seen = std::collections::HashSet::new();
            let _ = store.for_each_edge(0, 0, |v| {
                seen.insert(v);
                ControlFlow::Continue(())
            });
            assert_eq!(seen, expect, "count={count}");
            store.retain(0, 0, |_, _| false);
            assert!(store.is_empty(0, 0));
        }
    }

    #[test]
    fn for_each_edge_break_stops_early() {
        let store: AdjacencyStore<u32> = AdjacencyStore::new(1, 1);
        for i in 0..100 {
            store.add(0, 0, i);
        }
        let mut visited = 0;
        let out = store.for_each_edge(0, 0, |_| {
            visited += 1;
            if visited == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(out, ControlFlow::Break(()));
        assert_eq!(visited, 5);
    }

    #[test]
    fn callback_may_mutate_the_visited_slot() {
        // The replacement scan removes (promotes) edges from the very slot it
        // iterates; the visitor must tolerate that and still visit every
        // stable element at least once.
        let store: AdjacencyStore<u64> = AdjacencyStore::new(1, 1);
        for i in 0..40u64 {
            store.add(0, 0, i);
        }
        let mut removed = std::collections::HashSet::new();
        let mut seen = std::collections::HashSet::new();
        let _ = store.for_each_edge(0, 0, |v| {
            seen.insert(v);
            if v % 2 == 0 && removed.insert(v) {
                assert!(store.remove(0, 0, &v));
            }
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), 40, "every element visited at least once");
        for v in 0..40u64 {
            assert_eq!(store.contains(0, 0, &v), v % 2 == 1);
        }
    }

    #[test]
    fn pop_drains_all_copies() {
        let store: AdjacencyStore<u32> = AdjacencyStore::new(1, 1);
        store.add(0, 0, 5);
        store.add(0, 0, 5);
        store.add(0, 0, 6);
        let mut popped = Vec::new();
        while let Some(v) = store.pop(0, 0) {
            popped.push(v);
        }
        popped.sort_unstable();
        assert_eq!(popped, vec![5, 5, 6]);
        assert!(store.is_empty(0, 0));
    }

    #[test]
    fn retain_filters_distinct_elements() {
        let store: AdjacencyStore<u32> = AdjacencyStore::new(1, 1);
        for i in 0..20 {
            store.add(0, 0, i);
            store.add(0, 0, i);
        }
        store.retain(0, 0, |v, count| {
            assert_eq!(count, 2);
            v % 3 == 0
        });
        for i in 0..20 {
            assert_eq!(store.contains(0, 0, &i), i % 3 == 0, "element {i}");
            if i % 3 == 0 {
                assert_eq!(store.count(0, 0, &i), 2, "copies of {i} survive");
            }
        }
    }

    #[test]
    fn concurrent_adds_and_removes_balance() {
        let store: Arc<AdjacencyStore<u64>> = Arc::new(AdjacencyStore::new(4, 64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        let level = (i % 4) as usize;
                        let vertex = (i % 64) as u32;
                        store.add(level, vertex, t * 1_000_000 + i);
                    }
                    for i in 0..2000u64 {
                        let level = (i % 4) as usize;
                        let vertex = (i % 64) as u32;
                        assert!(store.remove(level, vertex, &(t * 1_000_000 + i)));
                    }
                });
            }
        });
        for level in 0..4 {
            for vertex in 0..64 {
                assert!(store.is_empty(level, vertex));
            }
        }
    }

    #[test]
    fn concurrent_duplicate_adds_keep_exact_counts() {
        let store: Arc<AdjacencyStore<u32>> = Arc::new(AdjacencyStore::new(1, 8));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for _ in 0..500 {
                        store.add(0, 3, 42);
                    }
                });
            }
        });
        assert_eq!(store.count(0, 3, &42), 2000);
    }

    #[test]
    fn concurrent_page_materialization_is_exact() {
        // Many threads hammer slots of the same fresh page; the page must be
        // materialized exactly once and no additions lost.
        let store: Arc<AdjacencyStore<u64>> = Arc::new(AdjacencyStore::new(1, 64));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        store.add(0, ((t * 100 + i) % 64) as u32, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(store.materialized_pages(), 1);
        let total: usize = (0..64).map(|v| store.len(0, v)).sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn visitor_under_concurrent_mutation_never_misses_stable_elements() {
        // Writers churn a disjoint key range while the main thread iterates;
        // the stable range must always be fully visited.
        let store: Arc<AdjacencyStore<u64>> = Arc::new(AdjacencyStore::new(1, 1));
        for i in 0..32u64 {
            store.add(0, 0, i); // stable elements
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = 1000 + t * 10_000 + (i % 64);
                        store.add(0, 0, key);
                        store.remove(0, 0, &key);
                        i += 1;
                    }
                });
            }
            for _ in 0..200 {
                let mut seen = std::collections::HashSet::new();
                let _ = store.for_each_edge(0, 0, |v| {
                    if v < 32 {
                        seen.insert(v);
                    }
                    ControlFlow::Continue(())
                });
                assert_eq!(
                    seen.len(),
                    32,
                    "missed stable elements {:?}",
                    (0..32u64).filter(|v| !seen.contains(v)).collect::<Vec<_>>()
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
