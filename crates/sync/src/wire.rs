//! Shared wire-format primitives: LEB128 varints and FNV-1a checksums.
//!
//! The repo has two on-disk formats built from the same primitives — the
//! `dc_workloads` trace format and the `dc_durable` write-ahead log /
//! checkpoint files. Both encode integers as LEB128 varints and guard every
//! frame with a running 64-bit FNV-1a checksum; this module is the single
//! definition both serialize against, so the two formats cannot drift apart
//! byte-wise (a trace op record and a WAL op record are the same bytes).

use std::io;

/// Maximum encoded length of a `u64` LEB128 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Running 64-bit FNV-1a hash over a byte stream.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Feeds `bytes` into the running hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }

    /// The current hash value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }

    /// One-shot hash of a complete byte slice.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.update(bytes);
        h.value()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes `value` as a LEB128 varint into a fixed buffer; returns the
/// buffer and the number of significant bytes.
#[inline]
pub fn varint_encode(mut value: u64) -> ([u8; MAX_VARINT_LEN], usize) {
    let mut buf = [0u8; MAX_VARINT_LEN];
    let mut len = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf[len] = byte;
            len += 1;
            return (buf, len);
        }
        buf[len] = byte | 0x80;
        len += 1;
    }
}

/// Appends the LEB128 encoding of `value` to `buf`.
#[inline]
pub fn push_varint(buf: &mut Vec<u8>, value: u64) {
    let (bytes, len) = varint_encode(value);
    buf.extend_from_slice(&bytes[..len]);
}

/// Decodes one LEB128 varint by pulling bytes from `next`.
///
/// Fails with the error `next` produced (typically `UnexpectedEof` on a
/// truncated stream) or with `InvalidData` if the encoding overflows `u64`.
#[inline]
pub fn varint_decode(mut next: impl FnMut() -> io::Result<u8>) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = next()?;
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
    }
}

/// Decodes one varint from `buf` starting at `*pos`, advancing `*pos` past
/// it. Returns `None` if the slice ends mid-varint or the value overflows.
#[inline]
pub fn varint_decode_slice(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_representative_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            // Streaming decoder.
            let mut it = buf.iter().copied();
            let decoded = varint_decode(|| {
                it.next()
                    .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))
            })
            .unwrap();
            assert_eq!(decoded, v);
            // Slice decoder, and it must consume exactly the encoding.
            let mut pos = 0;
            assert_eq!(varint_decode_slice(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_encoding_is_minimal_and_bounded() {
        assert_eq!(varint_encode(0).1, 1);
        assert_eq!(varint_encode(127).1, 1);
        assert_eq!(varint_encode(128).1, 2);
        assert_eq!(varint_encode(u64::MAX).1, MAX_VARINT_LEN);
    }

    #[test]
    fn truncated_varint_reports_eof() {
        let mut buf = Vec::new();
        push_varint(&mut buf, 1 << 40);
        buf.pop(); // drop the terminating byte
        let mut it = buf.iter().copied();
        let err = varint_decode(|| {
            it.next()
                .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let mut pos = 0;
        assert_eq!(varint_decode_slice(&buf, &mut pos), None);
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0x80u8; 10]; // continuation forever
        let mut it = buf.iter().copied().chain(std::iter::repeat(0x80));
        let err = varint_decode(|| Ok(it.next().unwrap())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fnv64::hash(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(Fnv64::hash(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(Fnv64::hash(b"foobar"), 0x8594_4171_F739_67E8);
        // Incremental == one-shot.
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.value(), Fnv64::hash(b"foobar"));
    }
}
