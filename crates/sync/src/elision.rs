//! The hardware-lock-elision substitution.
//!
//! Variants 4, 5 and 11 of the paper's evaluation wrap their critical
//! sections in Intel TSX hardware transactions via *speculative lock elision*
//! (Rajwar & Goodman): the lock word is only written when the transaction
//! aborts and the code falls back to actually acquiring the lock.  The
//! machines available to this reproduction expose no TSX/RTM, so — per the
//! substitution rule in `DESIGN.md` §4 — [`ElisionLock`] emulates the
//! *scheduling behaviour* of an elided lock without real speculation:
//!
//! * a bounded optimistic `try_lock` spin models the transactional fast path
//!   (cheap when uncontended, quickly abandoned under contention), and
//! * the fallback is a plain blocking acquisition, exactly like an aborted
//!   transaction falling back to the lock.
//!
//! The paper's own conclusion is that HTM variants track their lock-based
//! counterparts closely (identical for the full algorithm); this emulation
//! preserves that relationship by construction, and `EXPERIMENTS.md` flags
//! the small read-heavy-workload win that cannot materialise without real
//! hardware speculation.

use crate::waitstats;
use parking_lot::{Mutex, MutexGuard};

/// A mutex with an optimistic, bounded spin fast path emulating speculative
/// lock elision. See the module documentation.
pub struct ElisionLock<T> {
    inner: Mutex<T>,
    /// How many optimistic attempts to make before falling back to blocking.
    attempts: u32,
}

impl<T> ElisionLock<T> {
    /// Default number of optimistic attempts, roughly matching the retry
    /// budget of an RTM retry loop before taking the fallback path.
    pub const DEFAULT_ATTEMPTS: u32 = 16;

    /// Creates a new lock around `value`.
    pub fn new(value: T) -> Self {
        ElisionLock {
            inner: Mutex::new(value),
            attempts: Self::DEFAULT_ATTEMPTS,
        }
    }

    /// Creates a new lock with an explicit optimistic retry budget.
    pub fn with_attempts(value: T, attempts: u32) -> Self {
        ElisionLock {
            inner: Mutex::new(value),
            attempts: attempts.max(1),
        }
    }

    /// Acquires the lock, reporting blocking time to [`waitstats`].
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // "Transactional" fast path: optimistic attempts without blocking.
        for _ in 0..self.attempts {
            if let Some(guard) = self.inner.try_lock() {
                return guard;
            }
            std::hint::spin_loop();
        }
        // "Abort" path: fall back to the real lock.
        let timer = waitstats::WaitTimer::start();
        let guard = self.inner.lock();
        timer.finish();
        guard
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for ElisionLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_lock_unlock() {
        let l = ElisionLock::new(5u32);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = ElisionLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let l = Arc::new(ElisionLock::with_attempts(0u64, 4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        *l.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.lock(), 20_000);
    }
}
