//! A concurrent multiset with snapshot iteration.
//!
//! The full algorithm (paper Appendix C) stores the non-spanning edges
//! adjacent to each Euler-Tour-Tree node in a "concurrent lock-free multiset,
//! which allows iterating over its elements".  It is a multiset rather than a
//! set because the optimistic insertion protocol may briefly leave more than
//! one copy of the same edge in the structure.
//!
//! This implementation keeps a count per element behind a single short-held
//! mutex (the per-node sets are tiny — a handful of adjacent edges), and
//! iteration works over a snapshot so a replacement search never observes a
//! torn view.  The operations match the interface the paper requires:
//! `add`, `remove` (one copy), `contains`, `len`, and snapshot iteration.

use crate::hash::FxBuildHasher;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;

/// A concurrent multiset; see the module documentation.
pub struct ConcurrentMultiSet<T> {
    inner: Mutex<HashMap<T, usize, FxBuildHasher>>,
}

impl<T> ConcurrentMultiSet<T>
where
    T: Hash + Eq + Clone,
{
    /// Creates an empty multiset.
    pub fn new() -> Self {
        ConcurrentMultiSet {
            inner: Mutex::new(HashMap::with_hasher(FxBuildHasher::default())),
        }
    }

    /// Adds one copy of `value`.
    pub fn add(&self, value: T) {
        let mut map = self.inner.lock();
        *map.entry(value).or_insert(0) += 1;
    }

    /// Removes one copy of `value`. Returns `true` if a copy was present.
    pub fn remove(&self, value: &T) -> bool {
        let mut map = self.inner.lock();
        match map.get_mut(value) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    map.remove(value);
                }
                true
            }
            None => false,
        }
    }

    /// Returns `true` if at least one copy of `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.lock().contains_key(value)
    }

    /// Number of copies of `value`.
    pub fn count(&self, value: &T) -> usize {
        self.inner.lock().get(value).copied().unwrap_or(0)
    }

    /// Total number of stored copies.
    pub fn len(&self) -> usize {
        self.inner.lock().values().sum()
    }

    /// Returns `true` if the multiset holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Number of *distinct* elements.
    pub fn distinct_len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Takes a snapshot of the distinct elements currently present.
    ///
    /// The replacement search iterates over this snapshot; elements added
    /// concurrently may or may not appear, exactly like iterating a
    /// concurrent collection on the JVM.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.lock().keys().cloned().collect()
    }

    /// Removes every copy of every element, returning the previous distinct
    /// elements.
    pub fn drain(&self) -> Vec<T> {
        let mut map = self.inner.lock();
        let out = map.keys().cloned().collect();
        map.clear();
        out
    }
}

impl<T> Default for ConcurrentMultiSet<T>
where
    T: Hash + Eq + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for ConcurrentMultiSet<T>
where
    T: Hash + Eq + Clone + std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentMultiSet")
            .field("distinct", &self.distinct_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_remove_counts() {
        let s = ConcurrentMultiSet::new();
        assert!(s.is_empty());
        s.add(7u32);
        s.add(7);
        s.add(9);
        assert_eq!(s.count(&7), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.distinct_len(), 2);
        assert!(s.remove(&7));
        assert_eq!(s.count(&7), 1);
        assert!(s.remove(&7));
        assert!(!s.contains(&7));
        assert!(!s.remove(&7));
        assert!(s.contains(&9));
    }

    #[test]
    fn snapshot_contains_distinct_elements() {
        let s = ConcurrentMultiSet::new();
        for i in 0..10u32 {
            s.add(i);
            s.add(i);
        }
        let mut snap = s.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn drain_empties_the_set() {
        let s = ConcurrentMultiSet::new();
        s.add(1u8);
        s.add(2);
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_adds_and_removes_balance() {
        let s: Arc<ConcurrentMultiSet<u64>> = Arc::new(ConcurrentMultiSet::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        s.add(t * 1_000_000 + i);
                    }
                    for i in 0..1000u64 {
                        assert!(s.remove(&(t * 1_000_000 + i)));
                    }
                });
            }
        });
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_duplicate_adds_keep_exact_counts() {
        let s: Arc<ConcurrentMultiSet<u32>> = Arc::new(ConcurrentMultiSet::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..500 {
                        s.add(42);
                    }
                });
            }
        });
        assert_eq!(s.count(&42), 2000);
    }
}
