//! A word-sized raw readers-writer lock with explicit lock/unlock.
//!
//! Variant 7 of the paper's evaluation replaces the per-component exclusive
//! locks of the fine-grained algorithm with readers-writer locks so that
//! connectivity queries on the same component can proceed in parallel.  Like
//! [`crate::spinlock::RawSpinLock`], acquisition and release happen at
//! different call sites, so the lock exposes raw `read_lock` / `read_unlock`
//! / `lock` / `unlock` operations rather than RAII guards.
//!
//! The implementation is a single atomic word: the high bit is the writer
//! flag, the low bits count readers.  Writers wait for the reader count to
//! drain; readers wait while the writer bit is set.  Waiting time is reported
//! to [`crate::waitstats`] for the active-time-rate plots.

use crate::waitstats;
use std::sync::atomic::{AtomicU32, Ordering};

const WRITER: u32 = 1 << 31;

/// A raw readers-writer spinlock. See the module documentation.
#[derive(Default)]
pub struct RawRwLock {
    state: AtomicU32,
}

impl RawRwLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        RawRwLock {
            state: AtomicU32::new(0),
        }
    }

    /// Attempts to acquire the lock exclusively without blocking.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires the lock exclusively (writer mode).
    pub fn lock(&self) {
        if self.try_lock() {
            return;
        }
        let timer = waitstats::WaitTimer::start();
        let mut spins = 0u32;
        loop {
            while self.state.load(Ordering::Relaxed) != 0 {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            if self.try_lock() {
                break;
            }
        }
        timer.finish();
    }

    /// Releases an exclusive acquisition.
    #[inline]
    pub fn unlock(&self) {
        debug_assert_eq!(
            self.state.load(Ordering::Relaxed) & WRITER,
            WRITER,
            "unlock without a writer"
        );
        self.state.store(0, Ordering::Release);
    }

    /// Attempts to acquire the lock in shared (reader) mode without blocking.
    #[inline]
    pub fn try_read_lock(&self) -> bool {
        let cur = self.state.load(Ordering::Relaxed);
        cur & WRITER == 0
            && self
                .state
                .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Acquires the lock in shared (reader) mode.
    pub fn read_lock(&self) {
        if self.try_read_lock() {
            return;
        }
        let timer = waitstats::WaitTimer::start();
        let mut spins = 0u32;
        loop {
            let cur = self.state.load(Ordering::Relaxed);
            if cur & WRITER == 0 {
                if self
                    .state
                    .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
            } else {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        timer.finish();
    }

    /// Releases a shared acquisition.
    #[inline]
    pub fn read_unlock(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & !WRITER > 0, "read_unlock without readers");
    }

    /// Returns `true` if the lock is currently held exclusively.
    #[inline]
    pub fn is_write_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & WRITER != 0
    }

    /// Returns the current number of shared holders.
    #[inline]
    pub fn reader_count(&self) -> u32 {
        self.state.load(Ordering::Relaxed) & !WRITER
    }
}

impl std::fmt::Debug for RawRwLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawRwLock")
            .field("writer", &self.is_write_locked())
            .field("readers", &self.reader_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn exclusive_roundtrip() {
        let l = RawRwLock::new();
        l.lock();
        assert!(l.is_write_locked());
        assert!(!l.try_lock());
        assert!(!l.try_read_lock());
        l.unlock();
        assert!(!l.is_write_locked());
    }

    #[test]
    fn shared_acquisitions_stack() {
        let l = RawRwLock::new();
        l.read_lock();
        l.read_lock();
        assert_eq!(l.reader_count(), 2);
        assert!(!l.try_lock(), "writer must wait for readers");
        l.read_unlock();
        l.read_unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn writers_exclude_each_other_under_contention() {
        let lock = Arc::new(RawRwLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        lock.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 20_000);
    }

    #[test]
    fn readers_run_alongside_readers_and_exclude_writers() {
        let lock = Arc::new(RawRwLock::new());
        let shared = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            // Writers increment in two non-atomic steps; readers must never
            // observe an odd value.
            for _ in 0..2 {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..2_000 {
                        lock.lock();
                        shared.fetch_add(1, Ordering::Relaxed);
                        shared.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                });
            }
            for _ in 0..2 {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..2_000 {
                        lock.read_lock();
                        assert_eq!(shared.load(Ordering::Relaxed) % 2, 0);
                        lock.read_unlock();
                    }
                });
            }
        });
        assert_eq!(shared.load(Ordering::Relaxed), 8_000);
    }
}
