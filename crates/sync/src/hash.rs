//! The workspace's shared fast hasher.
//!
//! Every hot-path hash in this project keys on small integers or integer
//! pairs (edges, node references), for which SipHash is needlessly slow.
//! [`FxHasher`] is the FxHash-style multiply-xor hasher previously private
//! to [`crate::cmap`]; it now lives here so the sharded map, the concurrent
//! multiset and the adjacency store all share one definition.

use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-cryptographic hasher (FxHash-style multiply-xor) used to pick
/// shards and to hash keys inside shards.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes one value with [`FxHasher`] (convenience for index selection).
#[inline]
pub fn fx_hash_u64(word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(word);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn consecutive_integers_spread() {
        // The hasher must not collapse consecutive small keys onto the same
        // low bits (they are used to pick shards and lock stripes).
        let build = FxBuildHasher::default();
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_bits.insert(build.hash_one(i) & 0xF);
        }
        assert!(
            low_bits.len() >= 8,
            "only {} of 16 buckets hit",
            low_bits.len()
        );
    }

    #[test]
    fn fx_hash_u64_is_deterministic_and_nontrivial() {
        assert_eq!(fx_hash_u64(7), fx_hash_u64(7));
        assert_ne!(fx_hash_u64(7), fx_hash_u64(8));
        assert_ne!(fx_hash_u64(7), 7);
    }
}
