//! A generic flat-combining / parallel-combining executor.
//!
//! *Flat combining* (Hendler et al., SPAA '10) funnels the operations of all
//! threads through a single *combiner*: every thread publishes its operation
//! in a per-thread slot, and whichever thread grabs the combiner lock applies
//! all published operations against the sequential data structure before
//! releasing it.  *Parallel combining* (Aksenov et al., OPODIS '18) extends
//! the idea for read-dominated workloads: the combiner lets the waiting
//! readers execute their own read-only operations in parallel (while it
//! refrains from mutating the structure), then applies the writes
//! sequentially.
//!
//! The paper uses both techniques as baselines (variants 12 and 13 of the
//! evaluation).  This module implements them generically over any
//! [`CombiningTarget`], so the dynamic connectivity crate can wrap its
//! sequential HDT structure without further synchronization code.

use crate::spinlock::RawSpinLock;
use crate::waitstats;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// A sequential data structure that can be driven by the combining executor.
pub trait CombiningTarget {
    /// Operation request type.
    type Op: Send;
    /// Operation result type.
    type Res: Send;

    /// Returns `true` if `op` is read-only (eligible for the parallel read
    /// phase of parallel combining).
    fn is_read(op: &Self::Op) -> bool;

    /// Applies a (possibly mutating) operation.
    fn apply_mut(&mut self, op: Self::Op) -> Self::Res;

    /// Applies a read-only operation through a shared reference.
    ///
    /// Only called for operations for which [`CombiningTarget::is_read`]
    /// returned `true`, and only while no mutating operation is running.
    fn apply_read(&self, op: Self::Op) -> Self::Res;
}

/// Selects how the executor schedules published operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombiningMode {
    /// Classic flat combining: the combiner applies every operation itself.
    FlatCombining,
    /// Parallel combining: read-only operations are executed in parallel by
    /// the threads that submitted them; writes are applied by the combiner.
    ParallelReads,
}

const SLOT_EMPTY: u8 = 0;
const SLOT_PENDING: u8 = 1;
const SLOT_READ_PHASE: u8 = 2;
const SLOT_DONE: u8 = 3;

struct Slot<T: CombiningTarget> {
    state: AtomicU8,
    op: UnsafeCell<Option<T::Op>>,
    res: UnsafeCell<Option<T::Res>>,
}

impl<T: CombiningTarget> Slot<T> {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(SLOT_EMPTY),
            op: UnsafeCell::new(None),
            res: UnsafeCell::new(None),
        }
    }
}

/// The combining executor. See the module documentation.
pub struct CombiningExecutor<T: CombiningTarget> {
    id: usize,
    mode: CombiningMode,
    target: UnsafeCell<T>,
    combiner: RawSpinLock,
    slots: Box<[Slot<T>]>,
    registered: AtomicUsize,
}

// SAFETY: the target is only accessed mutably while the combiner lock is
// held; slot op/res cells are written by their owning thread before the
// PENDING release-store and read by the combiner after an acquire-load (and
// vice versa for results), so all cross-thread accesses are ordered.
unsafe impl<T: CombiningTarget + Send + Sync> Sync for CombiningExecutor<T> {}
unsafe impl<T: CombiningTarget + Send> Send for CombiningExecutor<T> {}

static EXECUTOR_IDS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Maps executor id -> this thread's slot index.
    static THREAD_SLOTS: std::cell::RefCell<HashMap<usize, usize>> =
        std::cell::RefCell::new(HashMap::new());
}

impl<T: CombiningTarget> CombiningExecutor<T> {
    /// Default maximum number of participating threads.
    pub const DEFAULT_SLOTS: usize = 256;

    /// Creates an executor around `target` with the given scheduling mode.
    pub fn new(target: T, mode: CombiningMode) -> Self {
        Self::with_capacity(target, mode, Self::DEFAULT_SLOTS)
    }

    /// Creates an executor with space for at most `capacity` threads.
    pub fn with_capacity(target: T, mode: CombiningMode, capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot::new())
            .collect::<Vec<_>>();
        CombiningExecutor {
            id: EXECUTOR_IDS.fetch_add(1, Ordering::Relaxed),
            mode,
            target: UnsafeCell::new(target),
            combiner: RawSpinLock::new(),
            slots: slots.into_boxed_slice(),
            registered: AtomicUsize::new(0),
        }
    }

    /// The scheduling mode of this executor.
    pub fn mode(&self) -> CombiningMode {
        self.mode
    }

    /// Consumes the executor and returns the wrapped structure.
    pub fn into_inner(self) -> T {
        self.target.into_inner()
    }

    /// Runs `f` on the wrapped structure while holding the combiner lock
    /// (useful for initialization and for collecting statistics).
    pub fn with_exclusive<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.combiner.lock();
        // SAFETY: combiner lock held, so no other thread touches the target.
        let result = f(unsafe { &mut *self.target.get() });
        self.combiner.unlock();
        result
    }

    fn slot_index(&self) -> usize {
        THREAD_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            *slots.entry(self.id).or_insert_with(|| {
                let idx = self.registered.fetch_add(1, Ordering::Relaxed);
                assert!(
                    idx < self.slots.len(),
                    "more than {} threads used a CombiningExecutor",
                    self.slots.len()
                );
                idx
            })
        })
    }

    /// Executes `op`, possibly by combining it with other threads'
    /// operations, and returns its result.
    pub fn execute(&self, op: T::Op) -> T::Res {
        let idx = self.slot_index();
        let slot = &self.slots[idx];
        let is_read = T::is_read(&op);
        // Publish the request.
        // SAFETY: this thread owns the slot and its state is EMPTY, so no
        // other thread reads `op` until the release-store below.
        unsafe { *slot.op.get() = Some(op) };
        slot.state.store(SLOT_PENDING, Ordering::Release);

        let mut wait_timer = Some(waitstats::WaitTimer::start());
        loop {
            match slot.state.load(Ordering::Acquire) {
                SLOT_DONE => {
                    if let Some(timer) = wait_timer.take() {
                        timer.finish();
                    }
                    // SAFETY: DONE means the combiner finished writing `res`
                    // (release) and will not touch the slot again.
                    let res = unsafe { (*slot.res.get()).take() };
                    slot.state.store(SLOT_EMPTY, Ordering::Release);
                    return res.expect("combiner marked DONE without a result");
                }
                SLOT_READ_PHASE if is_read => {
                    // Parallel combining read phase: run our own read.
                    if let Some(timer) = wait_timer.take() {
                        timer.finish();
                    }
                    // SAFETY: the combiner guarantees no mutation is running
                    // during the read phase, so a shared reference is sound;
                    // the op was written by this thread.
                    let op =
                        unsafe { (*slot.op.get()).take() }.expect("read-phase slot without op");
                    let res = unsafe { (*self.target.get()).apply_read(op) };
                    unsafe { *slot.res.get() = Some(res) };
                    slot.state.store(SLOT_DONE, Ordering::Release);
                    // Loop around; the DONE branch picks the result up.
                }
                _ => {
                    if self.combiner.try_lock() {
                        self.combine(idx);
                        self.combiner.unlock();
                    } else {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Applies all currently published operations. Must be called with the
    /// combiner lock held; `self_idx` is the combiner's own slot, whose
    /// operation is always executed by the combiner itself in phase 2 (it
    /// cannot participate in the parallel read phase — the combiner would be
    /// waiting for itself).
    fn combine(&self, self_idx: usize) {
        // Phase 1 (ParallelReads only): hand read operations back to their
        // owners and wait for them to finish, without mutating the target.
        if self.mode == CombiningMode::ParallelReads {
            let mut read_slots: Vec<usize> = Vec::new();
            for (i, slot) in self.slots.iter().enumerate() {
                if i == self_idx {
                    continue;
                }
                if slot.state.load(Ordering::Acquire) == SLOT_PENDING {
                    // SAFETY: PENDING was released by the owner after writing
                    // the op, and only the combiner inspects it now.
                    let is_read = unsafe { (*slot.op.get()).as_ref() }
                        .map(|op| T::is_read(op))
                        .unwrap_or(false);
                    if is_read {
                        slot.state.store(SLOT_READ_PHASE, Ordering::Release);
                        read_slots.push(i);
                    }
                }
            }
            // Wait for the parallel readers; the target must stay immutable
            // until every one of them has finished.
            for &i in &read_slots {
                while self.slots[i].state.load(Ordering::Acquire) == SLOT_READ_PHASE {
                    std::hint::spin_loop();
                }
            }
        }

        // Phase 2: apply the remaining published operations sequentially.
        for slot in self.slots.iter() {
            if slot.state.load(Ordering::Acquire) == SLOT_PENDING {
                // SAFETY: see above; the combiner lock is held, so mutable
                // access to the target is exclusive.
                let op = unsafe { (*slot.op.get()).take() };
                if let Some(op) = op {
                    let target = unsafe { &mut *self.target.get() };
                    let res = if self.mode == CombiningMode::FlatCombining && T::is_read(&op) {
                        // Reads do not need `&mut`, but the combiner applies
                        // them inline either way in classic flat combining.
                        target.apply_read(op)
                    } else {
                        target.apply_mut(op)
                    };
                    unsafe { *slot.res.get() = Some(res) };
                    slot.state.store(SLOT_DONE, Ordering::Release);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A toy sequential structure: a set of integers with add/contains/len.
    #[derive(Default)]
    struct IntSet {
        values: std::collections::BTreeSet<u64>,
    }

    enum SetOp {
        Add(u64),
        Contains(u64),
        Len,
    }

    #[derive(Debug, PartialEq)]
    enum SetRes {
        Added(bool),
        Found(bool),
        Count(usize),
    }

    impl CombiningTarget for IntSet {
        type Op = SetOp;
        type Res = SetRes;

        fn is_read(op: &SetOp) -> bool {
            matches!(op, SetOp::Contains(_) | SetOp::Len)
        }

        fn apply_mut(&mut self, op: SetOp) -> SetRes {
            match op {
                SetOp::Add(x) => SetRes::Added(self.values.insert(x)),
                SetOp::Contains(x) => SetRes::Found(self.values.contains(&x)),
                SetOp::Len => SetRes::Count(self.values.len()),
            }
        }

        fn apply_read(&self, op: SetOp) -> SetRes {
            match op {
                SetOp::Contains(x) => SetRes::Found(self.values.contains(&x)),
                SetOp::Len => SetRes::Count(self.values.len()),
                SetOp::Add(_) => unreachable!("Add is not a read operation"),
            }
        }
    }

    fn run_mixed_workload(mode: CombiningMode) {
        let exec = Arc::new(CombiningExecutor::new(IntSet::default(), mode));
        let threads = 4u64;
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let key = t * per_thread + i;
                        assert_eq!(exec.execute(SetOp::Add(key)), SetRes::Added(true));
                        assert_eq!(exec.execute(SetOp::Contains(key)), SetRes::Found(true));
                    }
                });
            }
        });
        let total = exec.execute(SetOp::Len);
        assert_eq!(total, SetRes::Count((threads * per_thread) as usize));
    }

    #[test]
    fn flat_combining_mixed_workload() {
        run_mixed_workload(CombiningMode::FlatCombining);
    }

    #[test]
    fn parallel_combining_mixed_workload() {
        run_mixed_workload(CombiningMode::ParallelReads);
    }

    #[test]
    fn single_thread_operations_work() {
        let exec = CombiningExecutor::new(IntSet::default(), CombiningMode::FlatCombining);
        assert_eq!(exec.execute(SetOp::Add(1)), SetRes::Added(true));
        assert_eq!(exec.execute(SetOp::Add(1)), SetRes::Added(false));
        assert_eq!(exec.execute(SetOp::Contains(1)), SetRes::Found(true));
        assert_eq!(exec.execute(SetOp::Contains(2)), SetRes::Found(false));
        assert_eq!(exec.execute(SetOp::Len), SetRes::Count(1));
    }

    #[test]
    fn with_exclusive_provides_mutable_access() {
        let exec = CombiningExecutor::new(IntSet::default(), CombiningMode::ParallelReads);
        exec.with_exclusive(|set| {
            set.values.insert(99);
        });
        assert_eq!(exec.execute(SetOp::Contains(99)), SetRes::Found(true));
        assert_eq!(exec.into_inner().values.len(), 1);
    }

    #[test]
    fn read_heavy_parallel_combining_is_consistent() {
        let exec = Arc::new(CombiningExecutor::new(
            IntSet::default(),
            CombiningMode::ParallelReads,
        ));
        for i in 0..100 {
            exec.execute(SetOp::Add(i));
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    for i in 0..100 {
                        assert_eq!(exec.execute(SetOp::Contains(i)), SetRes::Found(true));
                        assert_eq!(
                            exec.execute(SetOp::Contains(i + 1000)),
                            SetRes::Found(false)
                        );
                    }
                });
            }
        });
    }
}
