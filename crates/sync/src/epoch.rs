//! Epoch-based memory reclamation for the lock-free read paths.
//!
//! The paper's implementation runs on the JVM: a `connected` query holding a
//! stale reference to a retired Euler-tour node simply keeps that node alive
//! through the garbage collector.  This module is the from-scratch Rust
//! substitute — classic three-epoch reclamation (Fraser-style, the scheme
//! crossbeam-epoch implements) scoped to an explicit [`EpochDomain`]:
//!
//! * Readers **pin** the domain for the duration of a traversal.  Pinning
//!   publishes the thread's view of the global epoch in a per-thread slot;
//!   unpinning clears it.  Pins are cheap (one `SeqCst` store + load on the
//!   thread's own cache-padded slot) and reentrant.
//! * Writers **retire** resources into one of three [`Limbo`] bins, indexed
//!   by the current global epoch modulo 3.
//! * The global epoch **advances** from `e` to `e + 1` only when every
//!   currently pinned thread has observed `e` (the grace-period check).
//!   Garbage retired at epoch `e` is handed back to its owner once the
//!   global epoch reaches `e + 2`: at that point two full grace periods have
//!   elapsed, so every thread that could have pinned early enough to hold a
//!   reference (any pin at epoch `≤ e + 1` — retirement may race with one
//!   concurrent advance) has unpinned since.
//!
//! Each domain is independent: a forest's readers only delay reclamation in
//! that forest's arena, and dropping the domain releases everything.  Slot
//! registration is per `(thread, domain)` and cached in a thread-local
//! registry; slots are returned when the thread exits (or abandoned — never
//! unsafely — if a thread exits while pinned, e.g. after a leaked guard).
//!
//! The safety argument for the Euler-tour arena built on top of this is laid
//! out in `DESIGN.md` §4.

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Slot value of an unclaimed slot.
const FREE: u64 = u64::MAX;
/// Bit flagging a slot as currently pinned (the low bits hold the epoch).
const ACTIVE: u64 = 1 << 63;
/// Maximum number of threads that may simultaneously use one domain.
const MAX_SLOTS: usize = 192;

/// One per-thread epoch slot, padded to its own cache line so pinning never
/// contends with a neighbour's slot.
#[repr(align(64))]
struct Slot(AtomicU64);

/// The shared slot table of one domain.
struct SlotArray {
    slots: Box<[Slot]>,
    /// One past the highest slot index ever claimed; the advance scan stops
    /// here instead of walking all `MAX_SLOTS` lines.
    watermark: AtomicUsize,
}

impl SlotArray {
    fn new() -> Self {
        SlotArray {
            slots: (0..MAX_SLOTS)
                .map(|_| Slot(AtomicU64::new(FREE)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            watermark: AtomicUsize::new(0),
        }
    }

    fn claim(&self) -> usize {
        for i in 0..MAX_SLOTS {
            if self.slots[i]
                .0
                .compare_exchange(FREE, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.watermark.fetch_max(i + 1, Ordering::AcqRel);
                return i;
            }
        }
        panic!("epoch domain: more than {MAX_SLOTS} concurrent threads");
    }
}

/// Distinguishes domains in the thread-local registry (never reused).
static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

/// An independent reclamation domain; see the module documentation.
pub struct EpochDomain {
    id: u64,
    global: AtomicU64,
    slots: Arc<SlotArray>,
    /// Serializes epoch advances (and the bin drains that ride on them), so
    /// a second advance can never start while a drain from the first is in
    /// flight — the property that keeps the three-bin scheme sound.
    collect_lock: Mutex<()>,
    /// Grace-period check outcomes (diagnostics: stall analysis in tests
    /// and benches).
    advance_attempts: AtomicU64,
    advance_failures: AtomicU64,
}

impl EpochDomain {
    /// Creates a fresh domain at epoch 0 with no registered threads.
    pub fn new() -> Self {
        EpochDomain {
            id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            global: AtomicU64::new(0),
            slots: Arc::new(SlotArray::new()),
            collect_lock: Mutex::new(()),
            advance_attempts: AtomicU64::new(0),
            advance_failures: AtomicU64::new(0),
        }
    }

    /// `(grace-period checks run, checks that found a stale pin)` since
    /// construction.
    pub fn advance_stats(&self) -> (u64, u64) {
        (
            self.advance_attempts.load(Ordering::Relaxed),
            self.advance_failures.load(Ordering::Relaxed),
        )
    }

    /// The current global epoch.
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Pins the calling thread to the current epoch. Reentrant: nested pins
    /// share the outermost pin's epoch and only the outermost unpin
    /// republishes the slot as inactive.
    pub fn pin(&self) -> EpochGuard<'_> {
        REGISTRY.with(|registry| {
            let entry_ptr = registry.borrow_mut().entry_for(self);
            // SAFETY: the entry is heap-allocated (boxed) and lives until
            // this thread's registry is dropped at thread exit; the guard
            // cannot outlive this thread.
            let entry = unsafe { &*entry_ptr };
            if entry.depth.get() == 0 {
                let slot = &self.slots.slots[entry.idx].0;
                loop {
                    let epoch = self.global.load(Ordering::SeqCst);
                    slot.store(epoch | ACTIVE, Ordering::SeqCst);
                    // Re-check: if the global epoch moved between the load
                    // and the store, re-publish with the new value so an
                    // in-flight advance scan cannot have missed us.
                    if self.global.load(Ordering::SeqCst) == epoch {
                        break;
                    }
                }
            }
            entry.depth.set(entry.depth.get() + 1);
            EpochGuard {
                entry: entry_ptr,
                slot: &self.slots.slots[entry.idx].0,
                _not_send: PhantomData,
            }
        })
    }

    /// Attempts one epoch advance (grace-period check over all registered
    /// slots). Returns the new epoch on success. Public for tests; regular
    /// reclamation goes through [`Limbo::try_collect`].
    pub fn try_advance(&self) -> Option<u64> {
        let _lock = self.collect_lock.try_lock()?;
        self.advance_locked()
    }

    fn advance_locked(&self) -> Option<u64> {
        self.advance_attempts.fetch_add(1, Ordering::Relaxed);
        let epoch = self.global.load(Ordering::SeqCst);
        let watermark = self.slots.watermark.load(Ordering::Acquire);
        for slot in &self.slots.slots[..watermark] {
            let s = slot.0.load(Ordering::SeqCst);
            if s != FREE && s & ACTIVE != 0 && s & !ACTIVE != epoch {
                self.advance_failures.fetch_add(1, Ordering::Relaxed);
                return None; // a thread is still pinned in an older epoch
            }
        }
        // The collect lock makes us the only advancing thread, so the CAS
        // can only fail against... nothing; keep it a CAS for robustness.
        self.global
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
            .ok()?;
        Some(epoch + 1)
    }

    /// Number of threads currently pinned in this domain (observability for
    /// tests and diagnostics).
    pub fn active_pins(&self) -> usize {
        let watermark = self.slots.watermark.load(Ordering::Acquire);
        self.slots.slots[..watermark]
            .iter()
            .filter(|slot| {
                let s = slot.0.load(Ordering::SeqCst);
                s != FREE && s & ACTIVE != 0
            })
            .count()
    }
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDomain")
            .field("epoch", &self.current_epoch())
            .field("active_pins", &self.active_pins())
            .finish()
    }
}

/// RAII pin on an [`EpochDomain`]. While any guard is alive on this thread,
/// the domain's epoch cannot advance more than one step past the guard's
/// epoch, so resources retired from now on are not handed back to their
/// owner until this guard drops.
pub struct EpochGuard<'a> {
    entry: *const Entry,
    slot: &'a AtomicU64,
    /// Raw pointer already makes the guard `!Send`/`!Sync`; the marker ties
    /// the guard's lifetime to the domain borrow.
    _not_send: PhantomData<*const ()>,
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        // SAFETY: guards never leave their thread and the boxed entry
        // outlives every guard (registry drops at thread exit).
        let entry = unsafe { &*self.entry };
        let depth = entry.depth.get();
        debug_assert!(depth > 0, "unbalanced epoch unpin");
        entry.depth.set(depth - 1);
        if depth == 1 {
            self.slot.store(0, Ordering::Release); // claimed, inactive
        }
    }
}

/// One thread's registration in one domain.
struct Entry {
    domain_id: u64,
    /// Weak so a dropped domain's entries can be pruned (and its slot table
    /// freed) without coordination; a live guard keeps the domain borrowed,
    /// so an upgradeable entry is never needed while pinned.
    slots: Weak<SlotArray>,
    idx: usize,
    depth: Cell<u32>,
}

/// The calling thread's registrations across all domains.
#[derive(Default)]
struct Registry {
    /// The boxes are load-bearing, not redundant: guards hold raw pointers
    /// to entries, which must stay put when the vector reallocates or
    /// swap-removes around them.
    #[allow(clippy::vec_box)]
    entries: Vec<Box<Entry>>,
}

impl Registry {
    /// Returns a stable pointer to this thread's entry for `domain`,
    /// claiming a slot on first use and pruning entries of dead domains.
    fn entry_for(&mut self, domain: &EpochDomain) -> *const Entry {
        let mut i = 0;
        while i < self.entries.len() {
            let entry = &self.entries[i];
            if entry.domain_id == domain.id {
                return &*self.entries[i] as *const Entry;
            }
            if entry.slots.strong_count() == 0 && entry.depth.get() == 0 {
                self.entries.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let idx = domain.slots.claim();
        self.entries.push(Box::new(Entry {
            domain_id: domain.id,
            slots: Arc::downgrade(&domain.slots),
            idx,
            depth: Cell::new(0),
        }));
        &**self.entries.last().unwrap() as *const Entry
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        for entry in &self.entries {
            if let Some(slots) = entry.slots.upgrade() {
                if entry.depth.get() == 0 {
                    slots.slots[entry.idx].0.store(FREE, Ordering::Release);
                }
                // A thread exiting while pinned (leaked guard) abandons the
                // slot: reclamation in that domain stalls, but nothing is
                // freed unsafely.
            }
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Deferred-destruction bins for resources of type `T`, tied to an
/// [`EpochDomain`]'s grace periods.
///
/// `T` is typically an index or handle (the Euler-tour arena retires `u32`
/// slot indices); the limbo never runs destructors itself — collected items
/// are handed back through the sink passed to [`Limbo::try_collect`].
pub struct Limbo<T> {
    bins: [Mutex<Vec<T>>; 3],
    retired: AtomicUsize,
}

impl<T> Limbo<T> {
    /// Creates empty bins.
    pub fn new() -> Self {
        Limbo {
            bins: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            retired: AtomicUsize::new(0),
        }
    }

    /// Retires `item` under the domain's current epoch. The item is handed
    /// back through a future [`Limbo::try_collect`] sink once two grace
    /// periods have elapsed.
    ///
    /// The caller must guarantee the item is already unreachable for *new*
    /// traversals — epochs only protect threads that were pinned when (or
    /// one advance after) the retirement happened.
    /// Returns the total retired count after this retirement.
    pub fn retire(&self, domain: &EpochDomain, item: T) -> usize {
        // Count strictly before pushing: a concurrent `try_collect` may
        // drain the item the instant it lands in the bin, and its
        // `fetch_sub` must never observe a counter the item is missing
        // from (transient over-count is harmless — `retired_len` is a
        // heuristic; under-count would wrap the counter).
        let total = self.retired.fetch_add(1, Ordering::Relaxed) + 1;
        let epoch = domain.current_epoch();
        self.bins[(epoch % 3) as usize].lock().push(item);
        total
    }

    /// Retires two items under one epoch read and one bin lock — `cut`
    /// always retires its tour edge nodes in pairs, and the halved locking
    /// is measurable on the decremental hot path.
    /// Returns the total retired count after this retirement.
    pub fn retire_pair(&self, domain: &EpochDomain, a: T, b: T) -> usize {
        // Count-then-push ordering as in [`Limbo::retire`].
        let total = self.retired.fetch_add(2, Ordering::Relaxed) + 2;
        let epoch = domain.current_epoch();
        {
            let mut bin = self.bins[(epoch % 3) as usize].lock();
            bin.push(a);
            bin.push(b);
        }
        total
    }

    /// Attempts one epoch advance; on success, drains the bin whose grace
    /// period just completed into `sink` and returns the number of items
    /// handed back. Returns 0 when the epoch cannot advance (a reader is
    /// still pinned in an older epoch, or another collect is in flight).
    pub fn try_collect(&self, domain: &EpochDomain, mut sink: impl FnMut(T)) -> usize {
        let Some(_lock) = domain.collect_lock.try_lock() else {
            return 0;
        };
        let Some(new_epoch) = domain.advance_locked() else {
            return 0;
        };
        // Garbage retired at epoch `e` sits in bin `e % 3` and is safe once
        // the global epoch reaches `e + 2`; after advancing to `new_epoch`
        // that is bin `(new_epoch + 1) % 3`. The collect lock (still held)
        // guarantees no concurrent retire can be storing into this bin: a
        // retire targets it only after *another* advance.
        let mut bin = self.bins[((new_epoch + 1) % 3) as usize].lock();
        let drained = bin.len();
        for item in bin.drain(..) {
            sink(item);
        }
        self.retired.fetch_sub(drained, Ordering::Relaxed);
        drained
    }

    /// Number of items currently awaiting a grace period.
    pub fn retired_len(&self) -> usize {
        self.retired.load(Ordering::Relaxed)
    }

    /// Drains every bin unconditionally. Requires `&mut self` — only sound
    /// when no concurrent readers can exist (teardown, single-threaded
    /// tests).
    pub fn drain_all(&mut self, mut sink: impl FnMut(T)) {
        for bin in &mut self.bins {
            for item in bin.get_mut().drain(..) {
                sink(item);
            }
        }
        self.retired.store(0, Ordering::Relaxed);
    }
}

impl<T> Default for Limbo<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Limbo<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Limbo")
            .field("retired", &self.retired_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_publishes_and_unpin_clears() {
        let domain = EpochDomain::new();
        assert_eq!(domain.active_pins(), 0);
        let guard = domain.pin();
        assert_eq!(domain.active_pins(), 1);
        drop(guard);
        assert_eq!(domain.active_pins(), 0);
    }

    #[test]
    fn pins_are_reentrant() {
        let domain = EpochDomain::new();
        let outer = domain.pin();
        let inner = domain.pin();
        assert_eq!(domain.active_pins(), 1, "nested pins share one slot");
        drop(inner);
        assert_eq!(domain.active_pins(), 1, "outer pin still holds");
        drop(outer);
        assert_eq!(domain.active_pins(), 0);
    }

    #[test]
    fn advance_blocked_by_stale_pin_only() {
        let domain = EpochDomain::new();
        let guard = domain.pin(); // pinned at epoch 0
        assert_eq!(
            domain.try_advance(),
            Some(1),
            "pin at current epoch is fine"
        );
        assert_eq!(
            domain.try_advance(),
            None,
            "pin now one epoch behind blocks the next advance"
        );
        drop(guard);
        assert_eq!(domain.try_advance(), Some(2));
    }

    #[test]
    fn collect_needs_two_grace_periods() {
        let domain = EpochDomain::new();
        let limbo: Limbo<u32> = Limbo::new();
        limbo.retire(&domain, 7); // retired at epoch 0 -> bin 0
        let mut freed = Vec::new();
        // Advance to 1: drains bin (1 + 1) % 3 = 2 (empty).
        assert_eq!(limbo.try_collect(&domain, |x| freed.push(x)), 0);
        // Advance to 2: drains bin 0 — our item, exactly two periods later.
        assert_eq!(limbo.try_collect(&domain, |x| freed.push(x)), 1);
        assert_eq!(freed, vec![7]);
        assert_eq!(limbo.retired_len(), 0);
    }

    #[test]
    fn parked_reader_blocks_reclamation() {
        let domain = EpochDomain::new();
        let limbo: Limbo<u32> = Limbo::new();
        let guard = domain.pin();
        limbo.retire(&domain, 1);
        let mut freed = Vec::new();
        // One advance may succeed (the pin is at the current epoch), but the
        // retired item's bin needs a second advance, which the pin blocks.
        for _ in 0..4 {
            limbo.try_collect(&domain, |x| freed.push(x));
        }
        assert!(freed.is_empty(), "item freed under an active pin");
        drop(guard);
        while limbo.try_collect(&domain, |x| freed.push(x)) == 0 {}
        assert_eq!(freed, vec![1]);
    }

    #[test]
    fn domains_are_independent() {
        let a = EpochDomain::new();
        let b = EpochDomain::new();
        let _pin_a = a.pin();
        a.try_advance();
        // `a`'s stale pin must not stop `b` from advancing.
        assert_eq!(a.try_advance(), None);
        assert_eq!(b.try_advance(), Some(1));
        assert_eq!(b.try_advance(), Some(2));
    }

    #[test]
    fn cross_thread_pins_block_and_release() {
        use std::sync::mpsc;
        let domain = Arc::new(EpochDomain::new());
        let limbo: Arc<Limbo<u32>> = Arc::new(Limbo::new());
        let (pinned_tx, pinned_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let reader = {
            let domain = Arc::clone(&domain);
            std::thread::spawn(move || {
                let guard = domain.pin();
                pinned_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                drop(guard);
            })
        };
        pinned_rx.recv().unwrap();
        limbo.retire(&domain, 42);
        let mut freed = Vec::new();
        for _ in 0..4 {
            limbo.try_collect(&domain, |x| freed.push(x));
        }
        assert!(freed.is_empty(), "remote pin must block reclamation");
        release_tx.send(()).unwrap();
        reader.join().unwrap();
        let mut spins = 0;
        while limbo.try_collect(&domain, |x| freed.push(x)) == 0 {
            spins += 1;
            assert!(spins < 1_000, "reclamation never unblocked");
        }
        assert_eq!(freed, vec![42]);
    }

    #[test]
    fn slots_are_returned_on_thread_exit() {
        let domain = Arc::new(EpochDomain::new());
        for _ in 0..MAX_SLOTS + 8 {
            let domain = Arc::clone(&domain);
            std::thread::spawn(move || {
                let _guard = domain.pin();
            })
            .join()
            .unwrap();
        }
        // More threads than slots have come and gone; if exits leaked slots
        // the claims above would have panicked.
        assert_eq!(domain.active_pins(), 0);
        assert!(domain.try_advance().is_some());
    }
}
