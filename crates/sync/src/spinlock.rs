//! A word-sized raw lock with explicit `lock` / `unlock`.
//!
//! The fine-grained algorithm (paper Listing 2) stores one lock *inside every
//! Euler-Tour-Tree node*; a component is locked by locking its current tree
//! root.  Because locking and unlocking happen at different call sites (the
//! component is locked, validated, used across several methods and then
//! unlocked), a guard-based mutex is awkward — the algorithm needs raw
//! `lock()` / `unlock()` operations, which this type provides.
//!
//! The lock is a test-and-test-and-set spinlock with exponential backoff and
//! `yield_now` parking, which behaves well both when critical sections are
//! short (the common case: a handful of pointer updates) and when the host is
//! oversubscribed.  All acquisitions are routed through [`crate::waitstats`]
//! so the benchmark harness can compute the "active time rate" of
//! Figures 7–8 and 11–12.

use crate::waitstats;
use std::sync::atomic::{AtomicBool, Ordering};

/// A raw test-and-test-and-set spinlock. See the module documentation.
#[derive(Default)]
pub struct RawSpinLock {
    locked: AtomicBool,
}

impl RawSpinLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        RawSpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Acquires the lock, spinning (with backoff and yielding) until it is
    /// available. Wait time is reported to [`crate::waitstats`].
    pub fn lock(&self) {
        if self.try_lock() {
            return;
        }
        let timer = waitstats::WaitTimer::start();
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a plain load first to avoid
            // hammering the cache line with RMW operations.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            if self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        timer.finish();
    }

    /// Releases the lock.
    ///
    /// # Correct usage
    /// Must only be called by the thread that currently holds the lock; this
    /// is not enforced (the algorithm's locking discipline guarantees it).
    #[inline]
    pub fn unlock(&self) {
        debug_assert!(self.locked.load(Ordering::Relaxed), "unlock of a free lock");
        self.locked.store(false, Ordering::Release);
    }

    /// Returns `true` if the lock is currently held by some thread.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Runs `f` with the lock held.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let result = f();
        self.unlock();
        result
    }
}

impl std::fmt::Debug for RawSpinLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawSpinLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_roundtrip() {
        let l = RawSpinLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn with_releases_on_return() {
        let l = RawSpinLock::new();
        let out = l.with(|| 42);
        assert_eq!(out, 42);
        assert!(!l.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        // Increment a plain (non-atomic beyond storage) counter under the
        // lock; the final value proves mutual exclusion.
        let lock = Arc::new(RawSpinLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let threads = 4;
        let iters = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..iters {
                        lock.lock();
                        // Deliberately non-atomic read-modify-write.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), threads * iters);
    }
}
