//! Concurrency substrates used by the concurrent dynamic connectivity
//! algorithms.
//!
//! The paper's algorithm (SPAA '21) relies on a handful of concurrent
//! building blocks that its Kotlin implementation takes from the JVM
//! ecosystem.  This crate provides from-scratch Rust equivalents:
//!
//! * [`cmap::ShardedMap`] — a lock-striped concurrent hash map with
//!   linearizable `compare_exchange`, used for the edge-status table
//!   (`ConcurrentHashMap<Edge, State>` in the paper's Listing 5).
//! * [`adjacency::AdjacencyStore`] — the flat, lazily-materialized,
//!   allocation-free per-(level, vertex) adjacency multiset store backing
//!   the HDT level structure's hot paths.
//! * [`multiset::ConcurrentMultiSet`] — a concurrent multiset with snapshot
//!   iteration; previously backed the adjacency sets, now kept as the
//!   differential-testing oracle for [`adjacency::AdjacencyStore`].
//! * [`epoch`] — epoch-based memory reclamation (the from-scratch
//!   substitute for the JVM garbage collector the paper's lock-free reads
//!   lean on); used by the Euler Tour Tree arena to recycle retired node
//!   slots. See `DESIGN.md` §4.
//! * [`hash::FxHasher`] — the shared fast integer hasher.
//! * [`prefetch`] — the software-prefetch portability shim behind the
//!   interleaved bulk read path (`_mm_prefetch` on x86-64, no-op elsewhere).
//! * [`combining`] — a generic flat-combining / parallel-combining executor
//!   (variants 12 and 13 of the evaluation).
//! * [`intake`] — the sharded MPSC intake array (padded per-thread slots
//!   with a claim/hand-back protocol) underneath the `dc_batch` engine.
//! * [`spinlock::RawSpinLock`] — a word-sized raw lock with explicit
//!   `lock`/`unlock`, used for the per-component locks in the Euler Tour
//!   Tree forest's per-vertex side table (fine-grained locking, Listing 2).
//! * [`elision::ElisionLock`] — the lock-elision ("HTM") substitution; see
//!   `DESIGN.md` §4.
//! * [`waitstats`] — global lock-wait accounting used to reproduce the
//!   "active time rate" plots (Figures 7, 8, 11, 12).
//! * [`wait`] — the bounded spin→yield→park wait ladder
//!   ([`wait::WaitPolicy`] / [`wait::WaitLadder`]) that replaced the
//!   unbounded busy-wait loops; see `DESIGN.md` §13.
//! * [`wire`] — shared LEB128-varint and FNV-1a checksum primitives, the
//!   single byte-level definition under both the `dc_workloads` trace
//!   format and the `dc_durable` WAL / checkpoint files.

pub mod adjacency;
pub mod cmap;
pub mod combining;
pub mod elision;
pub mod epoch;
pub mod hash;
pub mod intake;
pub mod multiset;
pub mod prefetch;
pub mod rwspinlock;
pub mod spinlock;
pub mod wait;
pub mod waitstats;
pub mod wire;

pub use adjacency::AdjacencyStore;
pub use cmap::ShardedMap;
pub use combining::{CombiningExecutor, CombiningMode, CombiningTarget};
pub use elision::ElisionLock;
pub use epoch::{EpochDomain, EpochGuard, Limbo};
pub use hash::{FxBuildHasher, FxHasher};
pub use intake::{IntakeArray, SlotPoll};
pub use multiset::ConcurrentMultiSet;
pub use prefetch::prefetch_read;
pub use rwspinlock::RawRwLock;
pub use spinlock::RawSpinLock;
pub use wait::{WaitLadder, WaitPolicy, WaitStep};
pub use wire::Fnv64;
