//! Bounded waiting: a spin→yield→park ladder with a configurable deadline.
//!
//! Every busy-wait loop in the workspace used to be unbounded — fine while
//! the thread being waited on is guaranteed to make progress, fatal the
//! moment it isn't (a panicked batch leader, a wedged allocator). This
//! module centralizes the waiting discipline so callers can bound it:
//!
//! * a **spin phase** (`spin_iters` iterations of [`std::hint::spin_loop`])
//!   keeps the short, common waits as cheap as the old raw spin;
//! * a **yield phase** (same length) gives up the core without yet paying
//!   for a timed sleep, covering the "leader is running, just slow" window;
//! * a **park phase** sleeps with exponential backoff (starting at
//!   [`WaitPolicy::backoff`], doubling, capped at 1ms) so a long wait burns
//!   microwatts instead of a core.
//!
//! A deadline ([`WaitPolicy::max_wait`]) is only materialized once the
//! ladder leaves the spin phase — the fast path never calls
//! [`std::time::Instant::now`]. When the deadline expires, [`WaitLadder::step`]
//! returns [`WaitStep::TimedOut`] and the caller decides what that means
//! (the `dc_batch` engine surfaces it as `EngineError::Timeout`).
//!
//! Time spent in the ladder counts as lock wait when the caller wraps the
//! loop in a [`crate::waitstats::WaitTimer`] — parked time is wall time, and
//! wall time is exactly what the timer measures.

use std::time::{Duration, Instant};

/// The longest single park; backoff doubles up to this cap so a waiter
/// notices leader recovery within ~1ms even after a long stall.
const MAX_PARK: Duration = Duration::from_millis(1);

/// How a caller should bound one wait loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitPolicy {
    /// Iterations of pure [`std::hint::spin_loop`] before anything heavier.
    pub spin_iters: u32,
    /// Iterations of [`std::thread::yield_now`] after the spin phase and
    /// before the ladder starts parking.
    pub yield_iters: u32,
    /// Total wall-clock budget for the wait; `None` waits forever (the
    /// pre-hardening behaviour, still the right default for bulk doors that
    /// legitimately run long batches).
    pub max_wait: Option<Duration>,
    /// First park duration; subsequent parks double up to 1ms.
    pub backoff: Duration,
}

impl Default for WaitPolicy {
    fn default() -> Self {
        WaitPolicy {
            spin_iters: 64,
            yield_iters: 64,
            max_wait: None,
            backoff: Duration::from_micros(10),
        }
    }
}

impl WaitPolicy {
    /// A policy with a deadline and default spin/backoff shape.
    pub fn with_deadline(max_wait: Duration) -> Self {
        WaitPolicy {
            max_wait: Some(max_wait),
            ..WaitPolicy::default()
        }
    }
}

/// Outcome of one ladder step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitStep {
    /// Keep polling: the ladder spun, yielded or parked once.
    Continue,
    /// The policy's `max_wait` budget is exhausted.
    TimedOut,
}

/// Progress state for one wait loop. Create it before the loop, call
/// [`WaitLadder::step`] every time the polled condition is still false.
#[derive(Debug)]
pub struct WaitLadder {
    policy: WaitPolicy,
    iters: u32,
    /// Materialized lazily on leaving the spin phase.
    deadline: Option<Instant>,
    park: Duration,
}

impl WaitLadder {
    /// Starts a ladder governed by `policy`. Cheap: no clock read.
    pub fn new(policy: WaitPolicy) -> Self {
        WaitLadder {
            policy,
            iters: 0,
            deadline: None,
            park: policy.backoff,
        }
    }

    /// Waits once (spin, yield or park depending on how long we have been
    /// here) and reports whether the caller's budget still stands.
    pub fn step(&mut self) -> WaitStep {
        let i = self.iters;
        self.iters = self.iters.saturating_add(1);
        if i < self.policy.spin_iters {
            std::hint::spin_loop();
            return WaitStep::Continue;
        }
        // Leaving the spin phase: now (and only now) pay for a clock read
        // if a deadline was requested.
        if let (Some(max), None) = (self.policy.max_wait, self.deadline) {
            self.deadline = Some(Instant::now() + max);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return WaitStep::TimedOut;
            }
        }
        if i < self
            .policy
            .spin_iters
            .saturating_add(self.policy.yield_iters)
        {
            std::thread::yield_now();
        } else {
            std::thread::sleep(self.park);
            self.park = (self.park * 2).min(MAX_PARK);
        }
        WaitStep::Continue
    }

    /// Resets the ladder to the spin phase, keeping the original deadline.
    /// Call after observable progress (e.g. this thread just ran a batch as
    /// leader) so the next wait starts cheap again.
    pub fn reset_phase(&mut self) {
        self.iters = 0;
        self.park = self.policy.backoff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_policy_never_times_out() {
        let mut ladder = WaitLadder::new(WaitPolicy::default());
        for _ in 0..200 {
            assert_eq!(ladder.step(), WaitStep::Continue);
        }
    }

    #[test]
    fn deadline_expires_as_timeout() {
        let mut ladder = WaitLadder::new(WaitPolicy {
            spin_iters: 4,
            yield_iters: 4,
            max_wait: Some(Duration::from_millis(5)),
            backoff: Duration::from_micros(50),
        });
        let start = Instant::now();
        let mut timed_out = false;
        for _ in 0..100_000 {
            if ladder.step() == WaitStep::TimedOut {
                timed_out = true;
                break;
            }
        }
        assert!(timed_out, "deadline never fired");
        // Generous upper bound: the ladder must not overshoot wildly (parks
        // are capped at 1ms, so expiry is noticed within ~1ms + scheduling).
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn spin_phase_never_reads_the_clock_or_parks() {
        // Indirect check: spin_iters steps complete far faster than a
        // single park would take.
        let mut ladder = WaitLadder::new(WaitPolicy {
            spin_iters: 1_000,
            yield_iters: 0,
            max_wait: Some(Duration::from_secs(3600)),
            backoff: Duration::from_millis(1),
        });
        let start = Instant::now();
        for _ in 0..1_000 {
            assert_eq!(ladder.step(), WaitStep::Continue);
        }
        assert!(start.elapsed() < Duration::from_millis(500));
        assert!(
            ladder.deadline.is_none(),
            "spin phase materialized a deadline"
        );
    }

    #[test]
    fn reset_phase_returns_to_spinning() {
        let mut ladder = WaitLadder::new(WaitPolicy {
            spin_iters: 2,
            yield_iters: 0,
            max_wait: None,
            backoff: Duration::from_micros(10),
        });
        for _ in 0..10 {
            ladder.step();
        }
        assert!(ladder.park > ladder.policy.backoff, "backoff never grew");
        ladder.reset_phase();
        assert_eq!(ladder.park, ladder.policy.backoff);
        assert_eq!(ladder.iters, 0);
    }
}
