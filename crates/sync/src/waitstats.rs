//! Global lock-wait accounting.
//!
//! Figures 7, 8, 11 and 12 of the paper plot the *active time rate*: the
//! fraction of total thread time spent doing graph processing rather than
//! waiting for locks.  To reproduce those plots, every blocking acquisition in
//! the library (spinlocks, elision locks and the coarse-grained mutex
//! wrappers) reports the time it spent waiting to this module.
//!
//! Accounting is disabled by default (a single relaxed atomic load on the
//! fast path) and enabled by the benchmark harness around a measurement
//! interval.  Counters are global because at most one measured data-structure
//! instance runs at a time in the harness, mirroring how the paper's JMH
//! benchmarks collected the statistic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL_WAIT_NANOS: AtomicU64 = AtomicU64::new(0);
static WAIT_EVENTS: AtomicU64 = AtomicU64::new(0);

// Ordering discipline (the DESIGN.md §8 style): every access in this
// module is `Relaxed`. The counters are monotone tallies read at quiescent
// points — the harness enables accounting, joins its workers, then reads —
// so thread join/spawn edges already provide all the happens-before these
// values need; no control or data decision downstream depends on observing
// a wait "in time". Mixing `SeqCst` reads with `Relaxed` writes (as an
// earlier revision did) bought nothing: a fence on the reader cannot
// strengthen unfenced writers.

/// Enables or disables wait-time accounting.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Returns `true` if accounting is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resets the accumulated counters to zero.
pub fn reset() {
    TOTAL_WAIT_NANOS.store(0, Ordering::Relaxed);
    WAIT_EVENTS.store(0, Ordering::Relaxed);
}

/// Total nanoseconds all threads spent blocked on instrumented locks since
/// the last [`reset`].
pub fn total_wait_nanos() -> u64 {
    TOTAL_WAIT_NANOS.load(Ordering::Relaxed)
}

/// Number of blocking acquisitions recorded since the last [`reset`].
pub fn wait_events() -> u64 {
    WAIT_EVENTS.load(Ordering::Relaxed)
}

/// Records `nanos` of lock waiting directly (used by wrappers that measure
/// the wait themselves).
pub fn record_wait_nanos(nanos: u64) {
    if enabled() && nanos > 0 {
        TOTAL_WAIT_NANOS.fetch_add(nanos, Ordering::Relaxed);
        WAIT_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Measures one blocking wait. Construct with [`WaitTimer::start`] right
/// before blocking and call [`WaitTimer::finish`] once the lock is held.
pub struct WaitTimer {
    start: Option<Instant>,
}

impl WaitTimer {
    /// Starts a timer (a no-op when accounting is disabled).
    #[inline]
    pub fn start() -> Self {
        WaitTimer {
            start: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Stops the timer and adds the elapsed time to the global counters.
    #[inline]
    pub fn finish(self) {
        if let Some(start) = self.start {
            record_wait_nanos(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Computes the active-time rate (in percent) given the total wall-clock
/// thread-time of a measurement interval: `100 * (1 - wait / total)`.
pub fn active_time_rate_percent(total_thread_nanos: u64) -> f64 {
    if total_thread_nanos == 0 {
        return 100.0;
    }
    let wait = total_wait_nanos().min(total_thread_nanos);
    100.0 * (1.0 - wait as f64 / total_thread_nanos as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    // The counters are global, so the tests that exercise them must not run
    // concurrently with each other.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_accounting_records_nothing() {
        let _g = TEST_GUARD.lock();
        set_enabled(false);
        reset();
        record_wait_nanos(1000);
        let t = WaitTimer::start();
        t.finish();
        assert_eq!(total_wait_nanos(), 0);
        assert_eq!(wait_events(), 0);
    }

    #[test]
    fn enabled_accounting_accumulates() {
        let _g = TEST_GUARD.lock();
        set_enabled(true);
        reset();
        record_wait_nanos(500);
        record_wait_nanos(700);
        assert_eq!(total_wait_nanos(), 1200);
        assert_eq!(wait_events(), 2);
        set_enabled(false);
    }

    #[test]
    fn active_time_rate_formula() {
        let _g = TEST_GUARD.lock();
        set_enabled(true);
        reset();
        record_wait_nanos(25);
        assert!((active_time_rate_percent(100) - 75.0).abs() < 1e-9);
        // Waiting longer than the interval clamps at 0%.
        record_wait_nanos(1000);
        assert!(active_time_rate_percent(100) >= 0.0);
        set_enabled(false);
    }

    #[test]
    fn zero_total_time_reports_full_activity() {
        let _g = TEST_GUARD.lock();
        reset();
        assert_eq!(active_time_rate_percent(0), 100.0);
    }
}
