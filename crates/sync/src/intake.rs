//! A sharded MPSC intake array: per-thread, cache-line-padded publication
//! slots with a claim/hand-back protocol.
//!
//! This is the mechanism underneath batch-parallel execution engines (the
//! `dc_batch` crate): every thread owns one padded slot into which it
//! publishes an operation; whichever thread drives the batch (the *leader*,
//! elected by the policy layer — typically a [`crate::spinlock::RawSpinLock`])
//! claims all currently published operations at once, and finishes each slot
//! in one of two ways:
//!
//! * [`IntakeArray::complete`] — the leader executed the operation itself and
//!   deposits the result; the owner picks it up with [`IntakeArray::poll`];
//! * [`IntakeArray::hand_back`] — the leader returns the *operation* to its
//!   owner, who executes it on its own thread (this is how a batch's
//!   read-only operations run in parallel: the leader applies the batch's
//!   updates, then hands every query back to run against the resulting
//!   consistent state concurrently).
//!
//! The slot state machine (all transitions are single atomic stores/CAS):
//!
//! ```text
//!            publish                claim            complete
//!   EMPTY ───────────► PENDING ───────────► CLAIMED ───────────► DONE ─┐
//!     ▲                                        │                       │ poll
//!     │                                        │ hand_back             │
//!     │                                        ▼                       │
//!     └──────────────── poll ◄───────────── HANDBACK ◄─────────────────┘
//! ```
//!
//! Unlike [`crate::combining::CombiningExecutor`], this module fixes no
//! execution policy: batching, annihilation, leader election and result
//! semantics all live in the caller. Slots are `#[repr(align(128))]` so two
//! threads' publications never share a cache line (the combining executor's
//! unpadded slots measurably false-share on adjacent indices).

use parking_lot::Mutex;
use std::cell::{RefCell, UnsafeCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

const SLOT_EMPTY: u8 = 0;
const SLOT_PENDING: u8 = 1;
const SLOT_CLAIMED: u8 = 2;
const SLOT_HANDBACK: u8 = 3;
const SLOT_DONE: u8 = 4;
/// Owner-side withdrawal in progress ([`IntakeArray::retract`]). A distinct
/// state (not `CLAIMED`) so a leader sweeping the array on the poison path
/// can tell "a leader claimed this and must resolve it" from "the owner is
/// taking it back right now" — the sweep must leave the latter alone.
const SLOT_RETRACTING: u8 = 5;

/// What the owning thread observes when polling its slot.
#[derive(Debug)]
pub enum SlotPoll<Op, Res> {
    /// The operation has not been claimed or finished yet.
    Pending,
    /// The leader handed the operation back; the owner must execute it
    /// itself. The slot is empty again.
    HandedBack(Op),
    /// The leader executed the operation; here is the result. The slot is
    /// empty again.
    Done(Res),
}

/// One padded publication slot. Two slots never share a cache line
/// (128 bytes covers the spatial-prefetcher pair on x86 and 128-byte lines
/// on apple silicon).
#[repr(align(128))]
struct Slot<Op, Res> {
    state: AtomicU8,
    op: UnsafeCell<Option<Op>>,
    res: UnsafeCell<Option<Res>>,
}

impl<Op, Res> Slot<Op, Res> {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(SLOT_EMPTY),
            op: UnsafeCell::new(None),
            res: UnsafeCell::new(None),
        }
    }
}

/// The sharded intake array. See the module documentation.
pub struct IntakeArray<Op, Res> {
    id: usize,
    slots: Box<[Slot<Op, Res>]>,
    registered: AtomicUsize,
    /// Indices returned by exited threads, available for reuse — the slot
    /// capacity bounds *concurrent* threads, not the total number of threads
    /// that ever published (a thread-per-request server cycles through
    /// thousands of short-lived threads over one long-lived array).
    free: Arc<Mutex<Vec<usize>>>,
}

/// A thread's claim on one slot of one array; dropping it (at thread exit,
/// via the thread-local registry) returns the index to the array's free
/// list. The `Weak` makes an array dropped before its publishing thread a
/// no-op.
struct SlotLease {
    idx: usize,
    free: Weak<Mutex<Vec<usize>>>,
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        if let Some(free) = self.free.upgrade() {
            free.lock().push(self.idx);
        }
    }
}

// SAFETY: the op cell is written by its owning thread before the PENDING
// release-store and only read after the claiming thread's acquire CAS; the
// res cell is written by the leader before the DONE release-store and read
// by the owner after an acquire load. HANDBACK returns the op to the thread
// that wrote it (no cross-thread data movement). All cross-thread accesses
// are therefore ordered by the state variable.
unsafe impl<Op: Send, Res: Send> Sync for IntakeArray<Op, Res> {}
unsafe impl<Op: Send, Res: Send> Send for IntakeArray<Op, Res> {}

static INTAKE_IDS: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Maps intake-array id -> this thread's slot lease. Leases drop (and
    /// free their indices) when the thread exits.
    static THREAD_SLOTS: RefCell<HashMap<usize, SlotLease>> = RefCell::new(HashMap::new());
}

impl<Op, Res> IntakeArray<Op, Res> {
    /// Default maximum number of participating threads.
    pub const DEFAULT_SLOTS: usize = 256;

    /// Creates an intake array with the default thread capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_SLOTS)
    }

    /// Creates an intake array with space for at most `capacity` threads.
    pub fn with_capacity(capacity: usize) -> Self {
        IntakeArray {
            id: INTAKE_IDS.fetch_add(1, Ordering::Relaxed),
            slots: (0..capacity.max(1))
                .map(|_| Slot::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            registered: AtomicUsize::new(0),
            free: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Number of slots (the thread capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot_index(&self) -> usize {
        THREAD_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if !slots.contains_key(&self.id) {
                // First contact with this array: drop leases whose arrays are
                // gone, so a long-lived thread cycling through many engines
                // keeps its registry bounded by the number of *live* arrays.
                slots.retain(|_, lease| lease.free.strong_count() > 0);
            }
            slots
                .entry(self.id)
                .or_insert_with(|| {
                    // Prefer an index an exited thread gave back (its slot is
                    // EMPTY again: a lease only drops between operations);
                    // otherwise mint a fresh one.
                    let idx = self
                        .free
                        .lock()
                        .pop()
                        .unwrap_or_else(|| self.registered.fetch_add(1, Ordering::Relaxed));
                    assert!(
                        idx < self.slots.len(),
                        "more than {} concurrent threads used an IntakeArray",
                        self.slots.len()
                    );
                    SlotLease {
                        idx,
                        free: Arc::downgrade(&self.free),
                    }
                })
                .idx
        })
    }

    /// Publishes `op` in the calling thread's slot and returns the slot
    /// index (to pass to [`IntakeArray::poll`]).
    ///
    /// The slot must be empty, i.e. the previous publication must have been
    /// polled to completion — one outstanding operation per thread, which is
    /// exactly the blocking single-op adapter discipline.
    pub fn publish(&self, op: Op) -> usize {
        let idx = self.slot_index();
        let slot = &self.slots[idx];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_EMPTY);
        // SAFETY: this thread owns the slot and its state is EMPTY, so no
        // other thread touches `op` until the release-store below.
        unsafe { *slot.op.get() = Some(op) };
        slot.state.store(SLOT_PENDING, Ordering::Release);
        idx
    }

    /// Owner-side check of the slot published at `idx`.
    pub fn poll(&self, idx: usize) -> SlotPoll<Op, Res> {
        let slot = &self.slots[idx];
        match slot.state.load(Ordering::Acquire) {
            SLOT_DONE => {
                // SAFETY: DONE means the leader finished writing `res`
                // (release) and will not touch the slot again.
                let res = unsafe { (*slot.res.get()).take() };
                slot.state.store(SLOT_EMPTY, Ordering::Release);
                SlotPoll::Done(res.expect("slot marked DONE without a result"))
            }
            SLOT_HANDBACK => {
                // SAFETY: HANDBACK means the leader stepped away from the
                // slot with the op left in place; the op was written by this
                // very thread.
                let op = unsafe { (*slot.op.get()).take() };
                slot.state.store(SLOT_EMPTY, Ordering::Release);
                SlotPoll::HandedBack(op.expect("slot handed back without an op"))
            }
            _ => SlotPoll::Pending,
        }
    }

    /// Leader-side: claims every currently `PENDING` slot (CAS to `CLAIMED`)
    /// and calls `visit(idx, &op)` for each, leaving the operation in place.
    /// Returns the number of slots claimed.
    ///
    /// The caller must finish every claimed slot — [`IntakeArray::take`]
    /// then [`IntakeArray::complete`], or [`IntakeArray::hand_back`] —
    /// before its batch ends; a claimed slot's owner spins until then.
    pub fn claim_pending(&self, mut visit: impl FnMut(usize, &Op)) -> usize {
        let mut claimed = 0;
        // Scan only up to the registration high-water mark: freed indices are
        // reused below it, so no pending slot can sit above it. A stale
        // (smaller) read merely leaves a just-registered publisher for the
        // next batch — the same benign race as an op published right after
        // this scan.
        let limit = self
            .registered
            .load(Ordering::Relaxed)
            .min(self.slots.len());
        for (idx, slot) in self.slots[..limit].iter().enumerate() {
            if slot.state.load(Ordering::Relaxed) == SLOT_PENDING
                && slot
                    .state
                    .compare_exchange(
                        SLOT_PENDING,
                        SLOT_CLAIMED,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                // SAFETY: the acquire CAS synchronized with the owner's
                // PENDING release-store, so the op write is visible; CLAIMED
                // keeps every other thread (including the owner) away.
                let op = unsafe { (*slot.op.get()).as_ref() }.expect("claimed slot without an op");
                visit(idx, op);
                claimed += 1;
            }
        }
        claimed
    }

    /// Leader-side: moves the operation out of a slot previously claimed by
    /// [`IntakeArray::claim_pending`].
    pub fn take(&self, idx: usize) -> Op {
        let slot = &self.slots[idx];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_CLAIMED);
        // SAFETY: CLAIMED state; only the leader touches the cell.
        unsafe { (*slot.op.get()).take() }.expect("take on a slot without an op")
    }

    /// Leader-side: deposits `res` in a claimed slot whose operation was
    /// [`IntakeArray::take`]n, waking the owner.
    pub fn complete(&self, idx: usize, res: Res) {
        let slot = &self.slots[idx];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_CLAIMED);
        // SAFETY: CLAIMED state; the owner reads `res` only after the DONE
        // release-store below.
        unsafe { *slot.res.get() = Some(res) };
        slot.state.store(SLOT_DONE, Ordering::Release);
    }

    /// Leader-side: returns a claimed slot (operation still in place) to its
    /// owner for owner-side execution.
    pub fn hand_back(&self, idx: usize) {
        let slot = &self.slots[idx];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_CLAIMED);
        slot.state.store(SLOT_HANDBACK, Ordering::Release);
    }

    /// Owner-side: attempts to withdraw this thread's still-`PENDING`
    /// publication at `idx`, returning the operation if no leader claimed it
    /// first.
    ///
    /// This is the escape hatch for bounded waits: a waiter whose deadline
    /// expired (or who observed the engine poisoned) must not simply walk
    /// away from a PENDING slot — a later leader would claim the op and
    /// deposit a result nobody ever polls, wedging the slot forever. The
    /// CAS PENDING→RETRACTING makes withdrawal race-free: either the owner
    /// wins and the op was never observed by any leader, or a leader already
    /// claimed it and the owner must keep polling (the leader resolves the
    /// slot imminently — every claim is followed by `complete`/`hand_back`
    /// before the batch ends, even on the poison path, where
    /// [`IntakeArray::sweep_open`] finishes it).
    pub fn retract(&self, idx: usize) -> Option<Op> {
        let slot = &self.slots[idx];
        if slot
            .state
            .compare_exchange(
                SLOT_PENDING,
                SLOT_RETRACTING,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return None;
        }
        // SAFETY: the CAS moved the slot to RETRACTING, which no leader ever
        // touches; the op was written by this very thread.
        let op = unsafe { (*slot.op.get()).take() };
        slot.state.store(SLOT_EMPTY, Ordering::Release);
        Some(op.expect("retracted slot without an op"))
    }

    /// Leader-side: resolves every slot the calling leadership is still
    /// responsible for — its own `CLAIMED` slots (an abandoned batch) and
    /// every `PENDING` publication — by depositing `res()` and waking the
    /// owner. Slots whose owners are concurrently retracting are left alone
    /// (they resolve themselves). Returns the number of waiters released.
    ///
    /// This is the poison path: a leader whose batch panicked must not walk
    /// away from slots it claimed (their owners would wait forever), so it
    /// sweeps the array once — under the leadership it still holds — before
    /// dropping the leader lock. Any operation still in a swept slot is
    /// discarded; it was never applied.
    ///
    /// Must only be called while holding the engine's leader election, so
    /// that every `CLAIMED` slot belongs to the caller's own abandoned batch.
    pub fn sweep_open(&self, mut res: impl FnMut() -> Res) -> usize {
        let mut released = 0;
        let limit = self
            .registered
            .load(Ordering::Relaxed)
            .min(self.slots.len());
        for slot in self.slots[..limit].iter() {
            let ours = match slot.state.load(Ordering::Acquire) {
                SLOT_PENDING => slot
                    .state
                    .compare_exchange(
                        SLOT_PENDING,
                        SLOT_CLAIMED,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok(),
                // Our own abandoned claim (see the contract above).
                SLOT_CLAIMED => true,
                _ => false,
            };
            if !ours {
                continue;
            }
            // SAFETY: CLAIMED — this thread is (or just became) the slot's
            // leader. The abandoned batch may already have taken the op;
            // drop it if still present so the slot comes back clean.
            unsafe {
                (*slot.op.get()).take();
                *slot.res.get() = Some(res());
            }
            slot.state.store(SLOT_DONE, Ordering::Release);
            released += 1;
        }
        released
    }
}

impl<Op, Res> Default for IntakeArray<Op, Res> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spinlock::RawSpinLock;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_publish_complete_roundtrip() {
        let intake: IntakeArray<u32, u32> = IntakeArray::with_capacity(4);
        let idx = intake.publish(21);
        assert!(matches!(intake.poll(idx), SlotPoll::Pending));
        let mut seen = Vec::new();
        let claimed = intake.claim_pending(|i, op| seen.push((i, *op)));
        assert_eq!(claimed, 1);
        assert_eq!(seen, vec![(idx, 21)]);
        let op = intake.take(idx);
        intake.complete(idx, op * 2);
        match intake.poll(idx) {
            SlotPoll::Done(res) => assert_eq!(res, 42),
            other => panic!("expected Done, got {other:?}"),
        }
        // The slot is reusable.
        let idx2 = intake.publish(7);
        assert_eq!(idx, idx2);
    }

    #[test]
    fn hand_back_returns_the_operation_to_the_owner() {
        let intake: IntakeArray<String, ()> = IntakeArray::with_capacity(4);
        let idx = intake.publish("mine".to_string());
        intake.claim_pending(|_, _| {});
        intake.hand_back(idx);
        match intake.poll(idx) {
            SlotPoll::HandedBack(op) => assert_eq!(op, "mine"),
            other => panic!("expected HandedBack, got {other:?}"),
        }
        assert!(matches!(intake.poll(idx), SlotPoll::Pending));
    }

    #[test]
    fn concurrent_leader_driven_batching_sums_correctly() {
        // N threads publish increments; whoever grabs the leader lock drains
        // and applies all pending increments against a shared counter.
        let intake: Arc<IntakeArray<u64, u64>> = Arc::new(IntakeArray::new());
        let leader = Arc::new(RawSpinLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let threads = 4u64;
        let per_thread = 300u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let intake = Arc::clone(&intake);
                let leader = Arc::clone(&leader);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let idx = intake.publish(t * per_thread + i);
                        loop {
                            match intake.poll(idx) {
                                SlotPoll::Done(res) => {
                                    assert_eq!(res, t * per_thread + i + 1);
                                    break;
                                }
                                SlotPoll::HandedBack(_) => unreachable!(),
                                SlotPoll::Pending => {
                                    if leader.try_lock() {
                                        let mut batch = Vec::new();
                                        intake.claim_pending(|idx, _| batch.push(idx));
                                        for &slot in &batch {
                                            let op = intake.take(slot);
                                            counter.fetch_add(1, Ordering::Relaxed);
                                            intake.complete(slot, op + 1);
                                        }
                                        leader.unlock();
                                    } else {
                                        std::hint::spin_loop();
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (threads * per_thread) as usize
        );
    }

    #[test]
    fn exited_threads_free_their_slots_for_reuse() {
        // Far more threads than slots, but only one alive at a time: each
        // exiting thread's lease returns its index, so the array never runs
        // out. (Before reclamation this panicked at the third thread.)
        let intake: Arc<IntakeArray<u32, u32>> = Arc::new(IntakeArray::with_capacity(2));
        for round in 0..10u32 {
            let intake = Arc::clone(&intake);
            std::thread::spawn(move || {
                let idx = intake.publish(round);
                assert!(idx < 2, "reused indices stay in range");
                intake.claim_pending(|_, _| {});
                let op = intake.take(idx);
                intake.complete(idx, op);
                match intake.poll(idx) {
                    SlotPoll::Done(res) => assert_eq!(res, round),
                    other => panic!("expected Done, got {other:?}"),
                }
            })
            .join()
            .unwrap();
        }
    }

    #[test]
    fn retract_withdraws_pending_but_not_claimed_ops() {
        let intake: IntakeArray<u32, u32> = IntakeArray::with_capacity(4);
        // Pending op: the owner can take it back, leaving the slot EMPTY and
        // reusable.
        let idx = intake.publish(9);
        assert_eq!(intake.retract(idx), Some(9));
        assert_eq!(intake.claim_pending(|_, _| {}), 0);
        let idx2 = intake.publish(10);
        assert_eq!(idx, idx2, "retract must leave the slot reusable");
        // Claimed op: retract loses the race and returns None; the normal
        // complete/poll path still works.
        intake.claim_pending(|_, _| {});
        assert_eq!(intake.retract(idx2), None);
        let op = intake.take(idx2);
        intake.complete(idx2, op + 1);
        match intake.poll(idx2) {
            SlotPoll::Done(res) => assert_eq!(res, 11),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn sweep_open_releases_claimed_and_pending_slots() {
        let intake: IntakeArray<u32, Result<u32, &'static str>> = IntakeArray::with_capacity(4);
        // An abandoned claim: the "leader" claimed the slot, took the op,
        // then its batch died. The sweep must resolve it.
        let idx = intake.publish(1);
        intake.claim_pending(|_, _| {});
        let _abandoned = intake.take(idx);
        assert_eq!(intake.sweep_open(|| Err("poisoned")), 1);
        match intake.poll(idx) {
            SlotPoll::Done(Err("poisoned")) => {}
            other => panic!("expected the sweep's result, got {other:?}"),
        }
        // A publication no leader ever saw: the sweep claims and resolves
        // it, discarding the op.
        assert_eq!(intake.publish(2), idx);
        assert_eq!(intake.sweep_open(|| Err("poisoned")), 1);
        match intake.poll(idx) {
            SlotPoll::Done(Err("poisoned")) => {}
            other => panic!("expected the sweep's result, got {other:?}"),
        }
        // The swept slot stays reusable, and an empty array sweeps to zero.
        assert_eq!(intake.publish(3), idx);
        assert_eq!(intake.retract(idx), Some(3));
        assert_eq!(intake.sweep_open(|| Err("poisoned")), 0);
    }

    #[test]
    fn slots_do_not_share_cache_lines() {
        assert!(std::mem::align_of::<Slot<u64, u64>>() >= 128);
        assert!(std::mem::size_of::<Slot<u64, u64>>() >= 128);
    }
}
