//! A lock-striped concurrent hash map with atomic read-modify-write
//! operations.
//!
//! The full dynamic connectivity algorithm (paper Appendix C) keeps every
//! edge's `(status, level)` state in a `ConcurrentHashMap<Edge, State>` and
//! drives the lock-free protocol through CAS operations on the stored values.
//! This map provides exactly that interface: `get`, `insert`,
//! `put_if_absent`, `compare_exchange`, `remove`, and `remove_if`, each
//! linearizable because every key maps to a single shard protected by its own
//! mutex; critical sections are a handful of instructions.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

pub use crate::hash::{FxBuildHasher, FxHasher};

struct Shard<K, V> {
    map: Mutex<HashMap<K, V, FxBuildHasher>>,
}

/// A sharded (lock-striped) concurrent hash map.
///
/// All operations are linearizable: each key belongs to exactly one shard and
/// every operation on that key runs under the shard's mutex.
pub struct ShardedMap<K, V> {
    shards: Box<[Shard<K, V>]>,
    mask: usize,
    hasher: FxBuildHasher,
}

impl<K, V> ShardedMap<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone + PartialEq,
{
    /// Creates a map with a default shard count suitable for moderate
    /// parallelism.
    pub fn new() -> Self {
        Self::with_shards(64)
    }

    /// Creates a map with `shards` shards (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.next_power_of_two().max(1);
        let shards = (0..count)
            .map(|_| Shard {
                map: Mutex::new(HashMap::with_hasher(FxBuildHasher::default())),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedMap {
            shards,
            mask: count - 1,
            hasher: FxBuildHasher::default(),
        }
    }

    #[inline]
    fn shard(&self, key: &K) -> &Shard<K, V> {
        &self.shards[(self.hasher.hash_one(key) as usize) & self.mask]
    }

    /// Returns a clone of the value stored for `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).map.lock().get(key).cloned()
    }

    /// Returns `true` if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard(key).map.lock().contains_key(key)
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).map.lock().insert(key, value)
    }

    /// Atomically inserts `value` only if `key` is absent.
    ///
    /// Returns `None` if the insert happened, or the currently stored value
    /// (like `ConcurrentHashMap.putIfAbsent`).
    pub fn put_if_absent(&self, key: K, value: V) -> Option<V> {
        let shard = self.shard(&key);
        let mut map = shard.map.lock();
        match map.get(&key) {
            Some(existing) => Some(existing.clone()),
            None => {
                map.insert(key, value);
                None
            }
        }
    }

    /// Atomically replaces the value for `key` with `new` if the current
    /// value equals `expected`.
    ///
    /// Returns `Ok(())` on success, or `Err(current)` with the value actually
    /// stored (`None` if the key is absent).
    pub fn compare_exchange(&self, key: &K, expected: &V, new: V) -> Result<(), Option<V>> {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        match map.get_mut(key) {
            Some(current) if current == expected => {
                *current = new;
                Ok(())
            }
            Some(current) => Err(Some(current.clone())),
            None => Err(None),
        }
    }

    /// Atomically removes `key` if its value equals `expected`.
    ///
    /// Returns `Ok(())` on success, or `Err(current)` otherwise.
    pub fn remove_if(&self, key: &K, expected: &V) -> Result<(), Option<V>> {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        match map.get(key) {
            Some(current) if current == expected => {
                map.remove(key);
                Ok(())
            }
            Some(current) => Err(Some(current.clone())),
            None => Err(None),
        }
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).map.lock().remove(key)
    }

    /// Number of stored entries (sums shard sizes; approximate under
    /// concurrent mutation, exact when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `f` to every `(key, value)` pair. Shards are visited one at a
    /// time, so the view is per-shard consistent but not a global snapshot.
    pub fn for_each<F: FnMut(&K, &V)>(&self, mut f: F) {
        for shard in self.shards.iter() {
            let map = shard.map.lock();
            for (k, v) in map.iter() {
                f(k, v);
            }
        }
    }
}

impl<K, V> Default for ShardedMap<K, V>
where
    K: Hash + Eq + Clone,
    V: Clone + PartialEq,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_insert_get_remove() {
        let m: ShardedMap<u32, String> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get(&1), Some("b".into()));
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some("b".into()));
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn put_if_absent_semantics() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        assert_eq!(m.put_if_absent(5, 10), None);
        assert_eq!(m.put_if_absent(5, 20), Some(10));
        assert_eq!(m.get(&5), Some(10));
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        m.insert(1, 100);
        assert_eq!(m.compare_exchange(&1, &100, 200), Ok(()));
        assert_eq!(m.get(&1), Some(200));
        assert_eq!(m.compare_exchange(&1, &100, 300), Err(Some(200)));
        assert_eq!(m.compare_exchange(&2, &100, 300), Err(None));
    }

    #[test]
    fn remove_if_semantics() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        m.insert(7, 1);
        assert_eq!(m.remove_if(&7, &2), Err(Some(1)));
        assert_eq!(m.remove_if(&7, &1), Ok(()));
        assert_eq!(m.remove_if(&7, &1), Err(None));
    }

    #[test]
    fn for_each_and_len() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(4);
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        let mut sum = 0u64;
        m.for_each(|_, v| sum += *v as u64);
        assert_eq!(sum, (0..100u64).map(|i| i * 2).sum());
    }

    #[test]
    fn concurrent_cas_counter_is_exact() {
        // N threads CAS-increment the same key; the final value must equal the
        // total number of successful increments (no lost updates).
        let m: Arc<ShardedMap<u32, u64>> = Arc::new(ShardedMap::new());
        m.insert(0, 0);
        let threads = 4;
        let per_thread = 1000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        loop {
                            let cur = m.get(&0).unwrap();
                            if m.compare_exchange(&0, &cur, cur + 1).is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(m.get(&0), Some((threads * per_thread) as u64));
    }

    #[test]
    fn concurrent_distinct_keys() {
        let m: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.insert(t * 10_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 2000);
    }

    #[test]
    fn fx_hasher_spreads_small_keys() {
        // Shard selection must not collapse consecutive integer keys onto a
        // single shard.
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(16);
        for i in 0..1000 {
            m.insert(i, i);
        }
        let mut nonempty = 0;
        for shard in m.shards.iter() {
            if !shard.map.lock().is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 8, "only {nonempty} of 16 shards used");
    }
}
