//! Software-prefetch portability shim.
//!
//! The interleaved bulk read path of the Euler Tour Tree
//! (`dc_ett::EulerForest::connected_many_into`) overlaps the DRAM stalls of
//! independent parent-pointer climbs by issuing a prefetch for each climb's
//! next hop before advancing the other in-flight climbs.  Prefetch
//! instructions are ISA-specific, so the single call site the rest of the
//! workspace uses lives here: `_mm_prefetch` on x86-64, a no-op everywhere
//! else (the interleaving itself is still profitable on other
//! architectures whenever the out-of-order window can overlap the loads —
//! the no-op fallback only loses the explicit hint).
//!
//! A prefetch is a *hint*: it never faults, never reads architecturally, and
//! has no effect on the memory model.  Issuing one for any address —
//! including addresses whose contents a racing writer is mutating — is
//! therefore always sound; see `DESIGN.md` §10 for why this matters to the
//! version-validation safety argument.

/// Hints the CPU to pull the cache line containing `ptr` into all cache
/// levels (temporal locality, `_MM_HINT_T0`). No-op on non-x86-64 targets.
///
/// Safe for any pointer value, mapped or not, aligned or not: prefetch
/// instructions are architecturally side-effect-free and never fault.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 never faults and performs no architectural read;
    // any address, valid or not, is fine.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        let value = 42u64;
        prefetch_read(&value);
        // Wild (unmapped) and null addresses must not fault either.
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(0xdead_beef_0000 as *const u64);
        assert_eq!(value, 42);
    }
}
