//! Differential property tests: [`AdjacencyStore`] must agree with
//! [`ConcurrentMultiSet`] — the structure it replaced, kept as the oracle —
//! under arbitrary sequences of `add` / `remove` / `contains` / `pop` /
//! `retain` / visit operations, including duplicate-edge multiplicity
//! semantics.

use dc_sync::{AdjacencyStore, ConcurrentMultiSet};
use proptest::prelude::*;
use std::collections::HashSet;
use std::ops::ControlFlow;

const LEVELS: usize = 3;
const VERTICES: u32 = 8;
/// A small element domain so duplicates (multiplicity > 1) are common.
const DOMAIN: u64 = 24;

#[derive(Clone, Copy, Debug)]
enum Op {
    Add(usize, u32, u64),
    Remove(usize, u32, u64),
    Contains(usize, u32, u64),
    Count(usize, u32, u64),
    Len(usize, u32),
    Pop(usize, u32),
    Visit(usize, u32),
    RetainEven(usize, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slot = (0..LEVELS, 0..VERTICES);
    prop_oneof![
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), x)| Op::Add(l, v, x)),
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), x)| Op::Remove(l, v, x)),
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), x)| Op::Contains(l, v, x)),
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), x)| Op::Count(l, v, x)),
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), _)| Op::Len(l, v)),
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), _)| Op::Pop(l, v)),
        (slot.clone(), 0..DOMAIN).prop_map(|((l, v), _)| Op::Visit(l, v)),
        (slot, 0..DOMAIN).prop_map(|((l, v), _)| Op::RetainEven(l, v)),
    ]
}

/// One oracle multiset per (level, vertex) slot.
struct Oracle {
    slots: Vec<ConcurrentMultiSet<u64>>,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            slots: (0..LEVELS * VERTICES as usize)
                .map(|_| ConcurrentMultiSet::new())
                .collect(),
        }
    }

    fn slot(&self, level: usize, vertex: u32) -> &ConcurrentMultiSet<u64> {
        &self.slots[level * VERTICES as usize + vertex as usize]
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Sequential differential run: after every operation the store and the
    /// oracle agree on membership, multiplicity, slot sizes and visit sets.
    #[test]
    fn store_matches_multiset_oracle(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let store: AdjacencyStore<u64> = AdjacencyStore::new(LEVELS, VERTICES as usize);
        let oracle = Oracle::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Add(l, v, x) => {
                    store.add(l, v, x);
                    oracle.slot(l, v).add(x);
                }
                Op::Remove(l, v, x) => {
                    let got = store.remove(l, v, &x);
                    let want = oracle.slot(l, v).remove(&x);
                    prop_assert_eq!(got, want, "remove diverged at step {}", step);
                }
                Op::Contains(l, v, x) => {
                    prop_assert_eq!(
                        store.contains(l, v, &x),
                        oracle.slot(l, v).contains(&x),
                        "contains diverged at step {}", step
                    );
                }
                Op::Count(l, v, x) => {
                    prop_assert_eq!(
                        store.count(l, v, &x) as usize,
                        oracle.slot(l, v).count(&x),
                        "count diverged at step {}", step
                    );
                }
                Op::Len(l, v) => {
                    prop_assert_eq!(store.len(l, v), oracle.slot(l, v).len());
                    prop_assert_eq!(store.distinct_len(l, v), oracle.slot(l, v).distinct_len());
                    prop_assert_eq!(store.is_empty(l, v), oracle.slot(l, v).is_empty());
                }
                Op::Pop(l, v) => {
                    // `pop` removes one copy of an arbitrary element; mirror
                    // the exact element it chose into the oracle.
                    match store.pop(l, v) {
                        Some(x) => {
                            prop_assert!(
                                oracle.slot(l, v).remove(&x),
                                "store popped {} the oracle does not hold", x
                            );
                        }
                        None => prop_assert!(oracle.slot(l, v).is_empty()),
                    }
                }
                Op::Visit(l, v) => {
                    let mut seen = HashSet::new();
                    let _ = store.for_each_edge(l, v, |x| {
                        seen.insert(x);
                        ControlFlow::Continue(())
                    });
                    let want: HashSet<u64> = oracle.slot(l, v).snapshot().into_iter().collect();
                    prop_assert_eq!(seen, want, "visit diverged at step {}", step);
                }
                Op::RetainEven(l, v) => {
                    store.retain(l, v, |x, _| x % 2 == 0);
                    for x in oracle.slot(l, v).snapshot() {
                        if x % 2 != 0 {
                            while oracle.slot(l, v).remove(&x) {}
                        }
                    }
                }
            }
        }
        // Final full sweep over every slot.
        for l in 0..LEVELS {
            for v in 0..VERTICES {
                prop_assert_eq!(store.len(l, v), oracle.slot(l, v).len());
                for x in 0..DOMAIN {
                    prop_assert_eq!(
                        store.count(l, v, &x) as usize,
                        oracle.slot(l, v).count(&x),
                        "final count of {} diverged in slot ({}, {})", x, l, v
                    );
                }
            }
        }
    }

    /// Duplicate-heavy runs: multiplicities stay exact through interleaved
    /// duplicate adds and partial removes on one slot.
    #[test]
    fn duplicate_multiplicity_semantics(
        adds in proptest::collection::vec(0u64..4, 1..60),
        removes in proptest::collection::vec(0u64..4, 1..60),
    ) {
        let store: AdjacencyStore<u64> = AdjacencyStore::new(1, 1);
        let oracle = ConcurrentMultiSet::new();
        for &x in &adds {
            store.add(0, 0, x);
            oracle.add(x);
        }
        for &x in &removes {
            prop_assert_eq!(store.remove(0, 0, &x), oracle.remove(&x));
        }
        for x in 0u64..4 {
            prop_assert_eq!(store.count(0, 0, &x) as usize, oracle.count(&x));
        }
        prop_assert_eq!(store.len(0, 0), oracle.len());
    }
}

/// Concurrent differential smoke: per-thread disjoint key ranges let every
/// thread check its own multiplicities exactly while all threads share slots
/// (exercising stripe contention and concurrent page materialization).
#[test]
fn concurrent_threads_agree_with_per_thread_oracles() {
    let store: AdjacencyStore<u64> = AdjacencyStore::new(LEVELS, VERTICES as usize);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = &store;
            scope.spawn(move || {
                let oracle = Oracle::new();
                let base = t * 1_000_000;
                for i in 0..3_000u64 {
                    let l = (i % LEVELS as u64) as usize;
                    let v = (i % VERTICES as u64) as u32;
                    let x = base + i % 50;
                    if i % 3 == 2 {
                        assert_eq!(
                            store.remove(l, v, &x),
                            oracle.slot(l, v).remove(&x),
                            "thread {t} remove diverged at {i}"
                        );
                    } else {
                        store.add(l, v, x);
                        oracle.slot(l, v).add(x);
                    }
                }
                for l in 0..LEVELS {
                    for v in 0..VERTICES {
                        for x in oracle.slot(l, v).snapshot() {
                            assert_eq!(
                                store.count(l, v, &x) as usize,
                                oracle.slot(l, v).count(&x),
                                "thread {t} final count diverged for {x}"
                            );
                        }
                    }
                }
            });
        }
    });
}
