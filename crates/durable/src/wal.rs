//! The segmented write-ahead log: wire format, appender and recovery scan.
//!
//! # Format (version 1)
//!
//! The log is a directory of segment files `wal-NNNNNNNN.dcw` (zero-padded
//! decimal segment index). Multi-byte integers are LEB128 varints from
//! [`dc_sync::wire`] unless noted; fixed header fields are little-endian.
//! Checksums are FNV-1a 64 — the same primitive as the `dc_workloads` trace
//! trailer, by design: one byte-level vocabulary across the repo's
//! persistent formats.
//!
//! ```text
//! segment header
//!   magic      b"DCWS"            (4 bytes)
//!   version    u16 LE             (currently 1)
//!   segment    u64 LE             (this file's index)
//!   first_seq  u64 LE             (lowest seq a batch here may carry)
//!   vertices   u64 LE             (universe size, for checkpoint-free boot)
//!   checksum   u64 LE             (FNV-1a of the 30 header bytes above)
//!
//! BATCH record                    (one per committed update batch)
//!   tag        0xB1
//!   seq        varint
//!   n_adds     varint, then per edge: varint u, varint v
//!   n_removes  varint, then per edge: varint u, varint v
//!   checksum   u64 LE             (FNV-1a of tag..last payload byte)
//!
//! COMMIT record
//!   tag        0xC1
//!   seq        varint             (must equal the preceding BATCH's seq)
//!   checksum   u64 LE             (FNV-1a of tag + seq bytes)
//! ```
//!
//! A batch is durable iff its BATCH record *and* the matching COMMIT record
//! are both intact — the commit record is the group-commit boundary, so a
//! crash between the two leaves an uncommitted batch that recovery drops.
//! Records never span segments.
//!
//! The scan rule (see `DESIGN.md` §9): any parse or checksum failure in the
//! **final** segment is a torn tail — the file is truncated back to the end
//! of the last committed batch and recovery continues. The same failure in
//! any earlier segment is mid-log corruption and fatal, because bytes that
//! were once acknowledged as durable have changed underneath us.

use crate::error::DurableError;
use crate::fault::{DurableFs, SyncWrite};
use dc_graph::Edge;
use dc_sync::wire::{self, Fnv64};
use std::io;
use std::path::{Path, PathBuf};

/// WAL format version.
pub const WAL_VERSION: u16 = 1;

pub(crate) const WAL_MAGIC: [u8; 4] = *b"DCWS";
pub(crate) const TAG_BATCH: u8 = 0xB1;
pub(crate) const TAG_COMMIT: u8 = 0xC1;

/// Segment file name for an index: `wal-00000042.dcw`.
pub(crate) fn segment_file_name(index: u64) -> String {
    format!("wal-{index:08}.dcw")
}

/// Parses a segment index back out of a file name, if it is one.
pub(crate) fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("wal-")?.strip_suffix(".dcw")?;
    if stem.len() < 8 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Serializes a segment header.
pub(crate) fn encode_segment_header(segment: u64, first_seq: u64, vertices: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(38);
    bytes.extend_from_slice(&WAL_MAGIC);
    bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&segment.to_le_bytes());
    bytes.extend_from_slice(&first_seq.to_le_bytes());
    bytes.extend_from_slice(&vertices.to_le_bytes());
    let checksum = Fnv64::hash(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Serializes one committed batch: BATCH record followed by its COMMIT
/// record, ready to append in a single write.
pub(crate) fn encode_batch(seq: u64, adds: &[Edge], removes: &[Edge]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(16 + 4 * (adds.len() + removes.len()));
    bytes.push(TAG_BATCH);
    wire::push_varint(&mut bytes, seq);
    wire::push_varint(&mut bytes, adds.len() as u64);
    for e in adds {
        wire::push_varint(&mut bytes, e.u() as u64);
        wire::push_varint(&mut bytes, e.v() as u64);
    }
    wire::push_varint(&mut bytes, removes.len() as u64);
    for e in removes {
        wire::push_varint(&mut bytes, e.u() as u64);
        wire::push_varint(&mut bytes, e.v() as u64);
    }
    let checksum = Fnv64::hash(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());

    let commit_start = bytes.len();
    bytes.push(TAG_COMMIT);
    wire::push_varint(&mut bytes, seq);
    let checksum = Fnv64::hash(&bytes[commit_start..]);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// An open, appendable segment.
pub(crate) struct SegmentWriter {
    writer: Box<dyn SyncWrite + Send>,
    pub(crate) index: u64,
    pub(crate) bytes_written: u64,
}

impl SegmentWriter {
    /// Creates segment `index` in `dir` and writes its header.
    pub(crate) fn create(
        fs: &dyn DurableFs,
        dir: &Path,
        index: u64,
        first_seq: u64,
        vertices: u64,
    ) -> io::Result<Self> {
        let mut writer = fs.create(&dir.join(segment_file_name(index)))?;
        let header = encode_segment_header(index, first_seq, vertices);
        writer.write_all(&header)?;
        Ok(SegmentWriter {
            writer,
            index,
            bytes_written: header.len() as u64,
        })
    }

    pub(crate) fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }
}

/// One committed batch decoded from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct WalBatch {
    pub(crate) seq: u64,
    pub(crate) adds: Vec<Edge>,
    pub(crate) removes: Vec<Edge>,
}

/// What scanning one segment produced.
pub(crate) struct SegmentScan {
    pub(crate) first_seq: u64,
    pub(crate) vertices: u64,
    pub(crate) batches: Vec<WalBatch>,
    /// Offset just past the last fully committed batch — the truncation
    /// point if the tail beyond it is torn.
    pub(crate) committed_end: u64,
    /// `Some(detail)` when parsing stopped before the end of the file (or
    /// mid-record at EOF): a torn tail if this is the final segment, fatal
    /// corruption otherwise. The offset is where the bad record starts.
    pub(crate) damage: Option<(u64, String)>,
}

/// Decodes a whole segment from bytes (recovery reads real files).
pub(crate) fn scan_segment(path: &Path, bytes: &[u8]) -> Result<SegmentScan, DurableError> {
    let header_malformed = |detail: &str| -> SegmentScan {
        // A header that never made it to disk whole is damage at offset 0:
        // tolerable (as an empty segment) only at the log's very tail.
        SegmentScan {
            first_seq: 0,
            vertices: 0,
            batches: Vec::new(),
            committed_end: 0,
            damage: Some((0, format!("segment header: {detail}"))),
        }
    };
    if bytes.len() < 38 {
        return Ok(header_malformed("truncated"));
    }
    if bytes[0..4] != WAL_MAGIC {
        return Err(DurableError::Malformed(format!(
            "{} is not a WAL segment (bad magic)",
            path.display()
        )));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != WAL_VERSION {
        return Err(DurableError::Malformed(format!(
            "{}: unsupported WAL version {version}",
            path.display()
        )));
    }
    let expect = Fnv64::hash(&bytes[..30]);
    let found = u64::from_le_bytes(bytes[30..38].try_into().unwrap());
    if expect != found {
        return Ok(header_malformed("checksum mismatch"));
    }
    let first_seq = u64::from_le_bytes(bytes[14..22].try_into().unwrap());
    let vertices = u64::from_le_bytes(bytes[22..30].try_into().unwrap());

    let mut batches = Vec::new();
    let mut pos: usize = 38;
    let mut committed_end = pos as u64;
    let mut pending: Option<WalBatch> = None;
    let mut damage = None;

    'scan: while pos < bytes.len() {
        let record_start = pos;
        macro_rules! torn {
            ($($arg:tt)*) => {{
                damage = Some((record_start as u64, format!($($arg)*)));
                break 'scan;
            }};
        }
        macro_rules! try_varint {
            ($what:expr) => {
                match wire::varint_decode_slice(bytes, &mut pos) {
                    Some(v) => v,
                    None => torn!("truncated {} varint", $what),
                }
            };
        }
        let tag = bytes[pos];
        pos += 1;
        match tag {
            TAG_BATCH => {
                if pending.is_some() {
                    torn!("BATCH record while previous batch is uncommitted");
                }
                let seq = try_varint!("seq");
                let read_edges = |pos: &mut usize| -> Result<Option<Vec<Edge>>, String> {
                    let n = match wire::varint_decode_slice(bytes, pos) {
                        Some(v) => v,
                        None => return Ok(None),
                    };
                    if n > (bytes.len() - *pos) as u64 {
                        // An impossible count (each edge needs ≥2 bytes):
                        // treat as damage rather than attempting a huge
                        // allocation from garbage bytes.
                        return Err(format!("edge count {n} exceeds segment size"));
                    }
                    let mut edges = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        let u = match wire::varint_decode_slice(bytes, pos) {
                            Some(v) => v,
                            None => return Ok(None),
                        };
                        let v = match wire::varint_decode_slice(bytes, pos) {
                            Some(v) => v,
                            None => return Ok(None),
                        };
                        if u == v || u > u32::MAX as u64 || v > u32::MAX as u64 {
                            return Err(format!("invalid edge ({u}, {v})"));
                        }
                        edges.push(Edge::new(u as u32, v as u32));
                    }
                    Ok(Some(edges))
                };
                let adds = match read_edges(&mut pos) {
                    Ok(Some(e)) => e,
                    Ok(None) => torn!("truncated adds"),
                    Err(detail) => torn!("{detail}"),
                };
                let removes = match read_edges(&mut pos) {
                    Ok(Some(e)) => e,
                    Ok(None) => torn!("truncated removes"),
                    Err(detail) => torn!("{detail}"),
                };
                if pos + 8 > bytes.len() {
                    torn!("truncated BATCH checksum");
                }
                let expect = Fnv64::hash(&bytes[record_start..pos]);
                let found = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
                pos += 8;
                if expect != found {
                    torn!("BATCH checksum mismatch (seq {seq})");
                }
                pending = Some(WalBatch { seq, adds, removes });
            }
            TAG_COMMIT => {
                let seq = try_varint!("seq");
                if pos + 8 > bytes.len() {
                    torn!("truncated COMMIT checksum");
                }
                let expect = Fnv64::hash(&bytes[record_start..pos]);
                let found = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
                pos += 8;
                if expect != found {
                    torn!("COMMIT checksum mismatch (seq {seq})");
                }
                match pending.take() {
                    Some(batch) if batch.seq == seq => {
                        batches.push(batch);
                        committed_end = pos as u64;
                    }
                    Some(batch) => {
                        torn!("COMMIT seq {seq} does not match BATCH seq {}", batch.seq)
                    }
                    None => torn!("COMMIT without a preceding BATCH (seq {seq})"),
                }
            }
            other => torn!("unknown record tag {other:#04x}"),
        }
    }
    // A BATCH that parsed cleanly but whose COMMIT never made it is an
    // uncommitted tail — same treatment as a torn record.
    if damage.is_none() && pending.is_some() {
        damage = Some((committed_end, "uncommitted batch at end of segment".into()));
    }
    Ok(SegmentScan {
        first_seq,
        vertices,
        batches,
        committed_end,
        damage,
    })
}

/// Lists the segment files in `dir`, sorted ascending by index.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(index) = parse_segment_file_name(name) {
                segments.push((index, entry.path()));
            }
        }
    }
    segments.sort();
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_with(batches: &[(u64, Vec<Edge>, Vec<Edge>)]) -> Vec<u8> {
        let mut bytes = encode_segment_header(1, 1, 64);
        for (seq, adds, removes) in batches {
            bytes.extend_from_slice(&encode_batch(*seq, adds, removes));
        }
        bytes
    }

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(u, v)
    }

    #[test]
    fn segment_file_names_round_trip() {
        assert_eq!(segment_file_name(42), "wal-00000042.dcw");
        assert_eq!(parse_segment_file_name("wal-00000042.dcw"), Some(42));
        assert_eq!(parse_segment_file_name("wal-xxx.dcw"), None);
        assert_eq!(parse_segment_file_name("ck-00000042.dcc"), None);
        assert_eq!(parse_segment_file_name("wal-00000042.dcw.tmp"), None);
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = segment_with(&[
            (1, vec![e(0, 1), e(1, 2)], vec![]),
            (2, vec![e(2, 3)], vec![e(0, 1)]),
        ]);
        let scan = scan_segment(&PathBuf::from("t"), &bytes).unwrap();
        assert!(scan.damage.is_none());
        assert_eq!(scan.first_seq, 1);
        assert_eq!(scan.vertices, 64);
        assert_eq!(scan.batches.len(), 2);
        assert_eq!(scan.batches[1].seq, 2);
        assert_eq!(scan.batches[1].removes, vec![e(0, 1)]);
        assert_eq!(scan.committed_end, bytes.len() as u64);
    }

    #[test]
    fn torn_tail_keeps_committed_prefix() {
        let full = segment_with(&[(1, vec![e(0, 1)], vec![]), (2, vec![e(1, 2)], vec![])]);
        let prefix = segment_with(&[(1, vec![e(0, 1)], vec![])]);
        // Cut the second batch anywhere: the first must survive untouched.
        for cut in prefix.len() + 1..full.len() {
            let scan = scan_segment(&PathBuf::from("t"), &full[..cut]).unwrap();
            assert_eq!(scan.batches.len(), 1, "cut at {cut}");
            assert!(scan.damage.is_some(), "cut at {cut}");
            assert_eq!(scan.committed_end, prefix.len() as u64, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_is_reported_as_damage_at_the_record() {
        let bytes = segment_with(&[(1, vec![e(0, 1)], vec![]), (2, vec![e(1, 2)], vec![])]);
        let prefix_len = segment_with(&[(1, vec![e(0, 1)], vec![])]).len();
        let mut corrupt = bytes.clone();
        corrupt[prefix_len + 3] ^= 0x10; // inside the second BATCH record
        let scan = scan_segment(&PathBuf::from("t"), &corrupt).unwrap();
        assert_eq!(scan.batches.len(), 1);
        let (offset, _) = scan.damage.expect("flip must be detected");
        assert_eq!(offset, prefix_len as u64);
    }

    #[test]
    fn uncommitted_batch_is_damage() {
        let mut bytes = segment_with(&[(1, vec![e(0, 1)], vec![])]);
        let committed = bytes.len() as u64;
        // Append a BATCH record with no COMMIT after it.
        let batch_and_commit = encode_batch(2, &[e(1, 2)], &[]);
        let commit_len = {
            let mut c = vec![TAG_COMMIT];
            wire::push_varint(&mut c, 2);
            c.len() + 8
        };
        bytes.extend_from_slice(&batch_and_commit[..batch_and_commit.len() - commit_len]);
        let scan = scan_segment(&PathBuf::from("t"), &bytes).unwrap();
        assert_eq!(scan.batches.len(), 1);
        assert_eq!(scan.committed_end, committed);
        assert!(scan.damage.is_some());
    }

    #[test]
    fn wrong_magic_is_malformed_not_damage() {
        let mut bytes = segment_with(&[]);
        bytes[0] = b'X';
        assert!(matches!(
            scan_segment(&PathBuf::from("t"), &bytes),
            Err(DurableError::Malformed(_))
        ));
    }

    #[test]
    fn torn_header_is_damage_at_zero() {
        let bytes = segment_with(&[]);
        let scan = scan_segment(&PathBuf::from("t"), &bytes[..20]).unwrap();
        assert_eq!(scan.damage, Some((0, "segment header: truncated".into())));
        assert_eq!(scan.committed_end, 0);
    }
}
