//! Typed failure vocabulary and the recovery report.
//!
//! The whole point of a durability layer is that failures are *expected*
//! inputs, not exceptional ones — a torn tail is the normal result of a
//! crash, and recovery must classify what it finds rather than panic. The
//! classification mirrors `dc_workloads::TraceError`'s split between
//! recoverable truncation and fatal corruption, lifted to the multi-file
//! store:
//!
//! * a torn **final** record/segment is what an interrupted writer leaves
//!   behind — recovery truncates to the last valid checksum and continues
//!   (reported in [`RecoveryReport`], never an error);
//! * corruption anywhere **before** the tail means bytes that were once
//!   durable have changed — [`DurableError::CorruptLog`], fatal, because
//!   nothing after the damage can be trusted;
//! * a corrupt checkpoint is skipped (an older one plus more WAL replay
//!   gives the same state) and counted in the report.

use std::fmt;
use std::io;

/// Why a durable-store operation failed.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Corruption strictly before the log's tail: a record in a non-final
    /// segment (or before the final segment's torn region) failed its
    /// checksum or structure. Fatal — the log cannot be replayed past it.
    CorruptLog {
        /// Index of the damaged segment.
        segment: u64,
        /// Byte offset of the damaged record within the segment.
        offset: u64,
        /// What exactly failed to parse or verify.
        detail: String,
    },
    /// No usable store in the directory (missing segments, bad magic,
    /// unsupported version, inconsistent vertex counts).
    Malformed(String),
    /// The instance stopped logging after an earlier write failure (real or
    /// injected); updates are no longer being made durable and mutating
    /// calls are refused. Recover from disk to resume.
    Poisoned,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store I/O error: {e}"),
            DurableError::CorruptLog {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "corrupt WAL record in segment {segment} at offset {offset}: {detail}"
            ),
            DurableError::Malformed(msg) => write!(f, "not a usable durable store: {msg}"),
            DurableError::Poisoned => {
                write!(f, "durable instance poisoned by an earlier write failure")
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// What recovery found and did — returned alongside the recovered instance
/// so callers (and the differential tests) can assert on the exact path
/// taken.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `covered_seq` of the checkpoint that seeded the structure; `0` when
    /// recovery replayed the whole log from an empty structure.
    pub checkpoint_seq: u64,
    /// Checkpoint files that failed validation and were skipped in favor of
    /// an older one (or none).
    pub checkpoints_skipped: usize,
    /// Leftover `.tmp` checkpoint files from interrupted writes, ignored.
    pub tmp_checkpoints_ignored: usize,
    /// WAL segment files scanned.
    pub segments_scanned: usize,
    /// Committed batches replayed from the WAL tail (those not already
    /// covered by the checkpoint).
    pub batches_replayed: u64,
    /// Highest committed sequence number in the recovered state.
    pub last_seq: u64,
    /// Whether the final segment ended in a torn or uncommitted record that
    /// recovery truncated away.
    pub tail_truncated: bool,
    /// Bytes dropped from the final segment by the truncation.
    pub truncated_bytes: u64,
}

impl RecoveryReport {
    /// `true` when recovery used a checkpoint rather than replaying the log
    /// from scratch.
    pub fn used_checkpoint(&self) -> bool {
        self.checkpoint_seq > 0
    }
}
