//! Fault injection: a writer that dies on schedule.
//!
//! Crash-safety claims are only as good as the crashes they were tested
//! against, and real power loss is not available in CI. This module makes
//! the *write side* of the store pluggable so tests can kill it at any byte:
//!
//! * [`FaultSchedule`] — a shared, thread-safe schedule saying when and how
//!   to fail: stop cleanly after a byte budget, land a short (partial)
//!   write, flip a bit in flight, or refuse a rename.
//! * [`FaultWriter`] — wraps any [`Write`] + [`SyncWrite`] sink and applies
//!   the schedule. Bytes admitted before the crash point reach the inner
//!   sink (they "made it to disk"); everything after errors out.
//! * [`DurableFs`] — the narrow filesystem surface the store writes through
//!   ([`RealFs`] in production, [`FaultFs`] in tests), so file creation and
//!   the checkpoint's atomic rename are also under the schedule's control.
//!
//! Recovery always reads the *real* files with `std::fs` — the injected
//! faults shape what the crashed writer left behind, not what the reader
//! sees.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A write sink that can also be forced to stable storage — the durability
/// analogue of `fsync`. [`File`] maps it to `sync_data`; in-memory sinks
/// used by unit tests make it a no-op.
pub trait SyncWrite: Write {
    /// Forces previously written bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

impl SyncWrite for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl SyncWrite for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// How the scheduled fault manifests.
#[derive(Clone, Copy, Debug)]
enum FaultMode {
    /// No injected fault; writes pass through forever.
    None,
    /// A write that would cross the byte budget fails atomically — nothing
    /// of it lands. Models a process kill between write syscalls.
    CrashAfter { budget: u64 },
    /// A write that crosses the budget lands *partially* — the prefix up to
    /// the budget reaches the sink, then the writer dies. Models a torn
    /// write: power loss mid-sector.
    ShortWrite { budget: u64 },
    /// One bit of the byte at absolute stream offset `offset` is flipped
    /// with `mask`; writes otherwise succeed forever. Models silent media
    /// corruption rather than a crash.
    BitFlip { offset: u64, mask: u8 },
}

#[derive(Debug)]
struct ScheduleState {
    mode: FaultMode,
    /// Total bytes admitted across every writer sharing this schedule.
    written: u64,
    /// Set once the fault has fired; everything fails afterwards.
    crashed: bool,
    /// When set, the next rename through a [`FaultFs`] fails and trips the
    /// crash — the mid-checkpoint-rename crash point.
    fail_renames: bool,
}

/// A shared crash schedule. Clone the [`Arc`] into every [`FaultWriter`]
/// and the [`FaultFs`] so the byte budget is global across segment and
/// checkpoint files — exactly like a real process with one power cord.
#[derive(Debug)]
pub struct FaultSchedule {
    state: Mutex<ScheduleState>,
}

impl FaultSchedule {
    fn with_mode(mode: FaultMode) -> Arc<Self> {
        Arc::new(FaultSchedule {
            state: Mutex::new(ScheduleState {
                mode,
                written: 0,
                crashed: false,
                fail_renames: false,
            }),
        })
    }

    /// A schedule that never fails (pass-through).
    pub fn none() -> Arc<Self> {
        Self::with_mode(FaultMode::None)
    }

    /// Dies cleanly once `budget` bytes have been admitted: the write that
    /// would cross the budget fails without landing any of its bytes.
    pub fn crash_after(budget: u64) -> Arc<Self> {
        Self::with_mode(FaultMode::CrashAfter { budget })
    }

    /// Dies mid-write: the write crossing `budget` lands only its prefix.
    pub fn short_write(budget: u64) -> Arc<Self> {
        Self::with_mode(FaultMode::ShortWrite { budget })
    }

    /// Flips `mask` into the byte at absolute write offset `offset`; never
    /// crashes.
    pub fn bit_flip(offset: u64, mask: u8) -> Arc<Self> {
        Self::with_mode(FaultMode::BitFlip { offset, mask })
    }

    /// Arms a rename failure: the next rename through a [`FaultFs`] errors
    /// and trips the crashed state (checkpoint `.tmp` is left behind).
    pub fn fail_next_rename(&self) {
        self.state.lock().unwrap().fail_renames = true;
    }

    /// Whether the scheduled fault has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Total bytes admitted so far across all writers on this schedule.
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().unwrap().written
    }

    fn injected() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "injected crash")
    }

    /// Decides the fate of a write of `buf`: how many bytes to admit, with
    /// what content, and whether the writer is now dead.
    fn admit(&self, buf: &[u8]) -> io::Result<(Vec<u8>, bool)> {
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(Self::injected());
        }
        match st.mode {
            FaultMode::None => {
                st.written += buf.len() as u64;
                Ok((buf.to_vec(), false))
            }
            FaultMode::CrashAfter { budget } => {
                if st.written + buf.len() as u64 > budget {
                    st.crashed = true;
                    Err(Self::injected())
                } else {
                    st.written += buf.len() as u64;
                    Ok((buf.to_vec(), false))
                }
            }
            FaultMode::ShortWrite { budget } => {
                if st.written + buf.len() as u64 > budget {
                    let keep = (budget.saturating_sub(st.written)) as usize;
                    st.written += keep as u64;
                    st.crashed = true;
                    Ok((buf[..keep].to_vec(), true))
                } else {
                    st.written += buf.len() as u64;
                    Ok((buf.to_vec(), false))
                }
            }
            FaultMode::BitFlip { offset, mask } => {
                let start = st.written;
                let mut out = buf.to_vec();
                if offset >= start && offset < start + buf.len() as u64 {
                    out[(offset - start) as usize] ^= mask;
                }
                st.written += buf.len() as u64;
                Ok((out, false))
            }
        }
    }
}

/// Wraps a sink and applies a [`FaultSchedule`] to every write and sync.
pub struct FaultWriter<W> {
    inner: W,
    schedule: Arc<FaultSchedule>,
}

impl<W: SyncWrite> FaultWriter<W> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: W, schedule: Arc<FaultSchedule>) -> Self {
        FaultWriter { inner, schedule }
    }
}

impl<W: SyncWrite> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let (admitted, dies_after) = self.schedule.admit(buf)?;
        if !admitted.is_empty() {
            self.inner.write_all(&admitted)?;
            // A torn write is only observable if it reaches the platter
            // before the "power" goes out.
            if dies_after {
                let _ = self.inner.sync();
            }
        }
        if dies_after && admitted.is_empty() {
            return Err(FaultSchedule::injected());
        }
        if dies_after {
            // Report the partial length; the caller's next attempt to write
            // the remainder dies on the crashed flag.
            return Ok(admitted.len());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.schedule.crashed() {
            return Err(FaultSchedule::injected());
        }
        self.inner.flush()
    }
}

impl<W: SyncWrite> SyncWrite for FaultWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        if self.schedule.crashed() {
            return Err(FaultSchedule::injected());
        }
        self.inner.sync()
    }
}

/// The narrow filesystem surface the durable store writes through. Reading
/// is *not* here on purpose: recovery always reads the real files.
pub trait DurableFs: Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn SyncWrite + Send>>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file (segment pruning).
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The production filesystem: plain `std::fs`.
#[derive(Debug, Default)]
pub struct RealFs;

impl DurableFs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SyncWrite + Send>> {
        Ok(Box::new(File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// A filesystem whose every write goes through a shared [`FaultSchedule`].
/// Files are real files on disk — what survives the injected crash is
/// exactly what recovery will read.
pub struct FaultFs {
    schedule: Arc<FaultSchedule>,
}

impl FaultFs {
    /// A filesystem under the given schedule.
    pub fn new(schedule: Arc<FaultSchedule>) -> Self {
        FaultFs { schedule }
    }
}

impl DurableFs for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SyncWrite + Send>> {
        if self.schedule.crashed() {
            return Err(FaultSchedule::injected());
        }
        Ok(Box::new(FaultWriter::new(
            File::create(path)?,
            Arc::clone(&self.schedule),
        )))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.schedule.state.lock().unwrap();
        if st.crashed {
            return Err(FaultSchedule::injected());
        }
        if st.fail_renames {
            st.crashed = true;
            return Err(FaultSchedule::injected());
        }
        drop(st);
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if self.schedule.crashed() {
            return Err(FaultSchedule::injected());
        }
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_after_is_atomic_per_write() {
        let schedule = FaultSchedule::crash_after(10);
        let mut w = FaultWriter::new(Vec::new(), Arc::clone(&schedule));
        w.write_all(&[1; 8]).unwrap();
        // This 4-byte write would cross the 10-byte budget: nothing lands.
        assert!(w.write_all(&[2; 4]).is_err());
        assert!(schedule.crashed());
        assert_eq!(w.inner, vec![1; 8]);
        assert!(w.write_all(&[3; 1]).is_err(), "dead writers stay dead");
        assert!(w.sync().is_err());
    }

    #[test]
    fn short_write_lands_a_prefix() {
        let schedule = FaultSchedule::short_write(10);
        let mut w = FaultWriter::new(Vec::new(), Arc::clone(&schedule));
        w.write_all(&[1; 8]).unwrap();
        // The crossing write lands 2 of its 4 bytes, then the writer dies.
        let err = w.write_all(&[2; 4]);
        assert!(err.is_err());
        assert!(schedule.crashed());
        assert_eq!(w.inner.len(), 10);
        assert_eq!(&w.inner[8..], &[2; 2]);
    }

    #[test]
    fn bit_flip_corrupts_in_flight_without_crashing() {
        let schedule = FaultSchedule::bit_flip(9, 0x80);
        let mut w = FaultWriter::new(Vec::new(), Arc::clone(&schedule));
        w.write_all(&[0; 8]).unwrap();
        w.write_all(&[0; 8]).unwrap();
        assert!(!schedule.crashed());
        assert_eq!(w.inner[9], 0x80);
        assert!(w.inner.iter().enumerate().all(|(i, &b)| i == 9 || b == 0));
    }

    #[test]
    fn budget_is_shared_across_writers() {
        let schedule = FaultSchedule::crash_after(6);
        let mut a = FaultWriter::new(Vec::new(), Arc::clone(&schedule));
        let mut b = FaultWriter::new(Vec::new(), Arc::clone(&schedule));
        a.write_all(&[1; 4]).unwrap();
        assert!(b.write_all(&[2; 4]).is_err(), "budget spans both writers");
        assert!(a.write_all(&[1; 1]).is_err(), "crash is global");
    }
}
