//! # dc_durable — crash-safe persistence for the batch engine
//!
//! The in-memory structure ([`dynconn::Hdt`] behind [`dc_batch::BatchEngine`])
//! answers connectivity fast and concurrently — and forgets everything the
//! moment the process dies. This crate makes it a *store*:
//!
//! * **Write-ahead log** ([`wal`]) — the engine's commit hook hands every
//!   committed (compacted, annihilated) update batch to the log at its
//!   linearization point, before the batch's callers are released. Records
//!   reuse the `dc_sync::wire` primitives (LEB128 varints, per-record
//!   FNV-1a checksums) shared with the `dc_workloads` trace format, framed
//!   by explicit COMMIT records, in segmented files with an
//!   [`FsyncPolicy`] knob ([`Always`](FsyncPolicy::Always) /
//!   [`EveryN`](FsyncPolicy::EveryN) / [`Off`](FsyncPolicy::Off)).
//! * **Checkpoints** ([`checkpoint`]) — the spanning forest and adjacency
//!   levels, walked from the live Euler-tour forests and adjacency pages
//!   under the leader lock, serialized with a checksum and written
//!   atomically (write-then-rename). Restore is checkpoint-load plus
//!   WAL-tail replay instead of full-history replay.
//! * **Recovery** ([`DurableConnectivity::recover`]) — scans segments,
//!   tolerates a torn final record (truncate at the last valid checksum,
//!   never panic), and rejects mid-log corruption with a typed error
//!   ([`DurableError::CorruptLog`]). Returns a [`RecoveryReport`] saying
//!   exactly which path it took.
//! * **Fault injection** ([`fault`]) — [`FaultWriter`] / [`FaultFs`] kill
//!   the write side after a byte budget, land short writes, flip bits in
//!   flight or refuse a rename, so the differential tests can prove that a
//!   writer killed at *any* byte recovers to a state identical to an
//!   oracle replaying the surviving prefix.
//!
//! See `DESIGN.md` §9 for the framing details and the crash-recovery
//! safety argument.
//!
//! ```
//! use dc_durable::{DurableConnectivity, DurableOptions};
//! use dynconn::DynamicConnectivity;
//!
//! let dir = std::env::temp_dir().join(format!("dc-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = DurableConnectivity::create(&dir, 16, DurableOptions::default()).unwrap();
//! store.add_edge(0, 1);
//! store.add_edge(1, 2);
//! assert!(store.connected(0, 2));
//! assert_eq!(store.last_seq(), 2);
//! drop(store); // "crash"
//!
//! let (recovered, report) = DurableConnectivity::recover(&dir, DurableOptions::default()).unwrap();
//! assert!(recovered.connected(0, 2));
//! assert_eq!(report.last_seq, 2);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod checkpoint;
pub mod durable;
pub mod error;
pub mod fault;
pub mod wal;

pub use checkpoint::CHECKPOINT_VERSION;
pub use durable::{DurableConnectivity, DurableOptions, FsyncPolicy};
pub use error::{DurableError, RecoveryReport};
pub use fault::{DurableFs, FaultFs, FaultSchedule, FaultWriter, RealFs, SyncWrite};
pub use wal::WAL_VERSION;
