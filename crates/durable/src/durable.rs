//! [`DurableConnectivity`]: the batch engine with a write-ahead log under
//! it and checkpoints behind it.
//!
//! # Lifecycle
//!
//! * [`DurableConnectivity::create`] — start a fresh store in an empty
//!   directory: segment 1 is written immediately (its header carries the
//!   vertex count, so even a checkpoint-free store can boot).
//! * Operate it like any [`BatchConnectivity`]: every committed update
//!   batch is appended to the WAL *before the batch's callers are released*
//!   (the engine's commit hook runs at the batch's linearization point), so
//!   an acknowledged update is logged — and, under
//!   [`FsyncPolicy::Always`], on disk.
//! * Checkpoints happen automatically every
//!   [`DurableOptions::checkpoint_interval`] batches (and on demand via
//!   [`DurableConnectivity::checkpoint`]): the live forest is serialized
//!   under the leader lock, written-then-renamed, the log rolls to a fresh
//!   segment and fully-covered segments are pruned.
//! * [`DurableConnectivity::recover`] — after a crash: load the newest
//!   valid checkpoint, replay the WAL tail past it, truncate torn bytes off
//!   the final segment, and resume logging in a fresh segment.
//!
//! # Failure semantics
//!
//! A write failure (real or injected by the fault harness) *poisons* the
//! instance: logging stops, [`DurableConnectivity::is_poisoned`] flips, and
//! explicit durability calls ([`checkpoint`](DurableConnectivity::checkpoint),
//! [`sync`](DurableConnectivity::sync)) return [`DurableError::Poisoned`].
//! In-memory operation continues (a poisoned instance is still a correct
//! *volatile* connectivity structure), but nothing past the poison point is
//! durable — exactly the guarantee a crashed process gives. Drop it and
//! [`recover`](DurableConnectivity::recover).

use crate::checkpoint::{self, CheckpointData};
use crate::error::{DurableError, RecoveryReport};
use crate::fault::{DurableFs, RealFs};
use crate::wal::{self, SegmentWriter};
use dc_batch::BatchEngine;
use dynconn::{BatchConnectivity, BatchOp, DynamicConnectivity, Hdt, QueryResult};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// When appended WAL records are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every committed batch: an acknowledged batch survives
    /// power loss. The strongest and slowest setting.
    Always,
    /// `fsync` every `n` committed batches: bounded loss window of at most
    /// `n - 1` acknowledged batches, most of `Off`'s throughput.
    EveryN(u32),
    /// Never `fsync`; the OS flushes when it pleases. Survives process
    /// crashes (the page cache persists) but not power loss.
    Off,
}

/// Tuning knobs for a durable instance.
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// WAL sync policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Committed batches between automatic checkpoints; `0` disables
    /// automatic checkpointing (manual calls still work).
    pub checkpoint_interval: u64,
    /// Roll to a new segment once the current one exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Delete segments fully covered by a checkpoint after it lands.
    pub prune_segments: bool,
    /// Intake capacity forwarded to [`BatchEngine::from_hdt`].
    pub intake_capacity: usize,
    /// Query fan-out threads forwarded to [`BatchEngine::from_hdt`].
    pub query_threads: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            checkpoint_interval: 32,
            segment_max_bytes: 8 << 20,
            prune_segments: true,
            intake_capacity: 64,
            query_threads: 1,
        }
    }
}

struct WalInner {
    segment: Option<SegmentWriter>,
    last_seq: u64,
    batches_since_sync: u32,
    batches_since_checkpoint: u64,
    poisoned: bool,
}

/// The log-side state shared between the instance and the engine's commit
/// hook. The `Mutex` serializes the (single) writer against explicit
/// `sync`/`checkpoint` calls; lock order is always leader lock → `inner`.
struct WalShared {
    dir: PathBuf,
    fs: Arc<dyn DurableFs>,
    opts: DurableOptions,
    vertices: u64,
    inner: Mutex<WalInner>,
}

impl WalShared {
    /// Marks the instance poisoned and emits a flight-recorder post-mortem:
    /// the recorder's rings hold the last structural and WAL events leading
    /// up to the failure. Best-effort — a failed (or empty) dump never
    /// masks the original error.
    fn poison(inner: &mut WalInner, why: &str) {
        inner.poisoned = true;
        let _ = dc_obs::auto_dump(why);
    }

    /// The commit hook body: append + group-commit the batch, then handle
    /// segment rolling and automatic checkpointing. Runs on the leader
    /// thread with the structure quiescent. Any failure poisons the
    /// instance instead of panicking or losing track of what is durable.
    fn on_commit(&self, hdt: &Hdt, adds: &[dc_graph::Edge], removes: &[dc_graph::Edge]) {
        let mut inner = self.inner.lock().unwrap();
        if inner.poisoned {
            return;
        }
        let seq = inner.last_seq + 1;
        let bytes = wal::encode_batch(seq, adds, removes);
        if self.append_locked(&mut inner, &bytes).is_err() {
            Self::poison(&mut inner, "wal-append-failed");
            return;
        }
        inner.last_seq = seq;
        inner.batches_since_checkpoint += 1;
        dc_obs::counter_add(dc_obs::Counter::WalBatches, 1);
        dc_obs::counter_add(dc_obs::Counter::WalBytes, bytes.len() as u64);
        dc_obs::event(dc_obs::EventKind::WalCommit, seq, bytes.len() as u64);
        let auto_checkpoint = self.opts.checkpoint_interval > 0
            && inner.batches_since_checkpoint >= self.opts.checkpoint_interval;
        if auto_checkpoint {
            // Checkpointing rolls the segment itself.
            if self.checkpoint_locked(&mut inner, hdt).is_err() {
                Self::poison(&mut inner, "checkpoint-failed");
            }
            return;
        }
        let over_size = inner
            .segment
            .as_ref()
            .is_some_and(|s| s.bytes_written >= self.opts.segment_max_bytes);
        if over_size && self.roll_segment_locked(&mut inner).is_err() {
            Self::poison(&mut inner, "segment-roll-failed");
        }
    }

    /// One policy-driven or forced sync, span-profiled and counted.
    fn timed_sync(segment: &mut SegmentWriter) -> io::Result<()> {
        let _span = dc_obs::span(dc_obs::SpanId::WalFsync);
        dc_obs::counter_add(dc_obs::Counter::WalFsyncs, 1);
        segment.sync()
    }

    fn append_locked(&self, inner: &mut WalInner, bytes: &[u8]) -> io::Result<()> {
        let segment = inner.segment.as_mut().expect("open segment");
        segment.append(bytes)?;
        match self.opts.fsync {
            FsyncPolicy::Always => Self::timed_sync(segment)?,
            FsyncPolicy::EveryN(n) => {
                inner.batches_since_sync += 1;
                if inner.batches_since_sync >= n.max(1) {
                    Self::timed_sync(segment)?;
                    inner.batches_since_sync = 0;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Writes a checkpoint covering everything committed so far, rolls to a
    /// fresh segment and prunes segments the checkpoint supersedes. Must
    /// run with the leader lock held (`hdt` quiescent).
    fn checkpoint_locked(&self, inner: &mut WalInner, hdt: &Hdt) -> io::Result<u64> {
        let covered = inner.last_seq;
        {
            let _span = dc_obs::span(dc_obs::SpanId::CheckpointWrite);
            checkpoint::write_checkpoint(self.fs.as_ref(), &self.dir, hdt, covered)?;
        }
        dc_obs::counter_add(dc_obs::Counter::Checkpoints, 1);
        dc_obs::event(dc_obs::EventKind::Checkpoint, covered, 0);
        self.roll_segment_locked(inner)?;
        inner.batches_since_checkpoint = 0;
        if self.opts.prune_segments {
            let current = inner.segment.as_ref().expect("open segment").index;
            if let Ok(segments) = wal::list_segments(&self.dir) {
                for (index, path) in segments {
                    if index < current {
                        // Best-effort: a leftover covered segment is
                        // harmless (recovery skips batches ≤ covered_seq).
                        let _ = self.fs.remove(&path);
                    }
                }
            }
        }
        Ok(covered)
    }

    fn roll_segment_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        // Make what the old segment claims durable before abandoning it, so
        // a crash right after the roll cannot lose pre-roll batches that a
        // lazy fsync policy had not yet flushed.
        if let Some(segment) = inner.segment.as_mut() {
            if self.opts.fsync != FsyncPolicy::Off {
                Self::timed_sync(segment)?;
            }
        }
        let next_index = inner
            .segment
            .as_ref()
            .map(|s| s.index + 1)
            .expect("open segment");
        inner.segment = None; // close (drop) the old writer first
        let segment = SegmentWriter::create(
            self.fs.as_ref(),
            &self.dir,
            next_index,
            inner.last_seq + 1,
            self.vertices,
        )?;
        inner.segment = Some(segment);
        inner.batches_since_sync = 0;
        dc_obs::counter_add(dc_obs::Counter::WalSegmentRolls, 1);
        dc_obs::event(dc_obs::EventKind::WalSegmentRoll, next_index, 0);
        Ok(())
    }
}

/// A crash-safe dynamic connectivity instance: the `dc_batch` engine with
/// its update stream group-committed to a segmented WAL and periodically
/// compacted into checkpoints. See the module docs for the lifecycle.
pub struct DurableConnectivity {
    engine: BatchEngine,
    wal: Arc<WalShared>,
}

impl DurableConnectivity {
    /// Starts a fresh store over `n` vertices in `dir` (created if absent;
    /// must not already contain a store).
    pub fn create(
        dir: impl AsRef<Path>,
        n: usize,
        opts: DurableOptions,
    ) -> Result<Self, DurableError> {
        Self::create_with_fs(dir, n, opts, Arc::new(RealFs))
    }

    /// [`create`](Self::create) with an explicit filesystem — the fault
    /// harness injects [`crate::FaultFs`] here.
    pub fn create_with_fs(
        dir: impl AsRef<Path>,
        n: usize,
        opts: DurableOptions,
        fs: Arc<dyn DurableFs>,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if !wal::list_segments(&dir)?.is_empty()
            || !checkpoint::list_checkpoints(&dir)?.0.is_empty()
        {
            return Err(DurableError::Malformed(format!(
                "{} already contains a durable store (use recover)",
                dir.display()
            )));
        }
        let segment = SegmentWriter::create(fs.as_ref(), &dir, 1, 1, n as u64)?;
        let wal = Arc::new(WalShared {
            dir,
            fs,
            opts,
            vertices: n as u64,
            inner: Mutex::new(WalInner {
                segment: Some(segment),
                last_seq: 0,
                batches_since_sync: 0,
                batches_since_checkpoint: 0,
                poisoned: false,
            }),
        });
        Ok(Self::assemble(Hdt::new(n), wal, opts))
    }

    /// Recovers the store in `dir`: newest valid checkpoint + WAL-tail
    /// replay, truncating a torn final record and refusing mid-log
    /// corruption. Returns the live instance (logging resumed in a fresh
    /// segment) plus a [`RecoveryReport`] of exactly what was found.
    pub fn recover(
        dir: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        Self::recover_with_fs(dir, opts, Arc::new(RealFs))
    }

    /// [`recover`](Self::recover) with an explicit filesystem for the
    /// *resumed writer*. Recovery itself always reads (and truncates) the
    /// real files via `std::fs` — injected faults shape what the crashed
    /// writer left behind, not what the reader sees.
    pub fn recover_with_fs(
        dir: impl AsRef<Path>,
        opts: DurableOptions,
        fs: Arc<dyn DurableFs>,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        match Self::recover_with_fs_inner(dir, opts, fs) {
            Err(err @ DurableError::CorruptLog { .. }) => {
                // Refusal is the one outcome an operator must investigate;
                // leave them the flight-recorder tail as a post-mortem.
                dc_obs::event(dc_obs::EventKind::RecoveryStep, 2, 0);
                let _ = dc_obs::auto_dump("recovery-refused");
                Err(err)
            }
            other => other,
        }
    }

    fn recover_with_fs_inner(
        dir: impl AsRef<Path>,
        opts: DurableOptions,
        fs: Arc<dyn DurableFs>,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let mut report = RecoveryReport::default();

        // 1. Newest checkpoint that validates; corrupt ones are skipped.
        let (checkpoints, tmp_ignored) = checkpoint::list_checkpoints(&dir)?;
        report.tmp_checkpoints_ignored = tmp_ignored;
        let mut loaded: Option<CheckpointData> = None;
        for (_, path) in &checkpoints {
            let bytes = std::fs::read(path)?;
            match checkpoint::decode_checkpoint(&bytes) {
                Ok(data) => {
                    loaded = Some(data);
                    break;
                }
                Err(_) => report.checkpoints_skipped += 1,
            }
        }

        // 2. Scan every segment, oldest first. Damage in the final segment
        //    is a torn tail (truncate, keep going); anywhere else is fatal.
        let segments = wal::list_segments(&dir)?;
        if segments.is_empty() && loaded.is_none() {
            return Err(DurableError::Malformed(format!(
                "{} contains no WAL segments and no checkpoint",
                dir.display()
            )));
        }
        report.segments_scanned = segments.len();
        let mut vertices: Option<u64> = loaded.as_ref().map(|c| c.vertices);
        let mut scans = Vec::with_capacity(segments.len());
        let last_pos = segments.len().saturating_sub(1);
        for (pos, (index, path)) in segments.iter().enumerate() {
            let bytes = std::fs::read(path)?;
            let scan = wal::scan_segment(path, &bytes)?;
            if let Some((offset, detail)) = &scan.damage {
                if pos != last_pos {
                    return Err(DurableError::CorruptLog {
                        segment: *index,
                        offset: *offset,
                        detail: detail.clone(),
                    });
                }
                // Torn tail: cut the file back to the last committed batch
                // (drop it entirely if not even the header survived).
                report.tail_truncated = true;
                report.truncated_bytes = bytes.len() as u64 - scan.committed_end;
                if scan.committed_end == 0 {
                    std::fs::remove_file(path)?;
                } else {
                    let file = std::fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(scan.committed_end)?;
                    file.sync_data()?;
                }
            }
            if scan.committed_end > 0 {
                // Header was valid: sanity-check the sequence floor and
                // cross-check the universe size.
                if let Some(first) = scan.batches.first() {
                    if first.seq < scan.first_seq {
                        return Err(DurableError::CorruptLog {
                            segment: *index,
                            offset: 0,
                            detail: format!(
                                "batch seq {} precedes the segment's first_seq {}",
                                first.seq, scan.first_seq
                            ),
                        });
                    }
                }
                match vertices {
                    None => vertices = Some(scan.vertices),
                    Some(n) if n != scan.vertices => {
                        return Err(DurableError::Malformed(format!(
                            "segment {index} declares {} vertices, expected {n}",
                            scan.vertices
                        )));
                    }
                    Some(_) => {}
                }
            }
            scans.push((*index, scan));
        }
        let Some(vertices) = vertices else {
            return Err(DurableError::Malformed(format!(
                "{}: no checkpoint and no intact segment header to learn the vertex count from",
                dir.display()
            )));
        };

        // 3. Rebuild: checkpoint state first, then the tail, in order.
        let hdt = Hdt::new(vertices as usize);
        let covered = loaded.as_ref().map(|c| c.covered_seq).unwrap_or(0);
        if let Some(data) = &loaded {
            checkpoint::restore_into(&hdt, data);
            report.checkpoint_seq = data.covered_seq;
            dc_obs::event(dc_obs::EventKind::RecoveryStep, 0, data.covered_seq);
        }
        let mut last_seq = covered;
        for (index, scan) in &scans {
            dc_obs::event(dc_obs::EventKind::RecoveryStep, 1, *index);
            for batch in &scan.batches {
                if batch.seq <= covered {
                    continue;
                }
                if batch.seq != last_seq + 1 {
                    return Err(DurableError::CorruptLog {
                        segment: *index,
                        offset: 0,
                        detail: format!(
                            "sequence gap: expected batch {} next, found {}",
                            last_seq + 1,
                            batch.seq
                        ),
                    });
                }
                hdt.apply_compacted_batch_locked(&batch.adds, &batch.removes);
                last_seq = batch.seq;
                report.batches_replayed += 1;
            }
        }
        report.last_seq = last_seq;

        // 4. Resume logging in a fresh segment past everything on disk.
        let next_index = segments.iter().map(|(i, _)| *i).max().unwrap_or(0) + 1;
        let segment = SegmentWriter::create(fs.as_ref(), &dir, next_index, last_seq + 1, vertices)?;
        let wal = Arc::new(WalShared {
            dir,
            fs,
            opts,
            vertices,
            inner: Mutex::new(WalInner {
                segment: Some(segment),
                last_seq,
                batches_since_sync: 0,
                batches_since_checkpoint: 0,
                poisoned: false,
            }),
        });
        Ok((Self::assemble(hdt, wal, opts), report))
    }

    fn assemble(hdt: Hdt, wal: Arc<WalShared>, opts: DurableOptions) -> Self {
        let mut engine = BatchEngine::from_hdt(hdt, opts.intake_capacity, opts.query_threads);
        let hook_state = Arc::clone(&wal);
        engine.set_commit_hook(Box::new(move |hdt, adds, removes| {
            hook_state.on_commit(hdt, adds, removes)
        }));
        DurableConnectivity { engine, wal }
    }

    /// The underlying batch engine (lock-free reads, stats, bulk batches).
    pub fn engine(&self) -> &BatchEngine {
        &self.engine
    }

    /// Takes a checkpoint now. Returns the covered sequence number.
    pub fn checkpoint(&self) -> Result<u64, DurableError> {
        self.engine.with_exclusive(|hdt| {
            let mut inner = self.wal.inner.lock().unwrap();
            if inner.poisoned {
                return Err(DurableError::Poisoned);
            }
            match self.wal.checkpoint_locked(&mut inner, hdt) {
                Ok(covered) => Ok(covered),
                Err(e) => {
                    WalShared::poison(&mut inner, "checkpoint-failed");
                    Err(DurableError::Io(e))
                }
            }
        })
    }

    /// Forces every logged batch to stable storage regardless of the
    /// [`FsyncPolicy`].
    pub fn sync(&self) -> Result<(), DurableError> {
        let mut inner = self.wal.inner.lock().unwrap();
        if inner.poisoned {
            return Err(DurableError::Poisoned);
        }
        let result = WalShared::timed_sync(inner.segment.as_mut().expect("open segment"));
        match result {
            Ok(()) => {
                inner.batches_since_sync = 0;
                Ok(())
            }
            Err(e) => {
                WalShared::poison(&mut inner, "forced-sync-failed");
                Err(DurableError::Io(e))
            }
        }
    }

    /// Sequence number of the last batch appended to the log.
    pub fn last_seq(&self) -> u64 {
        self.wal.inner.lock().unwrap().last_seq
    }

    /// `true` once a write failure has stopped durability (see the module
    /// docs on failure semantics).
    pub fn is_poisoned(&self) -> bool {
        self.wal.inner.lock().unwrap().poisoned
    }

    /// Tears this instance down and reconstructs it from its own durable
    /// state — the recovery door out of *both* poison states: an engine
    /// poisoned by a leader panic ([`dc_batch::EngineError::Poisoned`]) and
    /// a WAL poisoned by a write failure. The in-memory structure is
    /// discarded wholesale (after a leader panic it is assumed arbitrarily
    /// damaged, never patched in place); the rebuilt instance is exactly
    /// what [`recover`](Self::recover) would produce after a crash at the
    /// last committed batch — the newest checkpoint plus the WAL tail, with
    /// logging resumed in a fresh segment. Because the commit hook runs
    /// before any caller of its batch is released, every acked update is in
    /// the log and therefore in the rebuilt structure.
    ///
    /// The segment is synced first (best-effort — on a WAL-poisoned store
    /// the tail past the failure is already gone, which is the documented
    /// contract of the fsync policy) and closed before recovery re-reads
    /// the directory.
    pub fn rebuild(self) -> Result<(Self, RecoveryReport), DurableError> {
        let dir = self.wal.dir.clone();
        let opts = self.wal.opts;
        let fs = Arc::clone(&self.wal.fs);
        {
            let mut inner = self.wal.inner.lock().unwrap();
            if let Some(segment) = inner.segment.as_mut() {
                let _ = WalShared::timed_sync(segment);
            }
            // Close the segment writer before recovery re-reads (and
            // possibly truncates) the files it wrote.
            inner.segment = None;
        }
        drop(self);
        let recovered = Self::recover_with_fs(dir, opts, fs)?;
        // The poison condition is gone with the old engine.
        dc_obs::gauge_set(dc_obs::Gauge::EnginePoisoned, 0);
        Ok(recovered)
    }
}

impl DynamicConnectivity for DurableConnectivity {
    fn add_edge(&self, u: u32, v: u32) {
        self.engine.add_edge(u, v);
    }

    fn remove_edge(&self, u: u32, v: u32) {
        self.engine.remove_edge(u, v);
    }

    fn connected(&self, u: u32, v: u32) -> bool {
        self.engine.connected(u, v)
    }

    fn num_vertices(&self) -> usize {
        self.engine.num_vertices()
    }

    fn read_hint_counters(&self) -> Option<(u64, u64)> {
        self.engine.read_hint_counters()
    }
}

impl BatchConnectivity for DurableConnectivity {
    fn apply_batch(&self, ops: &[BatchOp]) -> Vec<QueryResult> {
        self.engine.apply_batch(ops)
    }
}
