//! Checkpoints: a full structural snapshot, written atomically.
//!
//! A checkpoint file freezes the spanning forest and the non-spanning
//! adjacency levels — everything `Hdt::restore_*_edge_locked` needs to
//! rebuild the structure without replaying history. Recovery then only
//! replays the WAL *tail* past the checkpoint's `covered_seq`.
//!
//! # Format (version 1), file `ck-NNNNNNNNNNNNNNNN.dcc`
//!
//! The file-name number is `covered_seq` (zero-padded decimal), so sorting
//! names newest-first is sorting checkpoints newest-first without opening
//! them.
//!
//! ```text
//! magic        b"DCCK"          (4 bytes)
//! version      u16 LE           (currently 1)
//! covered_seq  u64 LE           (all batches with seq ≤ this are included)
//! vertices     u64 LE
//! spanning     varint count, then per edge: varint u, varint v, u8 level
//! nonspanning  varint count, same shape
//! checksum     u64 LE           (FNV-1a of every preceding byte)
//! ```
//!
//! Atomicity: the bytes are written to `<name>.tmp`, synced, then renamed
//! into place. Recovery ignores `.tmp` files, so a crash anywhere during a
//! checkpoint leaves the previous checkpoint authoritative. A checkpoint
//! that fails validation (torn, flipped bit) is *skipped*, not fatal — an
//! older checkpoint plus more WAL replay reconstructs the same state.

use crate::error::DurableError;
use crate::fault::DurableFs;
use dc_sync::wire::{self, Fnv64};
use dynconn::Hdt;
use std::io;
use std::path::{Path, PathBuf};

/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

pub(crate) const CHECKPOINT_MAGIC: [u8; 4] = *b"DCCK";

/// Checkpoint file name for a covered sequence number.
pub(crate) fn checkpoint_file_name(covered_seq: u64) -> String {
    format!("ck-{covered_seq:016}.dcc")
}

/// Parses `covered_seq` back out of a checkpoint file name.
pub(crate) fn parse_checkpoint_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("ck-")?.strip_suffix(".dcc")?;
    if stem.len() < 16 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Serializes the live structure into checkpoint bytes. Must run with the
/// structure write-quiescent (the engine's leader lock held) — the walkers
/// it uses are `_locked` operations.
pub(crate) fn encode_checkpoint(hdt: &Hdt, covered_seq: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&covered_seq.to_le_bytes());
    bytes.extend_from_slice(&(hdt.num_vertices() as u64).to_le_bytes());

    let mut spanning: Vec<(u32, u32, u8)> = Vec::new();
    let mut nonspanning: Vec<(u32, u32, u8)> = Vec::new();
    hdt.export_edges_locked(
        |u, v, level| spanning.push((u, v, level)),
        |u, v, level| nonspanning.push((u, v, level)),
    );
    for class in [&spanning, &nonspanning] {
        wire::push_varint(&mut bytes, class.len() as u64);
        for &(u, v, level) in class.iter() {
            wire::push_varint(&mut bytes, u as u64);
            wire::push_varint(&mut bytes, v as u64);
            bytes.push(level);
        }
    }
    let checksum = Fnv64::hash(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Writes a checkpoint atomically: `<name>.tmp`, sync, rename.
pub(crate) fn write_checkpoint(
    fs: &dyn DurableFs,
    dir: &Path,
    hdt: &Hdt,
    covered_seq: u64,
) -> io::Result<PathBuf> {
    let bytes = encode_checkpoint(hdt, covered_seq);
    let final_path = dir.join(checkpoint_file_name(covered_seq));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(covered_seq)));
    {
        let mut writer = fs.create(&tmp_path)?;
        writer.write_all(&bytes)?;
        writer.sync()?;
    }
    fs.rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// A decoded, validated checkpoint.
pub(crate) struct CheckpointData {
    pub(crate) covered_seq: u64,
    pub(crate) vertices: u64,
    pub(crate) spanning: Vec<(u32, u32, u8)>,
    pub(crate) nonspanning: Vec<(u32, u32, u8)>,
}

/// Decodes checkpoint bytes, validating structure and checksum. Any failure
/// is reported as a skippable error string (the caller falls back to an
/// older checkpoint or a full replay).
pub(crate) fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointData, String> {
    if bytes.len() < 22 + 8 {
        return Err("truncated header".into());
    }
    if bytes[0..4] != CHECKPOINT_MAGIC {
        return Err("bad magic".into());
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let body_end = bytes.len() - 8;
    let expect = Fnv64::hash(&bytes[..body_end]);
    let found = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if expect != found {
        return Err(format!(
            "checksum mismatch: computed {expect:#018x}, stored {found:#018x}"
        ));
    }
    let covered_seq = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    let vertices = u64::from_le_bytes(bytes[14..22].try_into().unwrap());
    let mut pos = 22usize;
    let read_class = |pos: &mut usize| -> Result<Vec<(u32, u32, u8)>, String> {
        let n = wire::varint_decode_slice(&bytes[..body_end], pos)
            .ok_or_else(|| "truncated edge count".to_string())?;
        if n > ((body_end - *pos) / 3) as u64 {
            return Err(format!("edge count {n} exceeds file size"));
        }
        let mut edges = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let u = wire::varint_decode_slice(&bytes[..body_end], pos)
                .ok_or_else(|| "truncated edge".to_string())?;
            let v = wire::varint_decode_slice(&bytes[..body_end], pos)
                .ok_or_else(|| "truncated edge".to_string())?;
            if *pos >= body_end {
                return Err("truncated level byte".into());
            }
            let level = bytes[*pos];
            *pos += 1;
            if u == v || u >= vertices || v >= vertices {
                return Err(format!("invalid edge ({u}, {v})"));
            }
            edges.push((u as u32, v as u32, level));
        }
        Ok(edges)
    };
    let spanning = read_class(&mut pos)?;
    let nonspanning = read_class(&mut pos)?;
    if pos != body_end {
        return Err(format!(
            "{} trailing bytes after edge lists",
            body_end - pos
        ));
    }
    Ok(CheckpointData {
        covered_seq,
        vertices,
        spanning,
        nonspanning,
    })
}

/// Restores a decoded checkpoint into a fresh structure: spanning edges
/// first (each class may be applied in any order within itself — the
/// spanning set forms a forest per level, so links never cycle), then the
/// non-spanning edges, which need the forests in place.
pub(crate) fn restore_into(hdt: &Hdt, data: &CheckpointData) {
    for &(u, v, level) in &data.spanning {
        hdt.restore_spanning_edge_locked(u, v, level);
    }
    for &(u, v, level) in &data.nonspanning {
        hdt.restore_nonspanning_edge_locked(u, v, level);
    }
}

/// Lists checkpoint files in `dir`, newest (highest `covered_seq`) first,
/// plus the count of leftover `.tmp` files (ignored by recovery, reported).
pub(crate) fn list_checkpoints(dir: &Path) -> io::Result<(Vec<(u64, PathBuf)>, usize)> {
    let mut checkpoints = Vec::new();
    let mut tmp_ignored = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("ck-") && name.ends_with(".tmp") {
                tmp_ignored += 1;
            } else if let Some(seq) = parse_checkpoint_file_name(name) {
                checkpoints.push((seq, entry.path()));
            }
        }
    }
    checkpoints.sort_by_key(|c| std::cmp::Reverse(c.0));
    Ok((checkpoints, tmp_ignored))
}

/// Maps a skippable checkpoint-decode failure into the fatal form, for
/// callers that need a hard error instead of fallback.
#[allow(dead_code)]
pub(crate) fn fatal(path: &Path, detail: String) -> DurableError {
    DurableError::Malformed(format!("checkpoint {}: {detail}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_file_names_round_trip() {
        assert_eq!(checkpoint_file_name(7), "ck-0000000000000007.dcc");
        assert_eq!(
            parse_checkpoint_file_name("ck-0000000000000007.dcc"),
            Some(7)
        );
        assert_eq!(
            parse_checkpoint_file_name("ck-0000000000000007.dcc.tmp"),
            None
        );
        assert_eq!(parse_checkpoint_file_name("wal-00000001.dcw"), None);
    }

    #[test]
    fn encode_decode_round_trip_on_a_live_structure() {
        let hdt = Hdt::new(16);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3), (4, 5), (5, 6), (4, 6)] {
            hdt.add_edge_locked(u, v);
        }
        // Force some level promotions so levels are non-trivial.
        for _ in 0..3 {
            hdt.remove_edge_locked(1, 2);
            hdt.add_edge_locked(1, 2);
        }
        let bytes = encode_checkpoint(&hdt, 42);
        let data = decode_checkpoint(&bytes).unwrap();
        assert_eq!(data.covered_seq, 42);
        assert_eq!(data.vertices, 16);
        assert_eq!(data.spanning.len() + data.nonspanning.len(), 7);

        let restored = Hdt::new(16);
        restore_into(&restored, &data);
        for u in 0..16u32 {
            for v in (u + 1)..16 {
                assert_eq!(
                    restored.connected(u, v),
                    hdt.connected(u, v),
                    "({u}, {v}) connectivity diverged after restore"
                );
            }
        }
        // The restored structure serializes to the identical checkpoint.
        assert_eq!(encode_checkpoint(&restored, 42), bytes);
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let hdt = Hdt::new(8);
        hdt.add_edge_locked(0, 1);
        hdt.add_edge_locked(1, 2);
        hdt.add_edge_locked(0, 2);
        let bytes = encode_checkpoint(&hdt, 5);
        assert!(decode_checkpoint(&bytes).is_ok());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(decode_checkpoint(&corrupt).is_err(), "flip at byte {i}");
        }
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
