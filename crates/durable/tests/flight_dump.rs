//! Asserts the flight recorder's post-mortem actually lands on disk when
//! recovery refuses a corrupt log.
//!
//! The recorder's reason to exist is the moment something goes wrong after
//! the fact: an operator staring at a `CorruptLog` refusal should find a
//! chronological event dump next to it without having asked for one. This
//! test drives a traced store through real traffic (so the rings hold
//! links, cuts, WAL commits and segment rolls), corrupts a non-final
//! segment the way `recovery_differential` does, and then checks that the
//! refusal wrote a `dc-flight-*-recovery-refused-*.log` into
//! `DC_OBS_DUMP_DIR` containing both the pre-crash WAL traffic and the
//! recovery steps that led to the refusal.
//!
//! The dump directory env var and the global tracing flag are process-wide,
//! so this file holds exactly one `#[test]`.

use dc_durable::{DurableConnectivity, DurableError, DurableOptions, FsyncPolicy};
use dynconn::DynamicConnectivity;

#[test]
fn recovery_refusal_dumps_the_flight_recorder() {
    let base = std::env::temp_dir().join(format!("dc-flight-dump-test-{}", std::process::id()));
    let store_dir = base.join("store");
    let dump_dir = base.join("dumps");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&store_dir).unwrap();
    std::fs::create_dir_all(&dump_dir).unwrap();
    // Must be set before any event is recorded; read at dump time.
    std::env::set_var("DC_OBS_DUMP_DIR", &dump_dir);
    dc_obs::set_tracing_enabled(true);

    let opts = DurableOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_interval: 0, // keep every segment relevant
        segment_max_bytes: 200, // force several segments
        prune_segments: true,
        intake_capacity: 8,
        query_threads: 1,
    };
    let store = DurableConnectivity::create(&store_dir, 32, opts).unwrap();
    // A spanning path, then cut it apart: links, cuts, replacement
    // searches, WAL commits and segment rolls all hit the rings.
    for v in 0u32..31 {
        store.add_edge(v, v + 1);
    }
    for v in (0u32..31).step_by(2) {
        store.remove_edge(v, v + 1);
    }
    for v in (0u32..31).step_by(2) {
        store.add_edge(v, v + 1);
    }
    assert!(!store.is_poisoned());
    drop(store);

    let mut segments: Vec<_> = std::fs::read_dir(&store_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "dcw"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 3, "need several segments");

    // Flip one bit inside the first segment's record area: mid-log
    // corruption, which recovery must refuse (not truncate).
    let victim = &segments[0];
    let mut bytes = std::fs::read(victim).unwrap();
    bytes[45] ^= 0x08;
    std::fs::write(victim, &bytes).unwrap();

    match DurableConnectivity::recover(&store_dir, opts) {
        Err(DurableError::CorruptLog { .. }) => {}
        other => panic!(
            "expected CorruptLog, got {other:?}",
            other = other.map(|_| ())
        ),
    }
    dc_obs::set_tracing_enabled(false);

    let dumps: Vec<_> = std::fs::read_dir(&dump_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains("recovery-refused"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one refusal dump: {dumps:?}");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    assert!(
        text.contains("recovery-refused"),
        "dump must name its reason:\n{text}"
    );
    // The pre-crash traffic and the refusal's own trail must both be there.
    for kind in [
        "link",
        "cut",
        "wal_commit",
        "wal_segment_roll",
        "recovery_step",
    ] {
        assert!(text.contains(kind), "dump missing {kind} events:\n{text}");
    }
    let _ = std::fs::remove_dir_all(&base);
}
