//! Property test: a checkpoint serialize→restore round trip reproduces the
//! live structure exactly — same spanning-forest edges at the same levels,
//! same non-spanning adjacency, same connectivity answers — no matter what
//! operation history produced it.
//!
//! The walk goes through the full disk path (create → operate → checkpoint
//! → recover from the checkpoint alone), so it also pins the file format:
//! what `export_edges_locked` emits is what `restore_*_edge_locked` gets.

use dc_durable::{DurableConnectivity, DurableOptions, FsyncPolicy};
use dynconn::{BatchConnectivity, BatchOp, DynamicConnectivity, RecomputeOracle};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N: u32 = 14;

fn update_op(n: u32) -> impl Strategy<Value = BatchOp> {
    let vertex = 0..n;
    prop_oneof![
        (vertex.clone(), 0..n).prop_map(|(u, v)| BatchOp::Add(u, v)),
        (vertex, 0..n).prop_map(|(u, v)| BatchOp::Remove(u, v)),
    ]
}

fn effective(ops: Vec<BatchOp>) -> Vec<BatchOp> {
    ops.into_iter()
        .filter(|op| {
            let (u, v) = op.endpoints();
            u != v
        })
        .collect()
}

/// A fresh directory per proptest case (cases run in one process).
fn case_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dc-durable-ckpt-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_shrink_iters: 100,
        .. ProptestConfig::default()
    })]

    /// Operate through mixed doors (bulk batches of varying size), take a
    /// checkpoint, recover from it with no log tail, and compare the whole
    /// connectivity relation — plus the structure's own invariants.
    #[test]
    fn checkpoint_restore_reproduces_the_live_structure(
        ops in proptest::collection::vec(update_op(N), 1..220),
        chop in 1usize..24,
    ) {
        let ops = effective(ops);
        let opts = DurableOptions {
            fsync: FsyncPolicy::Off, // durability timing is not under test here
            checkpoint_interval: 0,  // only the explicit checkpoint below
            ..DurableOptions::default()
        };
        let dir = case_dir();
        let store = DurableConnectivity::create(&dir, N as usize, opts).unwrap();
        let oracle = RecomputeOracle::new(N as usize);
        for chunk in ops.chunks(chop.max(1)) {
            store.apply_batch(chunk);
            oracle.apply_batch(chunk);
        }
        let covered = store.checkpoint().unwrap();
        prop_assert_eq!(covered, store.last_seq());
        drop(store);

        let (recovered, report) = DurableConnectivity::recover(&dir, opts).unwrap();
        // The checkpoint covers everything: recovery must not replay.
        prop_assert_eq!(report.checkpoint_seq, covered);
        prop_assert_eq!(report.batches_replayed, 0);
        prop_assert_eq!(report.last_seq, covered);

        for u in 0..N {
            for v in (u + 1)..N {
                prop_assert_eq!(
                    recovered.connected(u, v),
                    oracle.connected(u, v),
                    "pair ({}, {}) diverged after checkpoint restore", u, v
                );
            }
        }
        recovered.engine().hdt().validate();

        // A second checkpoint off the restored structure must reproduce the
        // same edge classification (levels included): restoring restored
        // state is a fixed point.
        let covered2 = recovered.checkpoint().unwrap();
        prop_assert_eq!(covered2, covered);
        drop(recovered);
        let (again, _) = DurableConnectivity::recover(&dir, opts).unwrap();
        for u in 0..N {
            for v in (u + 1)..N {
                prop_assert_eq!(again.connected(u, v), oracle.connected(u, v));
            }
        }
        again.engine().hdt().validate();
        drop(again);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
