//! Engine-poison × WAL interaction: a batch leader that panics (injected by
//! `dc_faults`) poisons the engine but must leave the durable log replayable,
//! and [`DurableConnectivity::rebuild`] must reconstruct a structure that
//! agrees with a [`RecomputeOracle`] over everything the log committed.
//!
//! The two chaos points bracket the commit hook, which pins down exactly
//! what the rebuilt store may contain:
//!
//! * `LeaderPanicBeforeApply` — the dying batch was never applied and never
//!   logged: the rebuilt store equals the acked prefix *without* it.
//! * `LeaderPanicAfterCommit` — the dying batch was applied and logged, but
//!   its callers were never released: the rebuilt store equals the acked
//!   prefix *plus* the logged batch (replay is allowed to be ahead of the
//!   acks, never behind them).

use dc_batch::EngineError;
use dc_durable::{DurableConnectivity, DurableOptions, FsyncPolicy};
use dc_faults::{ChaosConfig, ChaosSchedule, InjectionPoint};
use dynconn::{DynamicConnectivity, RecomputeOracle};
use std::path::PathBuf;
use std::sync::Arc;

const N: u32 = 24;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-durable-engine-poison-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        ..DurableOptions::default()
    }
}

/// One fault of `point`, scheduled on the very first injection check.
fn one_shot(point: InjectionPoint) -> Arc<ChaosSchedule> {
    let mut faults = [0u32; InjectionPoint::COUNT];
    faults[point as usize] = 1;
    Arc::new(ChaosSchedule::from_config(ChaosConfig {
        horizon: 1,
        faults_per_point: faults,
        ..ChaosConfig::default()
    }))
}

/// Asserts `store` answers `connected` exactly like `oracle` on every pair.
fn assert_matches_oracle(store: &DurableConnectivity, oracle: &RecomputeOracle, label: &str) {
    for u in 0..N {
        for v in (u + 1)..N {
            assert_eq!(
                store.connected(u, v),
                oracle.connected(u, v),
                "{label}: disagreement on ({u}, {v})"
            );
        }
    }
}

/// Builds a chain 0-1-2-…-11 (acked prefix), then lets one more batch die on
/// the given chaos point. Returns (rebuilt store, oracle of the acked
/// prefix, last_seq before the fault).
fn poison_and_rebuild(
    tag: &str,
    point: InjectionPoint,
) -> (DurableConnectivity, RecomputeOracle, u64) {
    let _guard = dc_faults::test_guard();
    let dir = test_dir(tag);
    let store = DurableConnectivity::create(&dir, N as usize, opts()).unwrap();
    let oracle = RecomputeOracle::new(N as usize);
    for u in 0..11 {
        store.add_edge(u, u + 1);
        oracle.add_edge(u, u + 1);
    }
    let acked_seq = store.last_seq();
    assert_eq!(acked_seq, 11, "one effective op per adapter batch");

    dc_faults::install(one_shot(point));
    let died = store
        .engine()
        .try_apply_batch(&[dynconn::BatchOp::Add(20, 21), dynconn::BatchOp::Add(21, 22)]);
    dc_faults::uninstall();
    assert_eq!(
        died,
        Err(EngineError::Poisoned),
        "the chaos point must fire"
    );
    assert!(store.engine().is_poisoned());
    // The WAL itself is healthy — only the engine is poisoned.
    assert!(
        !store.is_poisoned(),
        "a leader panic must not poison the WAL"
    );

    let (rebuilt, report) = store.rebuild().expect("the log must stay replayable");
    assert!(report.batches_replayed > 0 || report.checkpoint_seq > 0);
    assert!(!rebuilt.engine().is_poisoned(), "rebuild starts clean");
    (rebuilt, oracle, acked_seq)
}

#[test]
fn panic_before_apply_rebuilds_to_the_acked_prefix() {
    let (rebuilt, oracle, acked_seq) =
        poison_and_rebuild("before-apply", InjectionPoint::LeaderPanicBeforeApply);
    // The dying batch was never logged: replay stops at the acked prefix,
    // and the poisoned-then-rebuilt structure must agree with the oracle on
    // exactly that prefix.
    assert_eq!(rebuilt.last_seq(), acked_seq);
    assert!(
        !rebuilt.connected(20, 22),
        "the dead batch must not resurface"
    );
    assert_matches_oracle(&rebuilt, &oracle, "before-apply");
}

#[test]
fn panic_after_commit_rebuilds_to_the_logged_batch() {
    let (rebuilt, oracle, acked_seq) =
        poison_and_rebuild("after-commit", InjectionPoint::LeaderPanicAfterCommit);
    // The dying batch was logged before the panic: replay includes it. The
    // rebuilt store is the acked prefix plus that batch — ahead of the
    // acks, never behind them.
    assert_eq!(rebuilt.last_seq(), acked_seq + 1);
    assert!(rebuilt.connected(20, 22), "the logged batch must replay");
    oracle.add_edge(20, 21);
    oracle.add_edge(21, 22);
    assert_matches_oracle(&rebuilt, &oracle, "after-commit");
}

#[test]
fn rebuilt_store_keeps_working_and_logging() {
    let (rebuilt, _oracle, _) =
        poison_and_rebuild("resume", InjectionPoint::LeaderPanicBeforeApply);
    let seq = rebuilt.last_seq();
    // The rebuilt engine accepts updates, logs them, and survives another
    // recovery cycle.
    rebuilt.add_edge(15, 16);
    assert!(rebuilt.connected(15, 16));
    assert_eq!(rebuilt.last_seq(), seq + 1);
    let (again, _report) = rebuilt.rebuild().unwrap();
    assert!(again.connected(15, 16));
    assert!(again.connected(0, 11));
}
