//! The crash-recovery differential: kill the durable writer at dozens of
//! randomized byte budgets — mid-record, mid-segment, mid-checkpoint, at
//! the checkpoint rename — and prove that the recovered instance answers
//! `connected` exactly like a [`RecomputeOracle`] replaying the surviving
//! operation prefix.
//!
//! The setup makes the prefix well-defined: operations go through the
//! single-op adapter door one at a time (one op = one batch = one WAL
//! sequence number) and every generated update is *effective* (adds of
//! absent edges, removes of present edges, drawn against a shadow edge
//! set), so nothing annihilates and WAL seq `k` is exactly op `k`. With
//! [`FsyncPolicy::Always`], recovery's `last_seq` must then be within one
//! of the count of operations the writer acknowledged before dying — and
//! the recovered graph must match the oracle on that prefix, pair for pair.

use dc_durable::{
    DurableConnectivity, DurableError, DurableOptions, FaultFs, FaultSchedule, FsyncPolicy,
    RecoveryReport,
};
use dynconn::{DynamicConnectivity, RecomputeOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

const N: u32 = 48;

#[derive(Clone, Copy, Debug)]
enum UOp {
    Add(u32, u32),
    Remove(u32, u32),
}

/// Generates `count` always-effective updates: each add inserts an absent
/// edge, each remove deletes a present one (tracked in a shadow set), so
/// every op survives the batch preprocessor and gets its own WAL sequence
/// number.
fn effective_ops(seed: u64, count: usize) -> Vec<UOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present: Vec<(u32, u32)> = Vec::new();
    let mut member: HashSet<(u32, u32)> = HashSet::new();
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        if present.is_empty() || rng.gen_bool(0.62) {
            let (u, v) = loop {
                let a = rng.gen_range(0..N);
                let b = rng.gen_range(0..N);
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !member.contains(&key) {
                    break key;
                }
            };
            member.insert((u, v));
            present.push((u, v));
            ops.push(UOp::Add(u, v));
        } else {
            let idx = rng.gen_range(0..present.len());
            let (u, v) = present.swap_remove(idx);
            member.remove(&(u, v));
            ops.push(UOp::Remove(u, v));
        }
    }
    ops
}

fn opts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_interval: 20,
        segment_max_bytes: 1500,
        prune_segments: true,
        intake_capacity: 8,
        query_threads: 1,
    }
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-durable-differential-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs ops through a store writing via the given fault schedule. Returns
/// how many ops executed (in memory) before the poison flag was observed,
/// and whether it ever was.
fn run_store(dir: &PathBuf, ops: &[UOp], schedule: &Arc<FaultSchedule>) -> (usize, bool) {
    let fs = Arc::new(FaultFs::new(Arc::clone(schedule)));
    let store = DurableConnectivity::create_with_fs(dir, N as usize, opts(), fs)
        .expect("budgets are chosen above the segment-header size");
    let mut executed = 0;
    for &op in ops {
        match op {
            UOp::Add(u, v) => store.add_edge(u, v),
            UOp::Remove(u, v) => store.remove_edge(u, v),
        }
        executed += 1;
        if store.is_poisoned() {
            return (executed, true);
        }
    }
    (executed, false)
}

fn oracle_for_prefix(ops: &[UOp], prefix: usize) -> RecomputeOracle {
    let oracle = RecomputeOracle::new(N as usize);
    for &op in &ops[..prefix] {
        match op {
            UOp::Add(u, v) => oracle.add_edge(u, v),
            UOp::Remove(u, v) => oracle.remove_edge(u, v),
        }
    }
    oracle
}

fn assert_matches_oracle(recovered: &DurableConnectivity, oracle: &RecomputeOracle, label: &str) {
    for u in 0..N {
        for v in (u + 1)..N {
            assert_eq!(
                recovered.connected(u, v),
                oracle.connected(u, v),
                "{label}: connectivity diverged at pair ({u}, {v})"
            );
        }
    }
    recovered.engine().hdt().validate();
}

fn assert_prefix_bound(report: &RecoveryReport, executed: usize, poisoned: bool, label: &str) {
    if poisoned {
        // The op that tripped the poison may have died before its record
        // landed (lost) or after it was fsynced but during the follow-up
        // checkpoint/roll (durable). Nothing earlier may ever be lost and
        // nothing later may ever appear.
        assert!(
            report.last_seq + 1 >= executed as u64,
            "{label}: lost more than the in-flight op (executed {executed}, recovered {})",
            report.last_seq
        );
        assert!(
            report.last_seq <= executed as u64,
            "{label}: recovered ops that were never acknowledged"
        );
    } else {
        assert_eq!(
            report.last_seq, executed as u64,
            "{label}: clean run lost ops"
        );
    }
}

/// The headline test: ≥50 randomized crash points across both crash modes,
/// each recovered and differentially checked against the oracle prefix.
#[test]
fn crash_recovery_differential_over_randomized_budgets() {
    let ops = effective_ops(0xD1FF_5EED, 240);

    // Fault-free baseline run: learn the total byte volume (WAL segments
    // plus checkpoints) so budgets can be spread across the whole write
    // history, and sanity-check lossless recovery.
    let baseline = FaultSchedule::none();
    let dir = test_dir("baseline");
    let (executed, poisoned) = run_store(&dir, &ops, &baseline);
    assert!(!poisoned);
    assert_eq!(executed, ops.len());
    let total_bytes = baseline.bytes_written();
    let (recovered, report) = DurableConnectivity::recover(&dir, opts()).unwrap();
    assert_prefix_bound(&report, executed, false, "baseline");
    assert!(
        report.used_checkpoint(),
        "interval 20 over 240 ops must checkpoint"
    );
    assert!(
        report.batches_replayed < ops.len() as u64,
        "checkpoints must spare recovery a full replay"
    );
    assert_matches_oracle(&recovered, &oracle_for_prefix(&ops, ops.len()), "baseline");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // 56 randomized crash points, alternating clean process kills
    // (crash-after) and torn writes (short-write). Budgets land mid-record,
    // mid-segment-header and mid-checkpoint purely by density.
    let mut rng = StdRng::seed_from_u64(0xC4A5_4B0D);
    let mut crashed_runs = 0;
    for point in 0..56 {
        let budget = rng.gen_range(64..total_bytes);
        let schedule = if point % 2 == 0 {
            FaultSchedule::crash_after(budget)
        } else {
            FaultSchedule::short_write(budget)
        };
        let label = format!("crash point {point} (budget {budget})");
        let dir = test_dir(&format!("pt{point}"));
        let (executed, poisoned) = run_store(&dir, &ops, &schedule);
        if poisoned {
            crashed_runs += 1;
        }
        let (recovered, report) = DurableConnectivity::recover(&dir, opts())
            .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
        assert_prefix_bound(&report, executed, poisoned, &label);
        let oracle = oracle_for_prefix(&ops, report.last_seq as usize);
        assert_matches_oracle(&recovered, &oracle, &label);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        crashed_runs > 40,
        "budgets below the baseline volume should almost always crash the writer, got {crashed_runs}"
    );
}

/// The checkpoint rename is its own crash point: the `.tmp` file is fully
/// written and synced, the rename never happens. Recovery must ignore the
/// orphan and rebuild purely from the log.
#[test]
fn crash_at_checkpoint_rename_recovers_from_the_log() {
    let ops = effective_ops(0xAB5E, 30);
    let schedule = FaultSchedule::none();
    let dir = test_dir("rename");
    let fs = Arc::new(FaultFs::new(Arc::clone(&schedule)));
    let store = DurableConnectivity::create_with_fs(&dir, N as usize, opts(), fs).unwrap();
    schedule.fail_next_rename();
    let mut executed = 0;
    for &op in &ops {
        match op {
            UOp::Add(u, v) => store.add_edge(u, v),
            UOp::Remove(u, v) => store.remove_edge(u, v),
        }
        executed += 1;
        if store.is_poisoned() {
            break;
        }
    }
    // The automatic checkpoint at batch 20 hits the armed rename failure.
    assert_eq!(executed, 20, "poison must land on the checkpointing batch");
    assert!(store.is_poisoned());
    drop(store);

    let (recovered, report) = DurableConnectivity::recover(&dir, opts()).unwrap();
    assert_eq!(report.checkpoint_seq, 0, "no checkpoint may have landed");
    assert!(
        report.tmp_checkpoints_ignored >= 1,
        "the orphan .tmp must be seen"
    );
    // Batch 20 was appended and fsynced before the checkpoint attempt.
    assert_eq!(report.last_seq, 20);
    assert_matches_oracle(&recovered, &oracle_for_prefix(&ops, 20), "rename crash");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped bit in a *non-final* segment is not a torn tail — it means
/// acknowledged-durable bytes changed. Recovery must refuse with the typed
/// mid-log corruption error, not truncate or panic.
#[test]
fn mid_log_corruption_is_a_typed_fatal_error() {
    let mut o = opts();
    o.checkpoint_interval = 0; // keep every segment relevant
    o.segment_max_bytes = 600; // force several segments
    let ops = effective_ops(0xBADC0DE, 120);
    let dir = test_dir("midlog");
    let store = DurableConnectivity::create(&dir, N as usize, o).unwrap();
    for &op in &ops {
        match op {
            UOp::Add(u, v) => store.add_edge(u, v),
            UOp::Remove(u, v) => store.remove_edge(u, v),
        }
    }
    assert!(!store.is_poisoned());
    drop(store);

    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "dcw"))
        .collect();
    segments.sort();
    assert!(
        segments.len() >= 3,
        "need several segments, got {}",
        segments.len()
    );

    // Flip one bit inside the first segment's record area.
    let victim = &segments[0];
    let mut bytes = std::fs::read(victim).unwrap();
    bytes[45] ^= 0x08;
    std::fs::write(victim, &bytes).unwrap();

    match DurableConnectivity::recover(&dir, o) {
        Err(DurableError::CorruptLog { segment, .. }) => assert_eq!(segment, 1),
        other => panic!(
            "expected CorruptLog, got {other:?}",
            other = other.map(|_| ())
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncating the final segment mid-record (a torn tail "by hand") loses
/// exactly the final batch, is reported, and leaves the store in a state a
/// second recovery reads back cleanly.
#[test]
fn torn_tail_truncation_is_exact_and_idempotent() {
    let mut o = opts();
    o.checkpoint_interval = 0;
    o.segment_max_bytes = 1 << 20; // keep everything in one segment
    let ops = effective_ops(0x70A4, 40);
    let dir = test_dir("torn");
    let store = DurableConnectivity::create(&dir, N as usize, o).unwrap();
    for &op in &ops {
        match op {
            UOp::Add(u, v) => store.add_edge(u, v),
            UOp::Remove(u, v) => store.remove_edge(u, v),
        }
    }
    drop(store);

    // Tear 3 bytes off the single segment: the last batch's COMMIT record
    // loses its checksum, so that batch must be dropped.
    let segment = dir.join("wal-00000001.dcw");
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let (recovered, report) = DurableConnectivity::recover(&dir, o).unwrap();
    assert!(report.tail_truncated);
    assert!(report.truncated_bytes > 0);
    assert_eq!(report.last_seq, ops.len() as u64 - 1);
    assert_matches_oracle(
        &recovered,
        &oracle_for_prefix(&ops, ops.len() - 1),
        "torn tail",
    );
    drop(recovered);

    // Second recovery: the truncation must have left a clean log.
    let (recovered, report) = DurableConnectivity::recover(&dir, o).unwrap();
    assert!(
        !report.tail_truncated,
        "first recovery must have healed the tail"
    );
    assert_eq!(report.last_seq, ops.len() as u64 - 1);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery is not the end of life: the recovered instance keeps logging,
/// and a second crash-recovery round sees both generations of writes.
#[test]
fn recovered_store_resumes_logging_across_generations() {
    let ops = effective_ops(0x6E4, 90);
    let (first, second) = ops.split_at(50);
    let dir = test_dir("generations");
    let store = DurableConnectivity::create(&dir, N as usize, opts()).unwrap();
    for &op in first {
        match op {
            UOp::Add(u, v) => store.add_edge(u, v),
            UOp::Remove(u, v) => store.remove_edge(u, v),
        }
    }
    drop(store); // generation 1 "crashes" cleanly

    let (store, report) = DurableConnectivity::recover(&dir, opts()).unwrap();
    assert_eq!(report.last_seq, 50);
    for &op in second {
        match op {
            UOp::Add(u, v) => store.add_edge(u, v),
            UOp::Remove(u, v) => store.remove_edge(u, v),
        }
    }
    assert_eq!(store.last_seq(), 90);
    drop(store); // generation 2 crashes too

    let (recovered, report) = DurableConnectivity::recover(&dir, opts()).unwrap();
    assert_eq!(report.last_seq, 90);
    assert_matches_oracle(&recovered, &oracle_for_prefix(&ops, 90), "generations");
    let _ = std::fs::remove_dir_all(&dir);
}
