//! The flight recorder: per-thread fixed-capacity lock-free ring buffers of
//! compact binary structural events, merged chronologically on demand.
//!
//! A metrics counter tells you *how much*; after a crash-shaped failure
//! (WAL poisoning, a recovery refusal from `dc_durable`) you need to know
//! *what happened last, in order*. Each thread records into its own ring,
//! so the hot path is: one relaxed flag load when tracing is off; when on,
//! one timestamp read and a handful of byte stores into thread-local
//! memory — no locks, no allocation after the ring exists, no cross-thread
//! cache traffic.
//!
//! **Record format** (all integers `dc_sync::wire` LEB128 varints):
//!
//! ```text
//!   [len: u8] [kind: u8] [ts: varint] [a: varint] [b: varint]
//! ```
//!
//! `len` is the total record length (3..=33 bytes), `ts` nanoseconds since
//! the process-wide anchor, `a`/`b` two kind-specific payload words. The
//! length prefix lets the writer evict whole stale records when the ring
//! wraps, so the buffer always holds a parseable suffix of the stream.
//!
//! **Memory bound.** Rings are `DC_OBS_RING_BYTES` each (default 64 KiB,
//! clamped to [4 KiB, 16 MiB]) and live for the process (a ring outlives
//! its thread so post-mortem dumps include dead workers' tails). Total
//! footprint is `ring_bytes × peak thread count`, fixed at thread birth.
//!
//! **Dump consistency.** The owning thread is the only writer; a dumper
//! snapshots a ring through a seqlock (version odd while a write is in
//! flight, `Acquire`/`Release` pairing on the version word) and retries a
//! bounded number of times. If the ring is being written *continuously*
//! (pathological), the dumper falls back to a best-effort copy; the parser
//! validates every record (length bounds, known kind, varints that
//! terminate inside the record) and drops torn prefixes rather than
//! propagating garbage — acceptable for a diagnostic artifact, and the
//! price of keeping the writer wait-free.

use crate::metrics::tracing_enabled;
use dc_sync::wire;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Largest possible record: len + kind + three maximal varints.
const MAX_RECORD_LEN: usize = 2 + 3 * wire::MAX_VARINT_LEN;

/// Smallest possible record: len + kind + three one-byte varints.
const MIN_RECORD_LEN: usize = 5;

/// Default per-thread ring capacity in bytes.
const DEFAULT_RING_BYTES: usize = 64 * 1024;

/// Bounds for the `DC_OBS_RING_BYTES` override.
const MIN_RING_BYTES: usize = 4 * 1024;
const MAX_RING_BYTES: usize = 16 * 1024 * 1024;

/// Seqlock retries before a dump falls back to best-effort parsing.
const SNAPSHOT_RETRIES: usize = 16;

/// The event taxonomy. Payload words `a`/`b` are per-kind (documented on
/// each variant); unused words are 0.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// Spanning link at level `a` between the components of edge `(b>>32,
    /// b & 0xffff_ffff)`.
    Link = 1,
    /// Spanning cut at level `a` of edge `(b>>32, b & 0xffff_ffff)`.
    Cut = 2,
    /// Replacement search finished: `a` = level of the cut edge, `b` =
    /// level the replacement was found at plus one (0 = none found, the
    /// component split).
    ReplacementSearch = 3,
    /// `a` edges promoted from level `b` to `b + 1`.
    LevelPromotion = 4,
    /// Batch leader claimed `a` operations from the intake array.
    BatchBegin = 5,
    /// Batch flush done: `a` = structural updates applied, `b` = updates
    /// annihilated/deduplicated away by compaction.
    BatchFlush = 6,
    /// WAL group commit: `a` = batch sequence number, `b` = bytes appended.
    WalCommit = 7,
    /// WAL rolled to segment `a`.
    WalSegmentRoll = 8,
    /// Checkpoint installed covering batches up to sequence `a`.
    Checkpoint = 9,
    /// Recovery step `a` (0 = checkpoint loaded, 1 = segment replayed,
    /// 2 = recovery refused) with step-specific payload `b`.
    RecoveryStep = 10,
    /// Epoch reclamation pass: `a` = nodes reclaimed, `b` = live nodes.
    EpochAdvance = 11,
    /// Root-version bump on vertex `a`'s component root (hint
    /// invalidation), new version `b`.
    HintInvalidation = 12,
    /// A batch engine poisoned itself after a leader panic: `a` = batches
    /// drained before the poison, `b` = intake waiters released with a
    /// typed error. See `DESIGN.md` §13.
    EnginePoison = 13,
    /// A watchdog probe flagged (`b` = 1) or cleared (`b` = 0) a stall;
    /// `a` = the probe's index in spawn order.
    WatchdogStall = 14,
    /// A chaos injection point fired: `a` = the
    /// `dc_faults::InjectionPoint` discriminant, `b` = that point's
    /// fire ordinal (1-based).
    ChaosInject = 15,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Link,
            2 => EventKind::Cut,
            3 => EventKind::ReplacementSearch,
            4 => EventKind::LevelPromotion,
            5 => EventKind::BatchBegin,
            6 => EventKind::BatchFlush,
            7 => EventKind::WalCommit,
            8 => EventKind::WalSegmentRoll,
            9 => EventKind::Checkpoint,
            10 => EventKind::RecoveryStep,
            11 => EventKind::EpochAdvance,
            12 => EventKind::HintInvalidation,
            13 => EventKind::EnginePoison,
            14 => EventKind::WatchdogStall,
            15 => EventKind::ChaosInject,
            _ => return None,
        })
    }

    /// Stable name used in text dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Link => "link",
            EventKind::Cut => "cut",
            EventKind::ReplacementSearch => "replacement_search",
            EventKind::LevelPromotion => "level_promotion",
            EventKind::BatchBegin => "batch_begin",
            EventKind::BatchFlush => "batch_flush",
            EventKind::WalCommit => "wal_commit",
            EventKind::WalSegmentRoll => "wal_segment_roll",
            EventKind::Checkpoint => "checkpoint",
            EventKind::RecoveryStep => "recovery_step",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::HintInvalidation => "hint_invalidation",
            EventKind::EnginePoison => "engine_poison",
            EventKind::WatchdogStall => "watchdog_stall",
            EventKind::ChaosInject => "chaos_inject",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Recorder-assigned id of the recording thread (birth order).
    pub thread: usize,
    /// Nanoseconds since the process-wide anchor.
    pub ts_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (kind-specific).
    pub a: u64,
    /// Second payload word (kind-specific).
    pub b: u64,
}

/// Packs an edge's endpoints into one payload word for
/// [`EventKind::Link`]/[`EventKind::Cut`] events.
#[inline]
pub fn pack_edge(u: u32, v: u32) -> u64 {
    ((u as u64) << 32) | v as u64
}

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Forces the timestamp anchor to exist (called when tracing is enabled so
/// the first event doesn't pay the `OnceLock` initialization).
pub(crate) fn anchor_now() {
    let _ = ANCHOR.get_or_init(Instant::now);
}

#[inline]
fn now_nanos() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A single-writer byte ring. The owning thread writes; any thread may
/// snapshot through the seqlock. Bytes are `AtomicU8` so concurrent
/// snapshot reads are defined behavior; all byte traffic is relaxed — the
/// version word's `Acquire`/`Release` edges order it for consistent
/// snapshots, and torn best-effort snapshots are handled by parse-time
/// validation.
pub(crate) struct Ring {
    thread: usize,
    /// Seqlock version: odd while the owner is mid-write.
    version: AtomicU64,
    /// Total bytes ever written (monotone; ring offset is `head % cap`).
    head: AtomicU64,
    /// Stream position of the oldest intact record.
    tail: AtomicU64,
    buf: Box<[AtomicU8]>,
}

impl Ring {
    pub(crate) fn with_capacity(thread: usize, capacity: usize) -> Ring {
        assert!(capacity >= MAX_RECORD_LEN);
        Ring {
            thread,
            version: AtomicU64::new(0),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            buf: (0..capacity).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Total bytes the owner has ever pushed (monotone even across wraps).
    pub(crate) fn bytes_written(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one encoded record. Owner thread only.
    pub(crate) fn push(&self, record: &[u8]) {
        debug_assert!((MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&record.len()));
        let cap = self.buf.len() as u64;
        self.version.fetch_add(1, Ordering::Release); // odd: write in flight
        let head = self.head.load(Ordering::Relaxed);
        let mut tail = self.tail.load(Ordering::Relaxed);
        // Evict whole stale records until the new one fits.
        while head + record.len() as u64 - tail > cap {
            let len = self.buf[(tail % cap) as usize].load(Ordering::Relaxed) as u64;
            debug_assert!(len >= MIN_RECORD_LEN as u64);
            tail += len.max(1); // defensive: never loop on a zero length
        }
        self.tail.store(tail, Ordering::Relaxed);
        for (i, &byte) in record.iter().enumerate() {
            self.buf[((head + i as u64) % cap) as usize].store(byte, Ordering::Relaxed);
        }
        self.head
            .store(head + record.len() as u64, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Release); // even: quiescent
    }

    /// Copies the ring's live region (`tail..head`) into a linear buffer.
    /// Returns `(bytes, consistent)`; `consistent` is false only if the
    /// seqlock never settled within [`SNAPSHOT_RETRIES`].
    fn snapshot(&self) -> (Vec<u8>, bool) {
        let cap = self.buf.len() as u64;
        for _ in 0..SNAPSHOT_RETRIES {
            let v0 = self.version.load(Ordering::Acquire);
            if v0 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let bytes = self.copy_live(cap);
            let v1 = self.version.load(Ordering::Acquire);
            if v0 == v1 {
                return (bytes, true);
            }
        }
        (self.copy_live(cap), false)
    }

    fn copy_live(&self, cap: u64) -> Vec<u8> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let len = head.saturating_sub(tail).min(cap);
        let mut out = Vec::with_capacity(len as usize);
        for pos in tail..tail + len {
            out.push(self.buf[(pos % cap) as usize].load(Ordering::Relaxed));
        }
        out
    }

    /// Parses a linearized live region into events, validating each record
    /// and dropping anything torn.
    pub(crate) fn parse(thread: usize, bytes: &[u8]) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let len = bytes[pos] as usize;
            if !(MIN_RECORD_LEN..=MAX_RECORD_LEN).contains(&len) || pos + len > bytes.len() {
                break; // torn or corrupt: stop at the damage
            }
            let record = &bytes[pos + 1..pos + len];
            pos += len;
            let Some(kind) = EventKind::from_u8(record[0]) else {
                continue;
            };
            let mut rp = 1usize;
            let (Some(ts), Some(a), Some(b)) = (
                wire::varint_decode_slice(record, &mut rp),
                wire::varint_decode_slice(record, &mut rp),
                wire::varint_decode_slice(record, &mut rp),
            ) else {
                continue;
            };
            if rp != record.len() {
                continue; // trailing garbage: record is torn
            }
            out.push(FlightEvent {
                thread,
                ts_nanos: ts,
                kind,
                a,
                b,
            });
        }
        out
    }

    fn dump(&self) -> Vec<FlightEvent> {
        let (bytes, _consistent) = self.snapshot();
        Self::parse(self.thread, &bytes)
    }
}

/// Every ring ever created, dump order = thread birth order. Rings are
/// kept alive past their thread's death so post-mortems see final events.
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

fn ring_bytes() -> usize {
    static BYTES: OnceLock<usize> = OnceLock::new();
    *BYTES.get_or_init(|| {
        std::env::var("DC_OBS_RING_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|v| v.clamp(MIN_RING_BYTES, MAX_RING_BYTES))
            .unwrap_or(DEFAULT_RING_BYTES)
    })
}

thread_local! {
    static LOCAL_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn with_local_ring(f: impl FnOnce(&Ring)) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring::with_capacity(
                NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                ring_bytes(),
            ));
            RINGS.lock().push(ring.clone());
            ring
        });
        f(ring);
    });
}

/// Records one event. One relaxed load and a branch when tracing is off;
/// when on, a timestamp read plus byte stores into the thread's own ring.
#[inline]
pub fn event(kind: EventKind, a: u64, b: u64) {
    if tracing_enabled() {
        record(kind, a, b);
    }
}

#[inline(never)]
fn record(kind: EventKind, a: u64, b: u64) {
    let ts = now_nanos();
    let mut buf = [0u8; MAX_RECORD_LEN];
    buf[1] = kind as u8;
    let mut len = 2usize;
    for value in [ts, a, b] {
        let (enc, n) = wire::varint_encode(value);
        buf[len..len + n].copy_from_slice(&enc[..n]);
        len += n;
    }
    buf[0] = len as u8;
    with_local_ring(|ring| ring.push(&buf[..len]));
}

/// Merged chronological dump of every thread's live ring contents.
pub fn dump_events() -> Vec<FlightEvent> {
    let rings: Vec<Arc<Ring>> = RINGS.lock().clone();
    let mut events: Vec<FlightEvent> = rings.iter().flat_map(|r| r.dump()).collect();
    events.sort_by_key(|e| (e.ts_nanos, e.thread));
    events
}

/// The merged dump rendered as text (one event per line, tab-separated:
/// timestamp, thread, kind, payload words).
pub fn dump_text(reason: &str) -> String {
    use std::fmt::Write;
    let events = dump_events();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# dc_obs flight recorder dump — reason: {reason}, events: {}",
        events.len()
    );
    let _ = writeln!(out, "# ts_nanos\tthread\tkind\ta\tb");
    for e in &events {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            e.ts_nanos,
            e.thread,
            e.kind.name(),
            e.a,
            e.b
        );
    }
    out
}

static DUMP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Writes a text dump to `DC_OBS_DUMP_DIR` (default: the system temp
/// directory) and returns its path. Called automatically on WAL poisoning
/// and recovery refusal; best-effort — returns `None` if the write fails
/// (a failed post-mortem must never mask the original failure), or if the
/// recorder never captured anything (a dump of nothing would just litter
/// the dump directory — fault-injection suites poison instances by the
/// dozen with tracing off).
pub fn auto_dump(reason: &str) -> Option<std::path::PathBuf> {
    if total_bytes_recorded() == 0 {
        return None;
    }
    let dir = std::env::var_os("DC_OBS_DUMP_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let safe: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!(
        "dc-flight-{}-{}-{}.log",
        std::process::id(),
        safe,
        DUMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, dump_text(reason)).ok()?;
    Some(path)
}

/// Total bytes ever recorded across all rings — the "no event writes while
/// disabled" witness the disabled-cost test asserts on.
pub fn total_bytes_recorded() -> u64 {
    RINGS.lock().iter().map(|r| r.bytes_written()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{set_tracing_enabled, tests::TEST_GUARD};

    fn encode(kind: EventKind, ts: u64, a: u64, b: u64) -> Vec<u8> {
        let mut buf = vec![0u8, kind as u8];
        for v in [ts, a, b] {
            wire::push_varint(&mut buf, v);
        }
        buf[0] = buf.len() as u8;
        buf
    }

    #[test]
    fn records_round_trip_through_a_ring() {
        let ring = Ring::with_capacity(3, 4096);
        ring.push(&encode(EventKind::Link, 100, 7, 9));
        ring.push(&encode(EventKind::WalCommit, 200, u64::MAX, 0));
        let events = ring.dump();
        assert_eq!(
            events,
            vec![
                FlightEvent {
                    thread: 3,
                    ts_nanos: 100,
                    kind: EventKind::Link,
                    a: 7,
                    b: 9
                },
                FlightEvent {
                    thread: 3,
                    ts_nanos: 200,
                    kind: EventKind::WalCommit,
                    a: u64::MAX,
                    b: 0
                },
            ]
        );
    }

    #[test]
    fn wraparound_evicts_oldest_whole_records() {
        // Capacity fits only a handful of records; after many pushes the
        // ring must hold a parseable *suffix* of the stream, newest last.
        let ring = Ring::with_capacity(0, MAX_RECORD_LEN);
        for i in 0..100u64 {
            ring.push(&encode(EventKind::EpochAdvance, i, i * 2, i * 3));
        }
        let events = ring.dump();
        assert!(!events.is_empty());
        // Strictly consecutive suffix ending at the last record.
        assert_eq!(events.last().unwrap().ts_nanos, 99);
        for w in events.windows(2) {
            assert_eq!(w[1].ts_nanos, w[0].ts_nanos + 1);
        }
        for e in &events {
            assert_eq!(e.a, e.ts_nanos * 2);
            assert_eq!(e.b, e.ts_nanos * 3);
        }
        // Wrapping never inflates the live region past capacity.
        assert!(ring.bytes_written() > MAX_RECORD_LEN as u64);
    }

    #[test]
    fn parse_stops_at_torn_bytes_and_skips_unknown_kinds() {
        let mut bytes = encode(EventKind::Cut, 5, 6, 7);
        let mut unknown = encode(EventKind::Cut, 8, 9, 10);
        unknown[1] = 200; // not a valid kind: skipped, parsing continues
        bytes.extend_from_slice(&unknown);
        bytes.extend_from_slice(&encode(EventKind::Checkpoint, 11, 12, 13));
        let mut torn = encode(EventKind::Link, 14, 15, 16);
        torn.truncate(torn.len() - 2); // length prefix overruns the buffer
        bytes.extend_from_slice(&torn);
        let events = Ring::parse(0, &bytes);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Cut);
        assert_eq!(events[1].kind, EventKind::Checkpoint);
    }

    #[test]
    fn merged_dump_is_chronological_across_threads() {
        let _g = TEST_GUARD.lock();
        set_tracing_enabled(true);
        let before = dump_events().len();
        std::thread::scope(|s| {
            for t in 0..3 {
                s.spawn(move || {
                    for i in 0..10u64 {
                        event(EventKind::BatchBegin, t, i);
                    }
                });
            }
        });
        set_tracing_enabled(false);
        let events = dump_events();
        assert!(events.len() >= before + 30);
        for w in events.windows(2) {
            assert!(w[0].ts_nanos <= w[1].ts_nanos, "dump not time-ordered");
        }
    }

    #[test]
    fn dump_text_and_auto_dump_render_events() {
        let _g = TEST_GUARD.lock();
        set_tracing_enabled(true);
        event(EventKind::RecoveryStep, 2, 0);
        set_tracing_enabled(false);
        let text = dump_text("unit-test");
        assert!(text.starts_with("# dc_obs flight recorder dump"));
        assert!(text.contains("recovery_step"));
        let path = auto_dump("unit test").expect("auto_dump failed");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("reason: unit test"));
        assert!(written.contains("recovery_step"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pack_edge_splits_back_out() {
        let packed = pack_edge(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!((packed >> 32) as u32, 0xDEAD_BEEF);
        assert_eq!(packed as u32, 0x1234_5678);
    }
}
