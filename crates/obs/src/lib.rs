//! `dc_obs` — the observability layer: unified metrics registry, lock-free
//! flight recorder, and sampled hot-path span profiling.
//!
//! The paper's headline plots (Figures 7/8/11/12, the *active time rate*)
//! are observability artifacts; this crate is where the repo's previously
//! scattered telemetry (global `dc_sync::waitstats`, per-`Hdt` stats,
//! striped hint counters, bench-only histograms) converges so a *running*
//! instance can be observed outside the bench harness. Three pillars:
//!
//! * [`metrics`] — typed, cache-line-striped counters, gauges and
//!   latency histograms behind one process-wide enable flag. Disabled
//!   cost is one relaxed load per recording site (the
//!   `waitstats::enabled()` discipline); everything is static, so
//!   enabling allocates nothing.
//! * [`flight`] — per-thread fixed-capacity lock-free ring buffers of
//!   compact varint-encoded structural events (links, cuts, replacement
//!   searches, batch flushes, WAL commits, checkpoints, recovery steps),
//!   merged chronologically on demand and dumped automatically when the
//!   durable layer poisons its WAL or refuses recovery.
//! * [`span()`] — 1-in-16 sampled scoped timers on the hot paths
//!   (replacement search, treap merge/split, batch flush, fsync,
//!   interleaved climb groups) feeding the registry histograms.
//!
//! [`ObsSnapshot`] gathers everything coherently and exports
//! Prometheus-style text or JSON. The event taxonomy, memory bounds and
//! the relaxed-ordering safety argument live in `DESIGN.md` §11.
//!
//! This crate sits just above `dc-sync` so every structural crate
//! (`dc-ett`, `dynconn`, `dc-batch`, `dc-durable`) can record into it;
//! mechanisms that live *below* it (waitstats) are pulled at snapshot
//! time instead.

pub mod flight;
pub mod histogram;
pub mod metrics;
pub mod snapshot;
pub mod span;

pub use flight::{auto_dump, dump_events, dump_text, event, pack_edge, EventKind, FlightEvent};
pub use histogram::LatencyHistogram;
pub use metrics::{
    counter_add, counter_value, gauge_set, gauge_value, metrics_enabled, reset,
    set_metrics_enabled, set_tracing_enabled, span_record, span_snapshot, tracing_enabled, Counter,
    Gauge, SpanId,
};
pub use snapshot::ObsSnapshot;
pub use span::{span, Span, SPAN_SAMPLE_EVERY};
