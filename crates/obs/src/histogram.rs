//! The fixed-bucket log-scale latency histogram behind all tail-latency
//! reporting ([`LatencyHistogram`]): p50/p90/p99/p999 extraction alongside
//! every throughput number, mergeable across threads without
//! synchronization.
//!
//! Promoted out of `dc_bench::stats` so non-bench code — the metrics
//! registry's span histograms in particular — can record latencies; the
//! bench crate re-exports it from its old path.

/// Number of histogram buckets: 4 exact single-nanosecond buckets for
/// values 0–3 plus `4 * SUBS_PER_OCTAVE` log-scale buckets per power of two
/// up to `u64::MAX` (64 octaves × 4 sub-buckets = 256 slots, of which the
/// first few octave slots are unused by construction).
pub(crate) const LATENCY_BUCKETS: usize = 256;

/// Sub-buckets per octave (power of two; bounds the relative quantization
/// error of a percentile at `1 / SUBS_PER_OCTAVE` = 25%).
const SUBS_PER_OCTAVE: u64 = 4;

/// A fixed-footprint log-scale latency histogram over nanosecond samples —
/// the HDR-histogram idea shrunk to exactly what the bench tiers need.
///
/// * **Fixed buckets, no allocation:** 256 `u64` counters (2 KiB), `Copy`.
///   Values 0–3 ns get exact buckets; every other value lands in one of 4
///   sub-buckets of its octave, so a reported percentile overstates the
///   true value by at most 25% (the bucket's upper bound is returned).
/// * **Mergeable:** each worker thread records into its own histogram and
///   the harness [`LatencyHistogram::merge`]s them after the join — no
///   shared counters on the hot path.
/// * **Weighted records:** bulk read paths time a whole batch and record
///   the per-op quotient once per member
///   ([`LatencyHistogram::record_n`]), so batch-amortized tiers produce
///   distributions with the right mass.
///
/// Percentiles ([`LatencyHistogram::percentile`], and the `p50`…`p999`
/// shorthands) return the upper bound of the bucket containing the
/// requested rank; the exact maximum is tracked separately and caps the
/// answer, so `p(1.0)` is the true maximum.
#[derive(Clone, Copy, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// The bucket index of `ns` (shared with the registry's atomic-bucket
    /// histograms, which must agree bucket-for-bucket).
    #[inline]
    pub(crate) fn bucket_of(ns: u64) -> usize {
        if ns < SUBS_PER_OCTAVE {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros() as usize; // >= 2
        let sub = ((ns >> (msb - 2)) & (SUBS_PER_OCTAVE - 1)) as usize;
        msb * SUBS_PER_OCTAVE as usize + sub
    }

    /// Inclusive upper bound of bucket `i` (the value percentiles report).
    fn bucket_upper(i: usize) -> u64 {
        if i < SUBS_PER_OCTAVE as usize {
            return i as u64;
        }
        let msb = i / SUBS_PER_OCTAVE as usize;
        let sub = (i % SUBS_PER_OCTAVE as usize) as u64;
        if msb < 2 {
            // Gap slots between the exact region and the first full octave
            // (never occupied; pinned to the exact region's top so bucket
            // lower bounds stay monotone).
            return SUBS_PER_OCTAVE - 1;
        }
        if msb >= 63 {
            return u64::MAX;
        }
        // Lowest value of the next sub-bucket, minus one.
        ((SUBS_PER_OCTAVE + sub + 1) << (msb - 2)) - 1
    }

    /// Rebuilds a histogram from raw bucket counts and an exact max (the
    /// registry snapshots its atomic-bucket histograms through this).
    pub(crate) fn from_parts(buckets: [u64; LATENCY_BUCKETS], max: u64) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            max,
        }
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Records `n` samples of `ns` nanoseconds each (batch-amortized
    /// recording: time a batch, record `elapsed / batch_len` with
    /// `n = batch_len`).
    #[inline]
    pub fn record_n(&mut self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(ns)] += n;
        self.count += n;
        self.max = self.max.max(ns);
    }

    /// Folds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) in nanoseconds: the upper bound
    /// of the bucket holding the sample of rank `ceil(q * count)`, capped
    /// at the exact maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile in nanoseconds.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile in nanoseconds.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// The non-empty buckets as `(lower_ns, upper_ns, count)` triples, in
    /// ascending order — the serialization the bench artifacts embed.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let lower = if i == 0 {
                    0
                } else {
                    Self::bucket_upper(i - 1).saturating_add(1)
                };
                out.push((lower, Self::bucket_upper(i), n));
            }
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn buckets_cover_the_value_and_bounds_nest() {
        // Every sample must land in a bucket whose [lower, upper] range
        // contains it, with upper within 25% above the true value.
        for ns in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 999, 4096, 1 << 40, u64::MAX] {
            let mut h = LatencyHistogram::new();
            h.record(ns);
            let buckets = h.nonzero_buckets();
            assert_eq!(buckets.len(), 1, "{ns}");
            let (lower, upper, count) = buckets[0];
            assert_eq!(count, 1);
            assert!(
                lower <= ns && ns <= upper,
                "{ns} outside [{lower}, {upper}]"
            );
            if (4..(1 << 62)).contains(&ns) {
                assert!(upper < ns + ns / 2, "{ns}: upper {upper} too loose");
            }
        }
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 1000 samples at ~100ns, 10 at ~10µs, 1 at ~1ms.
        h.record_n(100, 989);
        h.record_n(10_000, 10);
        h.record(1_000_000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1_000_000);
        // p50/p90 sit in the 100ns bucket (upper bound <= 127).
        assert!(h.p50() >= 100 && h.p50() < 128, "p50 = {}", h.p50());
        assert!(h.p90() >= 100 && h.p90() < 128);
        // p99 crosses into the 10µs bucket, p999+ reaches the outlier.
        assert!(h.p99() >= 10_000 && h.p99() < 13_000, "p99 = {}", h.p99());
        assert!(h.p999() >= 10_000, "p999 = {}", h.p999());
        assert_eq!(h.percentile(1.0), 1_000_000);
    }

    #[test]
    fn merge_is_sample_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(50, 100);
        b.record_n(5_000, 100);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.max(), 5_000);
        assert!(merged.p50() < 100);
        assert!(merged.p99() >= 5_000 && merged.p99() < 6_500);
        // Merge of empties stays empty.
        let mut empty = LatencyHistogram::new();
        empty.merge(&LatencyHistogram::new());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.p999(), 0);
    }

    #[test]
    fn percentile_never_exceeds_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        // The 1000ns bucket's upper bound is above 1000, but the reported
        // percentile is capped at the true max.
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 1000);
        }
    }

    #[test]
    fn from_parts_recomputes_count() {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[LatencyHistogram::bucket_of(100)] = 9;
        buckets[LatencyHistogram::bucket_of(10_000)] = 1;
        let h = LatencyHistogram::from_parts(buckets, 10_123);
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 10_123);
        assert!(h.p50() >= 100 && h.p50() < 128);
        assert_eq!(h.percentile(1.0), 10_123);
    }
}
