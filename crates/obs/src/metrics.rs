//! The unified metrics registry: typed counters, gauges and latency
//! histograms behind one pair of process-wide enable flags.
//!
//! Seven PRs grew four disconnected telemetry mechanisms (global
//! `dc_sync::waitstats`, per-`Hdt` `StatsSnapshot`, striped hint-hit
//! counters, bench-only latency histograms). This registry is the one
//! place they all surface: instrumented crates *mirror* their existing
//! per-instance counters here (the per-instance APIs stay — they are the
//! compatibility shims), and [`crate::ObsSnapshot`] reads everything back
//! coherently.
//!
//! **Disabled cost.** The design constraint is the same as
//! `dc_sync::waitstats::enabled()`: when metrics are off (the default),
//! every recording call is one relaxed atomic load and a predictable
//! branch — no allocation, no store, no fence. The registry is entirely
//! static (striped counter cells, gauge words, atomic-bucket histograms),
//! so enabling it allocates nothing either.
//!
//! **Ordering.** All cells are `Relaxed`. Metrics are monotone
//! per-thread tallies read at quiescent points (snapshot after a join, a
//! scrape loop); they carry no happens-before obligations, and no safety
//! argument in `DESIGN.md` §3/§8 leans on them — see `DESIGN.md` §11.
//!
//! **Striping.** Counter increments from different threads must not
//! serialize on one cache line, so counters are striped across
//! `COUNTER_STRIPES` (16) 128-byte-aligned blocks with threads assigned
//! round-robin on first use (the `dc_ett::hints` counter idiom). Gauges
//! are last-write-wins single words; histograms are shared atomic-bucket
//! tables fed by *sampled* spans (1-in-16), so their contention is already
//! bounded.

use crate::histogram::{LatencyHistogram, LATENCY_BUCKETS};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Number of padded counter stripes (power of two; threads hash onto them).
const COUNTER_STRIPES: usize = 16;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables metric recording (counters, gauges, span
/// histograms). Off by default; flipping it is a plain relaxed store.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Returns `true` if metric recording is enabled — the one load every
/// instrumentation site pays when disabled.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables flight-recorder event capture (see
/// [`crate::flight`]). Independent of the metrics flag so the bench tier
/// can price each layer separately.
pub fn set_tracing_enabled(enabled: bool) {
    if enabled {
        // Anchor event timestamps before the first event is recorded so
        // merged dumps never see a zero-epoch discontinuity.
        crate::flight::anchor_now();
    }
    TRACING_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Returns `true` if flight-recorder capture is enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

macro_rules! metric_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident { $( $(#[$vmeta:meta])* $variant:ident => $text:literal, )+ }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        #[repr(usize)]
        $vis enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// Number of variants (the registry's array extent).
            pub const COUNT: usize = [$( $name::$variant, )+].len();

            /// Every variant, in declaration (= storage) order.
            pub const ALL: [$name; Self::COUNT] = [$( $name::$variant, )+];

            /// The stable snake_case name exporters emit.
            pub fn name(self) -> &'static str {
                match self {
                    $( $name::$variant => $text, )+
                }
            }
        }
    };
}

metric_enum! {
    /// Monotone event tallies. Names are the Prometheus metric stems
    /// (exported as `dc_<name>_total`).
    pub enum Counter {
        /// Edge additions applied (spanning or not) — mirrors
        /// `dynconn::StatsSnapshot::additions` across all instances.
        HdtAdditions => "hdt_additions",
        /// Additions that closed a cycle (left the forest unchanged).
        HdtNonSpanningAdditions => "hdt_non_spanning_additions",
        /// Edge removals applied.
        HdtRemovals => "hdt_removals",
        /// Removals of non-spanning edges (no replacement search needed).
        HdtNonSpanningRemovals => "hdt_non_spanning_removals",
        /// Replacement searches that found a substitute edge.
        HdtReplacementsFound => "hdt_replacements_found",
        /// Read resolutions answered from a validated root hint.
        HintHits => "hint_hits",
        /// Read resolutions that fell back to a parent-pointer climb.
        HintMisses => "hint_misses",
        /// Root-version bumps (each invalidates that root's outstanding
        /// hints — DESIGN.md §8).
        HintInvalidations => "hint_invalidations",
        /// Epoch-reclamation collection passes over an ETT arena.
        EpochCollects => "epoch_collects",
        /// Arena nodes recycled by those passes.
        EpochNodesReclaimed => "epoch_nodes_reclaimed",
        /// Batches drained by a `dc_batch` leader.
        BatchesDrained => "batches_drained",
        /// Structural updates applied by batch flushes (post-annihilation).
        BatchUpdatesApplied => "batch_updates_applied",
        /// Batch records group-committed to the WAL.
        WalBatches => "wal_batches",
        /// Bytes appended to the WAL (records + commit markers).
        WalBytes => "wal_bytes",
        /// `fsync`/`sync_data` calls issued by the WAL.
        WalFsyncs => "wal_fsyncs",
        /// WAL segment rolls.
        WalSegmentRolls => "wal_segment_rolls",
        /// Checkpoints written.
        Checkpoints => "checkpoints",
        /// Batch engines poisoned by a leader panic (DESIGN.md §13).
        EnginePoisons => "engine_poisons",
        /// Bounded waits that expired before their condition held
        /// (`EngineError::Timeout` returned to a caller).
        WaitTimeouts => "wait_timeouts",
        /// Stall conditions flagged by a watchdog probe (stuck leader,
        /// stalled epoch advance).
        WatchdogStalls => "watchdog_stalls",
        /// Chaos-schedule injection points that actually fired.
        ChaosInjections => "chaos_injections",
        /// Operations rejected with a typed capacity error (arena
        /// exhaustion surfaced through `try_link` instead of an abort).
        CapacityRejections => "capacity_rejections",
    }
}

metric_enum! {
    /// Last-write-wins instantaneous values.
    pub enum Gauge {
        /// Live ETT arena slots at the last reclamation pass (level 0).
        ArenaOccupancy => "arena_occupancy",
        /// Operations claimed from the intake array by the most recent
        /// batch leader (the drained batch's size).
        IntakeDepth => "intake_depth",
        /// 1 while any batch engine in the process is poisoned, 0 after the
        /// last `rebuild()`; service health checks scrape this.
        EnginePoisoned => "engine_poisoned",
        /// Number of watchdog probes currently reporting a stall (returns
        /// to 0 when progress resumes).
        WatchdogStalledProbes => "watchdog_stalled_probes",
    }
}

metric_enum! {
    /// Span-profiled hot paths; each feeds one registry histogram of
    /// sampled durations in nanoseconds.
    pub enum SpanId {
        /// HDT replacement-edge search after a spanning-edge cut.
        ReplacementSearch => "replacement_search",
        /// Treap merge (iterative root merge on the tour sequence).
        TreapMerge => "treap_merge",
        /// Treap split (before/after a tour position).
        TreapSplit => "treap_split",
        /// Batch engine plan flush (compaction + apply + commit hook).
        BatchFlush => "batch_flush",
        /// WAL fsync/sync_data call.
        WalFsync => "wal_fsync",
        /// Checkpoint serialization + atomic install.
        CheckpointWrite => "checkpoint_write",
        /// One interleaved bulk-read climb group (DESIGN.md §10).
        InterleavedClimbGroup => "interleaved_climb_group",
    }
}

/// A padded block of counter cells: one cell per [`Counter`], no cache
/// line shared with any other stripe.
#[repr(align(128))]
struct CounterStripe {
    cells: [AtomicU64; Counter::COUNT],
}

/// A shared atomic-bucket histogram, bucket-compatible with
/// [`LatencyHistogram`] so snapshots are a plain relaxed sweep.
struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    max: AtomicU64,
}

static STRIPES: [CounterStripe; COUNTER_STRIPES] = [const {
    CounterStripe {
        cells: [const { AtomicU64::new(0) }; Counter::COUNT],
    }
}; COUNTER_STRIPES];

static GAUGES: [AtomicU64; Gauge::COUNT] = [const { AtomicU64::new(0) }; Gauge::COUNT];

static HISTOGRAMS: [AtomicHistogram; SpanId::COUNT] = [const {
    AtomicHistogram {
        buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
        max: AtomicU64::new(0),
    }
}; SpanId::COUNT];

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The calling thread's counter stripe, assigned round-robin on first
    /// use so worker pools spread evenly (the `dc_ett::hints` idiom).
    static STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (COUNTER_STRIPES - 1);
}

/// Adds `n` to counter `c`. One relaxed load + branch when disabled.
#[inline]
pub fn counter_add(c: Counter, n: u64) {
    if metrics_enabled() && n > 0 {
        STRIPE.with(|&s| STRIPES[s].cells[c as usize].fetch_add(n, Ordering::Relaxed));
    }
}

/// Sets gauge `g` to `v` (last write wins across threads).
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    if metrics_enabled() {
        GAUGES[g as usize].store(v, Ordering::Relaxed);
    }
}

/// Records a sampled duration of `ns` nanoseconds into span `id`'s
/// histogram. Callers go through [`crate::span()`], which applies the 1-in-N
/// sampling and the enabled check; this low-level door re-checks the flag
/// so direct callers stay free when disabled.
#[inline]
pub fn span_record(id: SpanId, ns: u64) {
    if !metrics_enabled() {
        return;
    }
    let h = &HISTOGRAMS[id as usize];
    h.buckets[LatencyHistogram::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    h.max.fetch_max(ns, Ordering::Relaxed);
}

/// Current value of counter `c` (sum over stripes).
pub fn counter_value(c: Counter) -> u64 {
    STRIPES
        .iter()
        .map(|s| s.cells[c as usize].load(Ordering::Relaxed))
        .sum()
}

/// Current value of gauge `g`.
pub fn gauge_value(g: Gauge) -> u64 {
    GAUGES[g as usize].load(Ordering::Relaxed)
}

/// Snapshot of span `id`'s histogram as a plain [`LatencyHistogram`].
pub fn span_snapshot(id: SpanId) -> LatencyHistogram {
    let h = &HISTOGRAMS[id as usize];
    let mut buckets = [0u64; LATENCY_BUCKETS];
    for (out, cell) in buckets.iter_mut().zip(h.buckets.iter()) {
        *out = cell.load(Ordering::Relaxed);
    }
    LatencyHistogram::from_parts(buckets, h.max.load(Ordering::Relaxed))
}

/// Zeroes every counter, gauge and histogram (bench cells and tests reset
/// between measurement intervals; concurrent recorders just land in the
/// new interval).
pub fn reset() {
    for stripe in STRIPES.iter() {
        for cell in stripe.cells.iter() {
            cell.store(0, Ordering::Relaxed);
        }
    }
    for g in GAUGES.iter() {
        g.store(0, Ordering::Relaxed);
    }
    for h in HISTOGRAMS.iter() {
        for b in h.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        h.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use parking_lot::Mutex;

    // The registry is global; tests that mutate it must serialize.
    pub(crate) static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_dropped() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(false);
        reset();
        counter_add(Counter::HdtAdditions, 5);
        gauge_set(Gauge::IntakeDepth, 9);
        span_record(SpanId::BatchFlush, 1234);
        assert_eq!(counter_value(Counter::HdtAdditions), 0);
        assert_eq!(gauge_value(Gauge::IntakeDepth), 0);
        assert_eq!(span_snapshot(SpanId::BatchFlush).count(), 0);
    }

    #[test]
    fn counters_accumulate_across_threads_and_stripes() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        counter_add(Counter::HintHits, 2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter_add(Counter::HintHits, 3));
            }
        });
        assert_eq!(counter_value(Counter::HintHits), 14);
        set_metrics_enabled(false);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        gauge_set(Gauge::ArenaOccupancy, 10);
        gauge_set(Gauge::ArenaOccupancy, 7);
        assert_eq!(gauge_value(Gauge::ArenaOccupancy), 7);
        set_metrics_enabled(false);
    }

    #[test]
    fn span_histograms_snapshot_and_reset() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        span_record(SpanId::WalFsync, 100);
        span_record(SpanId::WalFsync, 10_000);
        let snap = span_snapshot(SpanId::WalFsync);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), 10_000);
        assert!(snap.p50() >= 100);
        reset();
        assert_eq!(span_snapshot(SpanId::WalFsync).count(), 0);
        set_metrics_enabled(false);
    }

    #[test]
    fn enum_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(SpanId::ALL.iter().map(|s| s.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
