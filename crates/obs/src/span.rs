//! Sampled scoped timers for hot-path span profiling.
//!
//! Wrapping a replacement search or a treap merge in an *unconditional*
//! `Instant::now()` pair would tax exactly the paths the bench tiers
//! measure. Spans therefore sample 1-in-[`SPAN_SAMPLE_EVERY`] per thread
//! (the PR 7 op-sampling rate): the unsampled path is one relaxed flag
//! load, a thread-local counter bump and a branch — no clock read — and
//! the disabled path skips even the counter bump. Sampled durations feed
//! the registry's atomic-bucket histograms
//! ([`crate::metrics::span_snapshot`]); with uniform 1-in-N sampling the
//! percentile *shape* is unbiased even though the counts are 1/N of the
//! true op count.

use crate::metrics::{metrics_enabled, span_record, SpanId};
use std::cell::Cell;
use std::time::Instant;

/// One span is timed out of every `SPAN_SAMPLE_EVERY` entries per thread.
pub const SPAN_SAMPLE_EVERY: u32 = 16;

thread_local! {
    static TICK: Cell<u32> = const { Cell::new(0) };
}

/// An in-flight (possibly unsampled) span; records on drop.
#[must_use = "a span measures the scope it is bound to — bind it to a variable"]
pub struct Span {
    live: Option<(SpanId, Instant)>,
}

/// Opens a span over `id`'s hot path. Free when metrics are disabled;
/// otherwise times 1-in-[`SPAN_SAMPLE_EVERY`] entries per thread.
#[inline]
pub fn span(id: SpanId) -> Span {
    if !metrics_enabled() {
        return Span { live: None };
    }
    let sampled = TICK.with(|t| {
        let tick = t.get().wrapping_add(1);
        t.set(tick);
        tick % SPAN_SAMPLE_EVERY == 0
    });
    Span {
        live: if sampled {
            Some((id, Instant::now()))
        } else {
            None
        },
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((id, start)) = self.live.take() {
            span_record(id, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{reset, set_metrics_enabled, span_snapshot, tests::TEST_GUARD};

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(false);
        reset();
        for _ in 0..100 {
            let _s = span(SpanId::TreapMerge);
        }
        assert_eq!(span_snapshot(SpanId::TreapMerge).count(), 0);
    }

    #[test]
    fn enabled_spans_sample_one_in_n() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        // Run on a fresh thread so the tick counter starts at a known
        // phase: exactly 160 entries → exactly 10 samples.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..(10 * SPAN_SAMPLE_EVERY) {
                    let _s = span(SpanId::TreapSplit);
                }
            });
        });
        assert_eq!(span_snapshot(SpanId::TreapSplit).count(), 10);
        set_metrics_enabled(false);
    }
}
