//! Coherent point-in-time snapshots of the whole registry, with
//! Prometheus-text and JSON exporters.
//!
//! A scrape loop (see `examples/streaming_monitor.rs`) gathers one
//! [`ObsSnapshot`] per interval and diffs counters across snapshots;
//! everything is read with relaxed loads, so a snapshot taken mid-traffic
//! is "coherent" in the metrics sense (each cell individually current, no
//! torn u64s) rather than a linearizable cut — the standard contract for
//! monitoring counters.
//!
//! The JSON exporter is the same hand-rolled, dependency-free serializer
//! idiom as `dc_bench::report` (the offline build has no serde); the
//! Prometheus exporter emits the text exposition format: counters as
//! `dc_<name>_total`, gauges as `dc_<name>`, span histograms as summaries
//! with `quantile` labels.

use crate::histogram::LatencyHistogram;
use crate::metrics::{counter_value, gauge_value, span_snapshot, Counter, Gauge, SpanId};
use std::fmt::Write;

/// Escapes `s` as a JSON string literal (hand-rolled; the offline build
/// has no serde — the `dc_bench::report` idiom).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A point-in-time copy of every registry cell plus the legacy global
/// wait-accounting counters (pulled from `dc_sync::waitstats`, which sits
/// below this crate in the dependency order and so cannot push).
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    spans: [LatencyHistogram; SpanId::COUNT],
    /// Total nanoseconds threads spent blocked on instrumented locks
    /// (`dc_sync::waitstats::total_wait_nanos`).
    pub wait_nanos: u64,
    /// Blocking acquisitions recorded (`dc_sync::waitstats::wait_events`).
    pub wait_events: u64,
}

impl ObsSnapshot {
    /// Reads every counter, gauge and span histogram, plus the waitstats
    /// globals.
    pub fn gather() -> ObsSnapshot {
        let mut counters = [0u64; Counter::COUNT];
        for c in Counter::ALL {
            counters[c as usize] = counter_value(c);
        }
        let mut gauges = [0u64; Gauge::COUNT];
        for g in Gauge::ALL {
            gauges[g as usize] = gauge_value(g);
        }
        let mut spans = [LatencyHistogram::new(); SpanId::COUNT];
        for s in SpanId::ALL {
            spans[s as usize] = span_snapshot(s);
        }
        ObsSnapshot {
            counters,
            gauges,
            spans,
            wait_nanos: dc_sync::waitstats::total_wait_nanos(),
            wait_events: dc_sync::waitstats::wait_events(),
        }
    }

    /// The snapshotted value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The snapshotted value of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// The snapshotted histogram of span `s`.
    pub fn span(&self, s: SpanId) -> &LatencyHistogram {
        &self.spans[s as usize]
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            let name = c.name();
            let _ = writeln!(out, "# TYPE dc_{name}_total counter");
            let _ = writeln!(out, "dc_{name}_total {}", self.counter(c));
        }
        for g in Gauge::ALL {
            let name = g.name();
            let _ = writeln!(out, "# TYPE dc_{name} gauge");
            let _ = writeln!(out, "dc_{name} {}", self.gauge(g));
        }
        let _ = writeln!(out, "# TYPE dc_lock_wait_nanos_total counter");
        let _ = writeln!(out, "dc_lock_wait_nanos_total {}", self.wait_nanos);
        let _ = writeln!(out, "# TYPE dc_lock_wait_events_total counter");
        let _ = writeln!(out, "dc_lock_wait_events_total {}", self.wait_events);
        for s in SpanId::ALL {
            let name = s.name();
            let h = self.span(s);
            let _ = writeln!(out, "# TYPE dc_span_{name}_nanos summary");
            for (q, v) in [
                (0.5, h.p50()),
                (0.9, h.p90()),
                (0.99, h.p99()),
                (0.999, h.p999()),
            ] {
                let _ = writeln!(out, "dc_span_{name}_nanos{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "dc_span_{name}_nanos_count {}", h.count());
        }
        out
    }

    /// Renders the snapshot as a JSON object (counters, gauges, span
    /// percentile summaries, waitstats).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {}",
                json_string(c.name()),
                self.counter(*c)
            );
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {}",
                json_string(g.name()),
                self.gauge(*g)
            );
        }
        out.push_str("\n  },\n  \"spans\": {");
        for (i, s) in SpanId::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let h = self.span(*s);
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
                json_string(s.name()),
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max()
            );
        }
        let _ = write!(
            out,
            "\n  }},\n  \"lock_wait_nanos\": {},\n  \"lock_wait_events\": {}\n}}\n",
            self.wait_nanos, self.wait_events
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{
        counter_add, gauge_set, reset, set_metrics_enabled, span_record, tests::TEST_GUARD,
    };

    #[test]
    fn snapshot_reads_back_recorded_values() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        counter_add(Counter::WalFsyncs, 3);
        gauge_set(Gauge::ArenaOccupancy, 42);
        span_record(SpanId::CheckpointWrite, 5_000);
        let snap = ObsSnapshot::gather();
        set_metrics_enabled(false);
        assert_eq!(snap.counter(Counter::WalFsyncs), 3);
        assert_eq!(snap.gauge(Gauge::ArenaOccupancy), 42);
        assert_eq!(snap.span(SpanId::CheckpointWrite).count(), 1);
        assert_eq!(snap.span(SpanId::CheckpointWrite).max(), 5_000);
    }

    #[test]
    fn prometheus_export_names_every_metric() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        counter_add(Counter::HintHits, 7);
        let snap = ObsSnapshot::gather();
        set_metrics_enabled(false);
        let text = snap.to_prometheus();
        assert!(text.contains("dc_hint_hits_total 7"));
        for c in Counter::ALL {
            assert!(text.contains(&format!("dc_{}_total", c.name())), "{:?}", c);
        }
        for g in Gauge::ALL {
            assert!(text.contains(&format!("\ndc_{} ", g.name())), "{:?}", g);
        }
        for s in SpanId::ALL {
            assert!(
                text.contains(&format!("dc_span_{}_nanos_count", s.name())),
                "{:?}",
                s
            );
        }
        assert!(text.contains("dc_lock_wait_nanos_total"));
    }

    #[test]
    fn json_export_is_well_formed_enough_to_spot_check() {
        let _g = TEST_GUARD.lock();
        set_metrics_enabled(true);
        reset();
        counter_add(Counter::Checkpoints, 2);
        let snap = ObsSnapshot::gather();
        set_metrics_enabled(false);
        let json = snap.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"checkpoints\": 2"));
        assert!(json.contains("\"p999_ns\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }
}
