//! Asserts that disabled observability is *free* in the two ways that
//! matter beyond cycle counts: recording sites must not allocate, and the
//! flight recorder must not buffer a single byte.
//!
//! `dc_obs`'s contract is that every recording entry point — counters,
//! gauges, spans, events — degenerates to one relaxed flag load when the
//! corresponding flag is off. A slow path that allocated (a lazily created
//! ring, a formatted label) or that wrote into a ring would make "compiled
//! in but switched off" observably different from "not there", which is
//! exactly what production binaries shipping this crate cannot afford.
//!
//! Proven with a counting `#[global_allocator]`: with both flags off, a
//! dense burst through every public recording entry point performs zero
//! allocations and zero frees and leaves the flight recorder's byte
//! counter untouched. A control pass with tracing enabled then shows the
//! same burst *does* allocate (the ring) and *does* record — so the
//! assertion above is known to be measuring the right thing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The process-wide allocation counter behind [`CountingAlloc`].
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counters are simple atomics
// with no reentrancy into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Snapshot of `(allocations, frees)` since process start.
fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        FREES.load(Ordering::Relaxed),
    )
}

/// Every public recording entry point, once.
fn record_burst() {
    dc_obs::counter_add(dc_obs::Counter::HdtAdditions, 1);
    dc_obs::counter_add(dc_obs::Counter::WalBytes, 4096);
    dc_obs::gauge_set(dc_obs::Gauge::IntakeDepth, 17);
    dc_obs::span_record(dc_obs::SpanId::BatchFlush, 1_000);
    let _span = dc_obs::span(dc_obs::SpanId::ReplacementSearch);
    dc_obs::event(dc_obs::EventKind::Link, 0, dc_obs::pack_edge(1, 2));
    dc_obs::event(dc_obs::EventKind::WalCommit, 7, 512);
}

/// Integration tests share a process; the allocation-sensitive window must
/// not race another test's allocator traffic, so this file holds exactly
/// one `#[test]`.
static GUARD: AtomicUsize = AtomicUsize::new(0);

#[test]
fn disabled_recording_neither_allocates_nor_buffers() {
    assert_eq!(
        GUARD.fetch_add(1, Ordering::Relaxed),
        0,
        "this file must contain exactly one test (see comment above)"
    );
    dc_obs::set_metrics_enabled(false);
    dc_obs::set_tracing_enabled(false);

    // Warm-up: pays any one-time cost the disabled path is allowed to have
    // (there should be none, but the steady state is what the contract is
    // about).
    record_burst();

    let bytes_before = dc_obs::flight::total_bytes_recorded();
    let (allocs_before, frees_before) = counters();
    for _ in 0..10_000 {
        record_burst();
    }
    let (allocs_after, frees_after) = counters();
    assert_eq!(
        (allocs_after - allocs_before, frees_after - frees_before),
        (0, 0),
        "disabled recording entry points allocated"
    );
    assert_eq!(
        dc_obs::flight::total_bytes_recorded(),
        bytes_before,
        "disabled recording wrote into a flight ring"
    );
    assert_eq!(dc_obs::counter_value(dc_obs::Counter::HdtAdditions), 0);
    assert_eq!(dc_obs::span_snapshot(dc_obs::SpanId::BatchFlush).count(), 0);

    // Control: the same burst with tracing on must allocate this thread's
    // ring and record bytes — proving the burst exercises live paths and
    // the zero assertions above were not vacuous.
    dc_obs::set_metrics_enabled(true);
    dc_obs::set_tracing_enabled(true);
    let (allocs_before, _) = counters();
    record_burst();
    let (allocs_after, _) = counters();
    assert!(
        allocs_after > allocs_before,
        "enabling tracing should allocate the thread's ring"
    );
    assert!(dc_obs::flight::total_bytes_recorded() > bytes_before);
    assert!(dc_obs::counter_value(dc_obs::Counter::HdtAdditions) > 0);
    dc_obs::set_metrics_enabled(false);
    dc_obs::set_tracing_enabled(false);
}
